"""Rule ``deprecated-api``: removed interfaces must stay removed.

Two interface families were deliberately retired and must not creep back
in through a merge or a cargo-culted example:

- the **raw-list shims** (``encrypt_vector`` / ``decrypt_vector`` /
  ``send_encrypted``) that predate the typed :class:`CipherTensor` wire
  layer -- they bypassed tensor metadata, so key mismatches and layout
  drift went undetected until decode;
- **gmpy-style bigint backends** (``gmpy`` / ``gmpy2`` / ``Crypto.Util
  .number``): all multi-precision arithmetic goes through
  :mod:`repro.mpint` so the simulated GPU counts exactly the limb work
  the cost model charges; an out-of-band ``powmod`` produces correct
  numbers with unaccounted cost.

Defining, importing, or calling any of these is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ImportMap, Rule, callee_name, register
from repro.analysis.diagnostics import Diagnostic

#: Retired raw-list helpers (PR 2 removed them for CipherTensor).
_REMOVED_SHIMS = {"encrypt_vector", "decrypt_vector", "send_encrypted"}

#: Bigint packages that bypass the mpint cost accounting.
_BANNED_MODULES = ("gmpy", "gmpy2", "Crypto.Util.number")


def _banned_module(name: str) -> bool:
    return any(name == banned or name.startswith(banned + ".")
               for banned in _BANNED_MODULES)


@register
class DeprecatedApiRule(Rule):
    name = "deprecated-api"
    description = ("no raw-list encrypt/decrypt shims, no gmpy-style "
                   "bigint backends outside repro.mpint")

    def check(self, unit) -> Iterator[Diagnostic]:
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _banned_module(alias.name):
                        yield self.diagnostic(
                            unit, node,
                            f"import of {alias.name}: big-integer "
                            f"arithmetic must go through repro.mpint so "
                            f"kernel work is accounted")
            elif isinstance(node, ast.ImportFrom):
                if node.module and _banned_module(node.module):
                    yield self.diagnostic(
                        unit, node,
                        f"import from {node.module}: big-integer "
                        f"arithmetic must go through repro.mpint so "
                        f"kernel work is accounted")
                elif node.module:
                    for alias in node.names:
                        if alias.name in _REMOVED_SHIMS:
                            yield self.diagnostic(
                                unit, node,
                                f"import of removed shim "
                                f"{alias.name!r}; use the CipherTensor "
                                f"API (encrypt_tensor/decrypt_tensor)")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _REMOVED_SHIMS:
                    yield self.diagnostic(
                        unit, node,
                        f"re-introduction of removed raw-list shim "
                        f"{node.name!r}; the typed CipherTensor API "
                        f"replaced it")
            elif isinstance(node, ast.Call):
                name = callee_name(node.func)
                if name in _REMOVED_SHIMS:
                    yield self.diagnostic(
                        unit, node,
                        f"call to removed raw-list shim {name!r}; use "
                        f"encrypt_tensor/decrypt_tensor instead")
                else:
                    resolved = imports.resolve(node.func)
                    if resolved is not None and _banned_module(resolved):
                        yield self.diagnostic(
                            unit, node,
                            f"call to {resolved}: use repro.mpint "
                            f"(cost-accounted limb arithmetic) instead")
