"""Call-site resolution and the project call graph.

Resolution is a stack of increasingly speculative strategies, each
sound as a *join* (a call may resolve to several candidates; analyses
merge over all of them):

1. direct names -- a top-level ``def``/``class`` in the calling module,
   or anything reachable through the module's import map;
2. ``self.method(...)`` / ``cls.method(...)`` -- looked up on the
   enclosing class, its bases, *and* every subclass override
   (class-hierarchy analysis: a base-typed receiver can dispatch into
   any override);
3. ``ClassName.method(...)`` and ``ClassName(...)`` (the constructor
   edge goes to ``__init__``);
4. locally typed receivers -- ``x = ClassName(...)``, ``x = C.f(...)``
   (classmethod-constructor convention), and parameter / assignment
   annotations give ``x.method(...)`` a concrete class;
5. ``self.attr.method(...)`` through class attribute types inferred
   from ``self.attr = ClassName(...)`` anywhere in the class;
6. duck-typed fallback -- a bare method name defined by at most three
   classes project-wide resolves to all of them (how calls through the
   engine/codec/rule registries are followed).

Anything else stays unresolved and the analysis falls back to its
local heuristics.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.ipa.symbols import FunctionInfo, SymbolTable

#: One resolved call site: the AST call and its candidate targets.
CallSite = Tuple[ast.Call, Tuple[str, ...]]


def own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class Resolver:
    """Resolves call expressions to candidate function qualnames."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self._local_types: Dict[str, Dict[str, str]] = {}
        self._attr_types: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Type environments.
    # ------------------------------------------------------------------

    def _annotation_class(self, fn: FunctionInfo,
                          annotation: Optional[ast.expr]) -> Optional[str]:
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Subscript):  # Optional[X] / List[X]
            node = node.slice
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str):  # "ShardPool" forward ref
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        resolved = self.symbols.resolve_name(fn.module, node)
        if resolved in self.symbols.classes:
            return resolved
        return None

    def _constructed_class(self, fn: FunctionInfo,
                           value: ast.expr) -> Optional[str]:
        """The class a value expression constructs, when inferable."""
        if isinstance(value, ast.IfExp):
            # ``x if x is not None else C()``: either arm names the type.
            return (self._constructed_class(fn, value.body)
                    or self._constructed_class(fn, value.orelse))
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        resolved = self.symbols.resolve_name(fn.module, func)
        if resolved in self.symbols.classes:
            return resolved
        # Classmethod-constructor convention: C.from_x(...) builds a C.
        if isinstance(func, ast.Attribute):
            owner = self.symbols.resolve_name(fn.module, func.value)
            if owner in self.symbols.classes:
                return owner
        return None

    def local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """name -> class qualname for one function's locals and params.

        Flow-insensitive: the last statically seen binding wins, which
        is exact for the repo's construct-then-use style.
        """
        cached = self._local_types.get(fn.qualname)
        if cached is not None:
            return cached
        env: Dict[str, str] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotated = self._annotation_class(fn, arg.annotation)
            if annotated is not None:
                env[arg.arg] = annotated
        for node in own_statements(fn.node):
            if isinstance(node, ast.Assign):
                built = self._constructed_class(fn, node.value)
                if built is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = built
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                annotated = self._annotation_class(fn, node.annotation)
                built = (self._constructed_class(fn, node.value)
                         if node.value is not None else None)
                chosen = built or annotated
                if chosen is not None:
                    env[node.target.id] = chosen
        self._local_types[fn.qualname] = env
        return env

    def attr_types(self, cls: str) -> Dict[str, str]:
        """attr -> class qualname from ``self.attr = C(...)`` sites."""
        cached = self._attr_types.get(cls)
        if cached is not None:
            return cached
        env: Dict[str, str] = {}
        info = self.symbols.classes.get(cls)
        if info is not None:
            for base in info.bases:  # inherited attributes first
                env.update(self.attr_types(base))
            for method_qualname in info.methods.values():
                method = self.symbols.functions[method_qualname]
                receiver = method.self_param
                if receiver is None:
                    continue
                for node in own_statements(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    built = self._constructed_class(method, node.value)
                    if built is None:
                        continue
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == receiver):
                            env[target.attr] = built
        self._attr_types[cls] = env
        return env

    # ------------------------------------------------------------------
    # Call resolution.
    # ------------------------------------------------------------------

    def receiver_class(self, fn: FunctionInfo,
                       node: ast.expr) -> Optional[str]:
        """The class of a receiver expression, when inferable."""
        if isinstance(node, ast.Name):
            if node.id == fn.self_param and fn.cls is not None:
                return fn.cls
            local = self.local_types(fn).get(node.id)
            if local is not None:
                return local
            resolved = self.symbols.resolve_name(fn.module, node)
            if resolved in self.symbols.classes:
                return resolved  # ClassName.method — handled by caller
            return None
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name):
            owner: Optional[str] = None
            if node.value.id == fn.self_param and fn.cls is not None:
                owner = fn.cls
            else:
                owner = self.local_types(fn).get(node.value.id)
            if owner is not None:
                return self.attr_types(owner).get(node.attr)
        if isinstance(node, ast.Call):
            return self._constructed_class(fn, node)
        return None

    def resolve_call(self, fn: FunctionInfo,
                     call: ast.Call) -> Tuple[str, ...]:
        """Candidate function qualnames for one call site."""
        func = call.func
        # ``cls(...)`` inside a classmethod constructs the class (or a
        # subclass): the edge goes to every reachable ``__init__``.
        if isinstance(func, ast.Name) and fn.binding == "class" and \
                fn.params and func.id == fn.params[0] and \
                fn.cls is not None:
            return tuple(self.symbols.override_targets(fn.cls, "__init__"))
        # Plain or dotted name through the module's scope/imports.
        resolved = self.symbols.resolve_name(fn.module, func)
        if resolved is not None:
            if resolved in self.symbols.functions:
                return (resolved,)
            if resolved in self.symbols.classes:
                init = self.symbols.lookup_method(resolved, "__init__")
                return (init,) if init is not None else ()
        if isinstance(func, ast.Attribute):
            # ClassName.method(...): static dispatch, no overrides.
            owner = self.symbols.resolve_name(fn.module, func.value)
            if owner in self.symbols.classes:
                target = self.symbols.lookup_method(owner, func.attr)
                return (target,) if target is not None else ()
            receiver = self.receiver_class(fn, func.value)
            if receiver is not None:
                targets = self.symbols.override_targets(receiver,
                                                        func.attr)
                if targets:
                    return tuple(targets)
            return tuple(self.symbols.duck_candidates(func.attr))
        return ()


class CallGraph:
    """Resolved call sites per function, plus the SCC condensation."""

    def __init__(self, symbols: SymbolTable, resolver: Resolver):
        self.symbols = symbols
        self.resolver = resolver
        #: caller qualname -> resolved call sites in its own body.
        self.sites: Dict[str, List[CallSite]] = {}
        #: caller qualname -> callee qualnames (deduplicated).
        self.edges: Dict[str, Tuple[str, ...]] = {}
        #: callee qualname -> caller qualnames.
        self.callers: Dict[str, List[str]] = {}
        for qualname, fn in symbols.functions.items():
            sites: List[CallSite] = []
            targets: Dict[str, None] = {}
            for node in own_statements(fn.node):
                if isinstance(node, ast.Call):
                    resolved = resolver.resolve_call(fn, node)
                    sites.append((node, resolved))
                    for target in resolved:
                        targets[target] = None
            self.sites[qualname] = sites
            self.edges[qualname] = tuple(targets)
            for target in targets:
                self.callers.setdefault(target, []).append(qualname)

    def sccs(self) -> List[List[str]]:
        """Strongly connected components, callee-first.

        Iterative Tarjan over the caller->callee edges; components pop
        only after every reachable callee component has, so the order
        is exactly what a summary fixpoint wants to process.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        components: List[List[str]] = []
        counter = [0]

        for root in self.edges:
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work.pop()
                if edge_index == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                callees = self.edges.get(node, ())
                for position in range(edge_index, len(callees)):
                    callee = callees[position]
                    if callee not in self.edges:
                        continue  # edge out of the analyzed set
                    if callee not in index:
                        work.append((node, position + 1))
                        work.append((callee, 0))
                        advanced = True
                        break
                    if on_stack.get(callee):
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components
