"""Project-wide symbol table: functions, classes, hierarchy, imports.

Every scanned module contributes its functions (module-level and
methods, nested ones qualified through their enclosing scopes) and its
classes (with base names resolved through the module's import map, so
the hierarchy spans files).  Resolution is deliberately *syntactic* --
no execution, no stubs -- which is exactly enough for a codebase that
dispatches through explicit imports, ``self``, and small duck-typed
registries of same-shaped classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.analysis.base import ImportMap

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that also exist on builtin types (``split``, ``append``,
#: ``get``, ...).  A bare attribute call with one of these names is far
#: more likely a ``str``/``list``/``dict`` operation than a dispatch
#: into a project class, so the duck-typed fallback refuses them.
_BUILTIN_METHODS = frozenset(
    name
    for builtin in (str, bytes, bytearray, list, dict, set, frozenset,
                    tuple, int, float, complex)
    for name in dir(builtin) if not name.startswith("__"))


def module_name(display_path: str) -> str:
    """Dotted module name for a display path.

    ``repro/federation/shard.py`` -> ``repro.federation.shard``; the
    mapping only has to be *consistent* across the project so imports
    and definitions meet on the same spelling.
    """
    path = display_path
    if path.endswith(".py"):
        path = path[:-3]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method definition.

    Attributes:
        qualname: ``module.Class.method`` / ``module.function``.
        module: Dotted module name.
        name: The bare definition name.
        node: The definition's AST node.
        unit: The :class:`~repro.analysis.engine.ModuleUnit` holding it.
        cls: Qualified name of the enclosing class for methods.
        params: Positional/keyword parameter names, in order
            (``self``/``cls`` included for bound methods).
        binding: ``"instance"``, ``"static"``, or ``"class"`` for
            methods (from the decorator list); ``"function"`` otherwise.
            Argument-to-parameter mapping at call sites depends on it:
            a ``@staticmethod`` called through a receiver still binds
            positionally from parameter 0.
    """

    qualname: str
    module: str
    name: str
    node: _FunctionNode
    unit: object
    cls: Optional[str] = None
    params: List[str] = field(default_factory=list)
    binding: str = "function"

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def self_param(self) -> Optional[str]:
        """The receiver parameter name for instance methods."""
        if self.binding == "instance" and self.params:
            return self.params[0]
        return None


@dataclass
class ClassInfo:
    """One class definition and its place in the hierarchy.

    Attributes:
        qualname: ``module.Class``.
        bases: Qualified base-class names when resolvable (unresolvable
            bases -- external libraries, dynamic constructions -- are
            simply absent, which degrades lookups, never crashes them).
        methods: method name -> defining function qualname.
    """

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    unit: object
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """Functions, classes, and import maps for a whole scanned project."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name -> qualnames of every definition project-wide
        #: (the duck-typed registry fallback draws candidates from here).
        self.methods_by_name: Dict[str, List[str]] = {}
        #: module -> its ImportMap (shared with per-module rules).
        self.imports: Dict[str, ImportMap] = {}
        #: module -> local top-level name -> qualname defined there.
        self.module_scope: Dict[str, Dict[str, str]] = {}
        #: class qualname -> direct subclasses.
        self.subclasses: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_unit(self, unit) -> None:
        """Index one parsed module."""
        module = module_name(unit.display_path)
        imports = ImportMap(unit.tree)
        self.imports[module] = imports
        scope = self.module_scope.setdefault(module, {})
        self._index_body(unit, module, unit.tree.body, prefix=module,
                         cls=None, scope=scope)

    def _index_body(self, unit, module: str, body: Iterable[ast.stmt],
                    prefix: str, cls: Optional[str],
                    scope: Optional[Dict[str, str]]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qualname, module=module, name=stmt.name,
                    node=stmt, unit=unit, cls=cls,
                    params=_param_names(stmt),
                    binding=_binding(stmt, cls))
                self.functions[qualname] = info
                if cls is not None:
                    self.classes[cls].methods.setdefault(stmt.name,
                                                         qualname)
                    self.methods_by_name.setdefault(stmt.name,
                                                    []).append(qualname)
                if scope is not None:
                    scope[stmt.name] = qualname
                # Nested defs: indexed for completeness, resolved only
                # through their qualified spelling.
                self._index_body(unit, module, stmt.body,
                                 prefix=qualname, cls=None, scope=None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                info = ClassInfo(qualname=qualname, module=module,
                                 name=stmt.name, node=stmt, unit=unit)
                self.classes[qualname] = info
                if scope is not None:
                    scope[stmt.name] = qualname
                self._index_body(unit, module, stmt.body,
                                 prefix=qualname, cls=qualname,
                                 scope=None)

    def link_hierarchy(self) -> None:
        """Resolve base-class names once every unit is indexed."""
        for info in self.classes.values():
            imports = self.imports.get(info.module)
            scope = self.module_scope.get(info.module, {})
            for base in info.node.bases:
                resolved = self._resolve_class_expr(base, imports, scope)
                if resolved is not None:
                    info.bases.append(resolved)
                    self.subclasses.setdefault(resolved,
                                               []).append(info.qualname)

    def _resolve_class_expr(self, node: ast.expr,
                            imports: Optional[ImportMap],
                            scope: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in scope:
            candidate = scope[node.id]
            if candidate in self.classes:
                return candidate
        if imports is not None:
            resolved = imports.resolve(node)
            if resolved is not None and resolved in self.classes:
                return resolved
        return None

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def resolve_name(self, module: str, node: ast.expr) -> Optional[str]:
        """Qualified target of a name chain, from one module's view.

        Checks the module's own top-level scope first (a local ``def``
        shadows an import of the same name), then the import map; the
        import-map answer is kept only when it names something the
        project actually defines.
        """
        if isinstance(node, ast.Name):
            local = self.module_scope.get(module, {}).get(node.id)
            if local is not None:
                return local
        imports = self.imports.get(module)
        if imports is not None:
            resolved = imports.resolve(node)
            if resolved is not None and (resolved in self.functions
                                         or resolved in self.classes):
                return resolved
        return None

    def lookup_method(self, cls: str, method: str) -> Optional[str]:
        """The defining qualname of ``cls.method``, following bases."""
        seen: Set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            frontier.extend(info.bases)
        return None

    def override_targets(self, cls: str, method: str) -> List[str]:
        """``cls.method`` plus every subclass override (CHA dispatch).

        A call through a base-typed receiver can land in any subclass
        override; summary-based analyses join over all of them.
        """
        targets: List[str] = []
        base = self.lookup_method(cls, method)
        if base is not None:
            targets.append(base)
        frontier = list(self.subclasses.get(cls, []))
        seen: Set[str] = set()
        while frontier:
            sub = frontier.pop(0)
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                targets.append(info.methods[method])
            frontier.extend(self.subclasses.get(sub, []))
        return list(dict.fromkeys(targets))

    def duck_candidates(self, method: str, limit: int = 3) -> List[str]:
        """Every definition of a bare method name, when few enough.

        The duck-typed registries (HE engines, packing codecs, lint
        rules) dispatch on shared method names with no common statically
        visible base; resolving such a call to *all* same-named methods
        is sound as a join.  The ``limit`` keeps wildly common names
        (``get``, ``run``) from smearing summaries across the project --
        past it the call stays unresolved and the caller falls back to
        its local heuristics -- and names shadowing builtin methods
        (``split``, ``append``) are refused outright: an unresolved
        receiver with such a name is almost always a ``str`` or
        ``list``, and misresolving it into a project class manufactures
        phantom call paths.
        """
        if method in _BUILTIN_METHODS:
            return []
        candidates = self.methods_by_name.get(method, [])
        if 0 < len(candidates) <= limit:
            return list(candidates)
        return []


def _param_names(func: _FunctionNode) -> List[str]:
    args = func.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _binding(func: _FunctionNode, cls: Optional[str]) -> str:
    """How a definition binds at call sites (see ``FunctionInfo``)."""
    if cls is None:
        return "function"
    for decorator in func.decorator_list:
        name = decorator.id if isinstance(decorator, ast.Name) else \
            decorator.attr if isinstance(decorator, ast.Attribute) else ""
        if name == "staticmethod":
            return "static"
        if name == "classmethod":
            return "class"
    return "instance"
