"""Interprocedural analysis (ipa): the whole-program layer under flcheck.

The five original flcheck rules are strictly per-module: each sees one
parsed file and nothing else, which is why a decrypt result laundered
through a one-line helper reached the channel unseen.  This subpackage
gives rules a *project* view:

- :mod:`repro.analysis.ipa.symbols` -- a project-wide symbol table:
  every function and class under the scanned roots, module-qualified,
  with the class hierarchy resolved so method lookups follow
  inheritance (and, conservatively, overrides in subclasses -- the
  duck-typed engine/codec/rule registries dispatch on shared method
  names, never on concrete types);
- :mod:`repro.analysis.ipa.callgraph` -- call-site resolution
  (imported names, ``self.method``, ``Class()`` construction, locally
  inferred receiver types, bounded duck-typed fallback) condensed into
  a call graph with Tarjan SCCs, so recursion is a fixpoint over one
  component instead of an infinite descent;
- :mod:`repro.analysis.ipa.dataflow` -- the worklist framework that
  computes one *summary* per function, callee-first over the SCC
  condensation, iterating each SCC to a fixpoint;
- :mod:`repro.analysis.ipa.project` -- the :class:`Project` facade the
  engine builds once per run and hands to every project-scoped rule;
- :mod:`repro.analysis.ipa.taint_summaries` -- the interprocedural
  upgrade of ``plaintext-wire``: per-function taint summaries
  (param -> sink, tainted returns, ``self`` attribute flows, encrypt
  sanitizers) composed along the call graph, with the full call path
  rendered in every diagnostic;
- :mod:`repro.analysis.ipa.wal_rule` -- ``wal-discipline``: the
  journal-then-act typestate check over WAL records;
- :mod:`repro.analysis.ipa.conservation` -- ``ledger-conservation``:
  admission charges matched against the queue-accounting counter
  algebra exported by :mod:`repro.ledger`.

Summaries are context-insensitive (one summary per function, joined
over all call sites) but *summary-composed*: a helper's effects are
applied at every caller, so a taint fact or journal obligation crosses
any number of call boundaries at a cost linear in program size.
"""

from repro.analysis.ipa.callgraph import CallGraph, Resolver
from repro.analysis.ipa.dataflow import SummaryAnalysis
from repro.analysis.ipa.project import Project
from repro.analysis.ipa.symbols import ClassInfo, FunctionInfo, SymbolTable

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "Project",
    "Resolver",
    "SummaryAnalysis",
    "SymbolTable",
]
