"""Interprocedural taint for ``plaintext-wire``: summaries + reporting.

The per-module rule in :mod:`repro.analysis.taint` stops at call
boundaries: a decrypt result laundered through a one-line helper reaches
the channel unseen.  This module closes that hole with *per-function
taint summaries* composed along the project call graph:

- ``ret_always`` -- the function returns decrypted data no matter what
  goes in (it calls ``decrypt*`` / builds a ``PlainTensor`` and returns
  the result, possibly through further summarized calls);
- ``ret_deps`` -- parameter indices whose taint flows to the return
  value (a pass-through helper has ``ret_deps == {0}``; an
  ``encrypt_tensor`` wrapper has *empty* ``ret_deps``, which is exactly
  the sanitizer summary: composition makes its result clean);
- ``sink_params`` -- parameter indices that reach a wire/WAL sink
  inside the function or transitively through its callees, each with
  the shortest call path to the sink;
- ``attr_always`` / ``attr_deps`` -- ``self`` attributes the function
  stores taint into (unconditionally, or when a given parameter is
  tainted).

Summaries are context-insensitive (one per function, joined over call
sites and over CHA dispatch candidates) and are computed with the same
boolean engine as the local rule: each function body is re-analyzed
under one *assumption* per parameter ("only parameter ``i`` is
tainted"), and facts that appear under assumption ``i`` but not under
the empty assumption are attributed to that parameter.  Monotonicity of
the boolean lattice makes the attribution exact.

``self``-attribute flows are tracked object-insensitively: one
project-wide set of attribute *names* that may hold plaintext, grown to
a fixpoint by re-running the summary pass until no new attribute is
discovered (a ``self.buf = decrypt(...)`` in one method makes
``self.buf`` a taint source in every other method reading it).

The reporting pass then re-analyzes each function with all summaries
and the attribute set active and emits only findings the local rule
cannot see (anything it can see is deduplicated away by location), with
the full call path rendered in the message::

    plaintext leak: decrypted value 'share' flows into relay() and
    reaches send() (path: collect -> relay -> forward -> send())
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.base import callee_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.ipa.dataflow import SummaryAnalysis
from repro.analysis.ipa.project import Project
from repro.analysis.ipa.symbols import FunctionInfo
from repro.analysis.taint import (_describe, _FunctionTaint, _sink_label,
                                  _target_names)

#: Assumption runs per function are bounded: parameters past this index
#: are never assumed tainted (their flows fall back to the local rule).
MAX_ASSUMED_PARAMS = 6

#: Global attribute-taint rounds (each is a full summary fixpoint); the
#: attribute name set grows monotonically so this converges fast.
MAX_ATTR_ROUNDS = 4

#: One summarized sink flow: (parameter index, sink label, call path).
SinkFlow = Tuple[int, str, Tuple[str, ...]]


@dataclass(frozen=True)
class TaintSummary:
    """Taint effects of one function, composable at its call sites."""

    ret_always: bool = False
    ret_deps: FrozenSet[int] = frozenset()
    sink_params: Tuple[SinkFlow, ...] = ()
    attr_always: FrozenSet[str] = frozenset()
    attr_deps: FrozenSet[Tuple[str, int]] = frozenset()

    def sink_flows_for(self, index: int) -> List[Tuple[str, Tuple[str, ...]]]:
        return [(label, path) for i, label, path in self.sink_params
                if i == index]


EMPTY_SUMMARY = TaintSummary()


def _param_offset(candidate: FunctionInfo, call: ast.Call,
                  static_receiver: bool) -> int:
    """Index of the first positional argument in the candidate's params.

    ``obj.m(a)`` binds ``a`` to parameter 1 of an instance method
    (``self`` is the receiver) and of a classmethod (``cls`` is
    implicit); a ``@staticmethod`` binds from 0 even through a
    receiver.  ``Class.m(obj, a)`` and plain functions bind from 0.
    Constructor calls ``C(...)`` resolve to ``__init__`` whose ``self``
    is likewise implicit.
    """
    if not candidate.is_method or candidate.binding == "static":
        return 0
    if candidate.name == "__init__" and not isinstance(call.func,
                                                       ast.Attribute):
        return 1  # C(...) constructor call
    if isinstance(call.func, ast.Attribute) and not static_receiver:
        return 1  # bound call through a receiver
    if candidate.binding == "class":
        return 1  # Class.m(a): ``cls`` is still implicit
    return 0


class _IpaTaint(_FunctionTaint):
    """The boolean taint engine extended with summary composition.

    One instance analyzes one function body either to *summarize* it
    (``assumed`` carries parameter names taken as tainted; effects are
    collected, no diagnostics) or to *report* (``assumed`` empty,
    ``collect_findings`` true).
    """

    def __init__(self, rule, fn: FunctionInfo, analysis: "TaintSummaries",
                 assumed: FrozenSet[str] = frozenset(),
                 collect_findings: bool = False):
        super().__init__(rule, fn.unit, fn.name)
        self.fn = fn
        self.analysis = analysis
        self.assumed = assumed
        self.collect_findings = collect_findings
        self.tainted |= assumed
        # Collected effects (summary mode).
        self.returned_taint = False
        self.attrs_written: Set[str] = set()
        #: (sink label, call path starting at this function) -> None.
        self.sink_hits: Dict[Tuple[str, Tuple[str, ...]], None] = {}
        # Per-name provenance for readable reporting-mode messages.
        self.origins: Dict[str, str] = {}
        self._origin_call: Optional[str] = None
        # Call targets pre-resolved by the call graph for this body.
        self._site_targets: Dict[int, Tuple[str, ...]] = {
            id(site): targets
            for site, targets in
            analysis.callgraph.sites.get(fn.qualname, [])}

    # -- candidate plumbing ----------------------------------------------

    def _candidates(self, call: ast.Call) -> List[FunctionInfo]:
        symbols = self.analysis.symbols
        targets = self._site_targets.get(id(call))
        if targets is None:
            targets = self.analysis.resolve(self.fn, call)
        found = []
        for qualname in targets:
            info = symbols.functions.get(qualname)
            if info is not None:
                found.append(info)
        return found

    def _static_receiver(self, call: ast.Call) -> bool:
        if not isinstance(call.func, ast.Attribute):
            return False
        owner = self.analysis.symbols.resolve_name(self.fn.module,
                                                   call.func.value)
        return owner in self.analysis.symbols.classes

    def _actual_taints(self, call: ast.Call, candidate: FunctionInfo,
                       receiver: bool, arg_taints: List[bool],
                       kw_taints: Dict[Optional[str], bool],
                       ) -> Dict[int, ast.expr]:
        """param index -> the tainted actual expression feeding it."""
        offset = _param_offset(candidate, call, self._static_receiver(call))
        flows: Dict[int, ast.expr] = {}
        if receiver and offset == 1 and candidate.binding == "instance" \
                and isinstance(call.func, ast.Attribute):
            flows[0] = call.func.value
        for position, arg in enumerate(call.args):
            if arg_taints[position]:
                flows[offset + position] = arg
        for kw in call.keywords:
            if kw.arg is not None and kw_taints.get(kw.arg) and \
                    kw.arg in candidate.params:
                flows[candidate.params.index(kw.arg)] = kw.value
        return flows

    # -- hook overrides ---------------------------------------------------

    def call_effect(self, node: ast.Call, receiver_tainted: bool,
                    arg_taints: List[bool],
                    kw_taints: Dict[Optional[str], bool]) -> Optional[bool]:
        candidates = self._candidates(node)
        if not candidates:
            return None  # unresolved call: keep the local heuristic
        for candidate in candidates:
            summary = self.analysis.summary_for(candidate.qualname)
            if summary.ret_always:
                self._origin_call = callee_name(node.func)
                return True
            flows = self._actual_taints(node, candidate, receiver_tainted,
                                        arg_taints, kw_taints)
            if any(index in summary.ret_deps for index in flows):
                self._origin_call = callee_name(node.func)
                return True
        # Every candidate's summary says the result is clean: this is
        # the sanitizer summary (an encrypt_tensor wrapper's result is
        # clean whatever went in), overriding the local heuristic.
        return False

    def observe_call(self, call: ast.Call) -> None:
        candidates = self._candidates(call)
        if not candidates:
            return
        receiver = isinstance(call.func, ast.Attribute) and \
            self.is_tainted(call.func.value)
        arg_taints = [self.is_tainted(arg) for arg in call.args]
        kw_taints = {kw.arg: self.is_tainted(kw.value)
                     for kw in call.keywords}
        if not (receiver or any(arg_taints) or any(kw_taints.values())):
            return
        for candidate in candidates:
            summary = self.analysis.summary_for(candidate.qualname)
            flows = self._actual_taints(call, candidate, receiver,
                                        arg_taints, kw_taints)
            for index, actual in sorted(flows.items()):
                for label, path in summary.sink_flows_for(index):
                    self._record_summary_sink(call, candidate, actual,
                                              label, path)
            if not self.assumed and candidate.cls is not None:
                # Taint stored into an attribute by the callee becomes
                # grounded once a really-tainted actual reaches it.
                for attr, index in summary.attr_deps:
                    if index in flows:
                        self.analysis.discovered_attrs.add(
                            (candidate.cls, attr))

    def _record_summary_sink(self, call: ast.Call, candidate: FunctionInfo,
                             actual: ast.expr, label: str,
                             path: Tuple[str, ...]) -> None:
        full_path = (self.fn.name,) + path
        self.sink_hits.setdefault((label, full_path), None)
        if not (self.collect_findings and self.reporting):
            return
        site = (call.lineno, call.col_offset, label)
        if site in self._seen:
            return
        self._seen.add(site)
        rendered = " -> ".join(full_path) + f" -> {label}()"
        self.hits.append(self.rule.diagnostic(
            self.unit, call,
            f"plaintext leak: decrypted value {_describe(actual)} flows "
            f"into {candidate.name}() and reaches {label}() without "
            f"passing through encrypt_tensor (path: {rendered})",
            symbol=self.symbol))

    def attribute_taint(self, node: ast.Attribute) -> Optional[bool]:
        if isinstance(node.value, ast.Name) and \
                node.value.id == self.fn.self_param and \
                self.analysis.attr_is_tainted(self.fn.cls, node.attr):
            return True
        return None

    def bind_attribute(self, target: ast.Attribute,
                       value_tainted: bool) -> bool:
        if not (isinstance(target.value, ast.Name)
                and target.value.id == self.fn.self_param):
            return False
        if value_tainted:
            self.attrs_written.add(target.attr)
        return True  # claim it: do not coarsely taint ``self`` itself

    def _bind(self, target: ast.expr, value_tainted: bool) -> None:
        """Structured targets, unlike the base's name walk.

        The base rule taints every name inside an assignment target, so
        ``self.weights[i] = tainted`` taints ``self`` and ``i`` -- too
        coarse once attributes are tracked by name: a tainted ``self``
        makes *every* attribute read tainted.  Here subscript and
        starred wrappers unwrap to the container being written (weak
        update: writing one clean element does not clean it), and
        attribute writes go through :meth:`bind_attribute`.
        """
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, value_tainted)
            return
        core = target
        while isinstance(core, (ast.Subscript, ast.Starred)):
            core = core.value
        weak = core is not target
        if isinstance(core, ast.Attribute):
            if self.bind_attribute(core, value_tainted):
                return
            if value_tainted:  # obj.attr = tainted: obj now holds taint
                for name in _target_names(core.value):
                    self.tainted.add(name)
            return
        if isinstance(core, ast.Name):
            if value_tainted:
                self.tainted.add(core.id)
            elif not weak:
                self.tainted.discard(core.id)
                self.origins.pop(core.id, None)
            return
        super()._bind(target, value_tainted)

    def on_return(self, tainted: bool) -> None:
        if tainted:
            self.returned_taint = True

    # -- sinks and provenance ---------------------------------------------

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        self._origin_call = None
        super()._assign(targets, value)
        origin = self._origin_call
        for target in targets:
            for name in _target_names(target):
                if name not in self.tainted:
                    self.origins.pop(name, None)
                elif origin is not None:
                    self.origins[name] = origin

    def _scan_sinks(self, node: ast.AST) -> None:
        """Record sink facts always; emit diagnostics only when reporting.

        Replaces the base scanner so summary mode can harvest reached
        sinks without fabricating diagnostics, and reporting mode can
        attach provenance for summary-produced taint.
        """
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            self.observe_call(call)
            label = _sink_label(call.func)
            if not label:
                continue
            flows = [arg for arg in call.args if self.is_tainted(arg)]
            flows += [kw.value for kw in call.keywords
                      if self.is_tainted(kw.value)]
            if not flows:
                continue
            self.sink_hits.setdefault((label, (self.fn.name,)), None)
            if not (self.collect_findings and self.reporting):
                continue
            key = (call.lineno, call.col_offset)
            if key in self._seen:
                continue
            self._seen.add(key)
            described = _describe(flows[0])
            origin = ""
            if isinstance(flows[0], ast.Name):
                producer = self.origins.get(flows[0].id)
                if producer is not None:
                    origin = f" (returned decrypted by {producer}())"
            self.hits.append(self.rule.diagnostic(
                self.unit, call,
                f"plaintext leak: decrypted value {described}{origin} "
                f"reaches {label}() without passing through "
                f"encrypt_tensor", symbol=self.symbol))


class TaintSummaries(SummaryAnalysis):
    """Fixpoint of :class:`TaintSummary` over the project call graph."""

    def __init__(self, rule, project: Project,
                 attr_taint: Optional[Set[Tuple[str, str]]] = None):
        super().__init__(project.callgraph)
        self.rule = rule
        self.project = project
        #: (class qualname, attribute name) pairs that may hold
        #: plaintext; scoped per class so two unrelated ``buf``
        #: attributes never contaminate each other.
        self.attr_taint: Set[Tuple[str, str]] = set(attr_taint or ())
        #: Attribute pairs grounded through call sites this run.
        self.discovered_attrs: Set[Tuple[str, str]] = set()

    def resolve(self, fn: FunctionInfo, call: ast.Call) -> Tuple[str, ...]:
        return self.project.resolver.resolve_call(fn, call)

    def attr_is_tainted(self, cls: Optional[str], attr: str) -> bool:
        """Whether ``cls`` (or any ancestor) has a tainted ``attr``."""
        seen: Set[str] = set()
        frontier = [cls] if cls is not None else []
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if (current, attr) in self.attr_taint:
                return True
            info = self.symbols.classes.get(current)
            if info is not None:
                frontier.extend(info.bases)
        return False

    def summary_for(self, qualname: str) -> TaintSummary:
        summary = self.summary(qualname)
        return summary if summary is not None else EMPTY_SUMMARY

    # -- SummaryAnalysis interface ----------------------------------------

    def bottom(self, fn: FunctionInfo) -> TaintSummary:
        return EMPTY_SUMMARY

    def _analyze(self, fn: FunctionInfo,
                 assumed: FrozenSet[str]) -> _IpaTaint:
        analyzer = _IpaTaint(self.rule, fn, self, assumed=assumed)
        analyzer.run(fn.node.body)
        return analyzer

    def transfer(self, fn: FunctionInfo, get_summary) -> TaintSummary:
        base = self._analyze(fn, frozenset())
        ret_always = base.returned_taint
        attr_always = frozenset(base.attrs_written)
        base_sinks = set(base.sink_hits)
        ret_deps: Set[int] = set()
        attr_deps: Set[Tuple[str, int]] = set()
        sink_params: Dict[Tuple[int, str], Tuple[str, ...]] = {}
        for index, param in enumerate(fn.params[:MAX_ASSUMED_PARAMS]):
            assumed = self._analyze(fn, frozenset({param}))
            if assumed.returned_taint and not ret_always:
                ret_deps.add(index)
            for attr in assumed.attrs_written - base.attrs_written:
                attr_deps.add((attr, index))
            for label, path in assumed.sink_hits:
                if (label, path) in base_sinks:
                    continue  # reached without this parameter's help
                best = sink_params.get((index, label))
                if best is None or (len(path), path) < (len(best), best):
                    sink_params[(index, label)] = path
        flows = tuple(sorted(
            (index, label, path)
            for (index, label), path in sink_params.items()))
        return TaintSummary(ret_always=ret_always,
                            ret_deps=frozenset(ret_deps),
                            sink_params=flows,
                            attr_always=attr_always,
                            attr_deps=frozenset(attr_deps))


def collect_ipa_findings(rule, project: Project) -> List[Diagnostic]:
    """All interprocedural ``plaintext-wire`` findings for a project.

    Runs the attribute fixpoint (summaries re-derived until no new
    tainted ``self`` attribute appears), then one reporting pass per
    function; findings the per-module rule already produces are
    deduplicated away by location so the two passes compose without
    double counts.
    """
    attr_taint: Set[Tuple[str, str]] = set()
    analysis = TaintSummaries(rule, project, attr_taint)
    analysis.run()
    for _ in range(MAX_ATTR_ROUNDS):
        grown = analysis.discovered_attrs | _always_attrs(analysis)
        if grown <= attr_taint:
            break
        attr_taint |= grown
        analysis = TaintSummaries(rule, project, attr_taint)
        analysis.run()

    local_keys = _local_finding_keys(rule, project)
    findings: List[Diagnostic] = []
    for qualname in sorted(analysis.symbols.functions):
        fn = analysis.symbols.functions[qualname]
        reporter = _IpaTaint(rule, fn, analysis, collect_findings=True)
        for diag in reporter.run(fn.node.body):
            if (diag.path, diag.line, diag.col) in local_keys:
                continue
            findings.append(diag)
    return findings


def _always_attrs(analysis: TaintSummaries) -> Set[Tuple[str, str]]:
    grown: Set[Tuple[str, str]] = set()
    for qualname, summary in analysis.summaries.items():
        if not isinstance(summary, TaintSummary) or not summary.attr_always:
            continue
        fn = analysis.symbols.functions.get(qualname)
        if fn is not None and fn.cls is not None:
            grown |= {(fn.cls, attr) for attr in summary.attr_always}
    return grown


def _local_finding_keys(rule, project: Project) -> Set[Tuple[str, int, int]]:
    """(path, line, col) of every purely local plaintext-wire finding."""
    keys: Set[Tuple[str, int, int]] = set()
    for unit in project.units.values():
        for diag in rule.check(unit):
            keys.add((diag.path, diag.line, diag.col))
    return keys
