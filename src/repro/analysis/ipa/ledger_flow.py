"""Rule ``ledger-conservation``: admission charges move flow counters.

The ingress queues promise ``accepted + migrated_in - migrated_out ==
delivered + shed + failed + queued`` (see the conservation tables in
:mod:`repro.ledger`), and the cost ledger sees the same events through
``comm.admission.*`` / ``fault.shed`` charges.  The two views only
reconcile when they move together, so the rule checks both directions:

- **charge-without-counter** -- a charge whose category names an
  admission verdict must have a matching counter increment (per
  :data:`repro.ledger.CONSERVATION_COUNTERS`) somewhere in its
  control-flow neighbourhood: the charging function, its callees
  (transitively), or any caller and *its* callees.  The neighbourhood
  is deliberately wide because the repo splits the two sides across
  helpers (``_charge_admission_accept`` charges, its caller ``submit``
  counts).
- **counter-without-charge** -- incrementing ``accepted`` / a
  ``rejected_*`` counter / ``shed`` on a conservation-tracked stats
  object without any charge of the corresponding verdict in the same
  neighbourhood leaves the ledger blind to an admission event.
  Outflow counters (``delivered``, ``failed``, ``migrated_*``) are
  exempt: delivery cost is charged by the transfer itself.

A *tracked* stats class is one whose annotated fields cover the whole
conservation vocabulary (both sides of the equation); increments on
receivers that provably have some *other* type (``FuzzReport.accepted``
counts fuzz verdicts, not admissions) are out of scope, while
receivers the resolver cannot type are kept in scope -- the in-tree
stats objects come out of dict lookups the type inference cannot see
through, and skipping them would hollow the rule out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Rule, callee_name, register
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.ipa.callgraph import own_statements
from repro.analysis.ipa.dataflow import SummaryAnalysis
from repro.analysis.ipa.symbols import FunctionInfo
from repro.ledger import (
    CAT_COMM_ADMISSION_ACCEPT,
    CAT_COMM_ADMISSION_QUOTA,
    CAT_COMM_ADMISSION_REJECT,
    CAT_FAULT_SHED,
    CONSERVATION_COUNTERS,
    CONSERVATION_SINKS,
    CONSERVATION_SOURCES,
)

#: Constant name -> category value, for charge sites spelled through
#: the ledger module's constants rather than string literals.
_CATEGORY_CONSTANTS = {
    "CAT_COMM_ADMISSION_ACCEPT": CAT_COMM_ADMISSION_ACCEPT,
    "CAT_COMM_ADMISSION_REJECT": CAT_COMM_ADMISSION_REJECT,
    "CAT_COMM_ADMISSION_QUOTA": CAT_COMM_ADMISSION_QUOTA,
    "CAT_FAULT_SHED": CAT_FAULT_SHED,
}

#: counter name -> verdicts whose charge accounts for it (the inverse
#: of CONSERVATION_COUNTERS; a counter served by several verdicts is
#: satisfied by any of them).
_COUNTER_VERDICTS: Dict[str, FrozenSet[str]] = {}
for _verdict, _counters in CONSERVATION_COUNTERS.items():
    for _counter in _counters:
        _COUNTER_VERDICTS[_counter] = _COUNTER_VERDICTS.get(
            _counter, frozenset()) | {_verdict}

#: Every counter name in the conservation vocabulary.  Rejection
#: counters sit outside the queue equation (a rejected upload was never
#: accepted) but inside the charge correspondence, so both sets join.
_ALL_COUNTERS = CONSERVATION_SOURCES | CONSERVATION_SINKS | frozenset(
    counter for counters in CONSERVATION_COUNTERS.values()
    for counter in counters)


def _category_verdicts(category: str) -> FrozenSet[str]:
    """Verdicts named by one category string (empty when unrelated)."""
    if category == CAT_FAULT_SHED:
        return frozenset({"shed"})
    parts = category.split(".")
    if len(parts) >= 3 and parts[0] == "comm" and parts[1] == "admission" \
            and parts[2] in CONSERVATION_COUNTERS:
        return frozenset({parts[2]})
    return frozenset()


def _expr_verdicts(node: ast.expr) -> FrozenSet[str]:
    """Verdicts a charge's category expression can denote.

    Handles string literals, the ``CAT_*`` constants,
    ``admission_category(<verdict>, ...)`` calls, and conditional
    expressions over any of those (``"quota" if quota else "reject"``
    charges either verdict, so both count).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _category_verdicts(node.value)
    if isinstance(node, ast.Name) and node.id in _CATEGORY_CONSTANTS:
        return _category_verdicts(_CATEGORY_CONSTANTS[node.id])
    if isinstance(node, ast.IfExp):
        return _expr_verdicts(node.body) | _expr_verdicts(node.orelse)
    if isinstance(node, ast.Call) and \
            callee_name(node.func) == "admission_category" and node.args:
        verdict = node.args[0]
        if isinstance(verdict, ast.Constant) and \
                isinstance(verdict.value, str):
            return frozenset({verdict.value}) & set(CONSERVATION_COUNTERS)
        if isinstance(verdict, ast.IfExp):
            names: Set[str] = set()
            for arm in (verdict.body, verdict.orelse):
                if isinstance(arm, ast.Constant) and \
                        isinstance(arm.value, str):
                    names.add(arm.value)
            return frozenset(names) & set(CONSERVATION_COUNTERS)
    return frozenset()


def _charge_verdicts(call: ast.Call) -> FrozenSet[str]:
    """Verdicts charged by one call, or empty when it is not a charge."""
    if callee_name(call.func) != "charge":
        return frozenset()
    category: Optional[ast.expr] = None
    if call.args:
        category = call.args[0]
    else:
        for keyword in call.keywords:
            if keyword.arg == "category":
                category = keyword.value
    if category is None:
        return frozenset()
    return _expr_verdicts(category)


def tracked_classes(project) -> Set[str]:
    """Classes whose annotated fields span the conservation vocabulary."""
    tracked: Set[str] = set()
    for qualname, info in project.symbols.classes.items():
        fields = {stmt.target.id for stmt in info.node.body
                  if isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)}
        if _ALL_COUNTERS <= fields:
            tracked.add(qualname)
    return tracked


def _counter_increments(project, tracked: Set[str],
                        fn: FunctionInfo) -> List[Tuple[ast.AugAssign, str]]:
    """In-scope ``<stats>.<counter> += n`` sites in one function."""
    increments: List[Tuple[ast.AugAssign, str]] = []
    for node in own_statements(fn.node):
        if not isinstance(node, ast.AugAssign) or \
                not isinstance(node.op, ast.Add) or \
                not isinstance(node.target, ast.Attribute):
            continue
        counter = node.target.attr
        if counter not in _ALL_COUNTERS:
            continue
        receiver = project.resolver.receiver_class(fn, node.target.value)
        if receiver is not None and receiver not in tracked:
            continue  # provably some other type's field (e.g. FuzzReport)
        increments.append((node, counter))
    return increments


@dataclass(frozen=True)
class FlowEffects:
    """Counters moved and verdicts charged by a function, transitively."""

    counters: FrozenSet[str] = frozenset()
    verdicts: FrozenSet[str] = frozenset()

    def __or__(self, other: "FlowEffects") -> "FlowEffects":
        return FlowEffects(counters=self.counters | other.counters,
                           verdicts=self.verdicts | other.verdicts)


class FlowSummaries(SummaryAnalysis):
    """Fixpoint of :class:`FlowEffects` over the call graph."""

    def __init__(self, project, tracked: Set[str]):
        super().__init__(project.callgraph)
        self.project = project
        self.tracked = tracked

    def bottom(self, fn: FunctionInfo) -> FlowEffects:
        return FlowEffects()

    def transfer(self, fn: FunctionInfo, get_summary) -> FlowEffects:
        counters = {counter for _, counter in
                    _counter_increments(self.project, self.tracked, fn)}
        verdicts: Set[str] = set()
        for node in own_statements(fn.node):
            if not isinstance(node, ast.Call):
                continue
            verdicts |= _charge_verdicts(node)
            for qualname in self.project.resolver.resolve_call(fn, node):
                callee = get_summary(qualname)
                if isinstance(callee, FlowEffects):
                    counters |= callee.counters
                    verdicts |= callee.verdicts
        return FlowEffects(counters=frozenset(counters),
                           verdicts=frozenset(verdicts))


@register
class LedgerConservationRule(Rule):
    name = "ledger-conservation"
    description = ("admission verdict charges and conservation-law flow "
                   "counters must move together (accepted == delivered "
                   "+ shed + failed + queued, modulo migration)")
    needs_project = True

    def check_project(self, project) -> Iterator[Diagnostic]:
        tracked = tracked_classes(project)
        effects = FlowSummaries(project, tracked)
        effects.run()
        for qualname in sorted(project.symbols.functions):
            fn = project.symbols.functions[qualname]
            nearby = self._neighbourhood(effects, qualname)
            yield from self._check_charges(fn, nearby)
            yield from self._check_counters(project, tracked, fn, nearby)

    # ------------------------------------------------------------------

    @staticmethod
    def _neighbourhood(effects: FlowSummaries,
                       qualname: str) -> FlowEffects:
        """Own transitive effects, joined with every caller's.

        A caller's summary already includes *its* callees, so sibling
        helpers (``submit`` counts what ``_charge_admission_accept``
        charges) fall inside the neighbourhood without a second hop.
        """
        nearby = effects.summary(qualname) or FlowEffects()
        for caller in effects.callgraph.callers.get(qualname, ()):
            summary = effects.summary(caller)
            if isinstance(summary, FlowEffects):
                nearby = nearby | summary
        return nearby

    def _check_charges(self, fn: FunctionInfo,
                       nearby: FlowEffects) -> Iterator[Diagnostic]:
        for node in own_statements(fn.node):
            if not isinstance(node, ast.Call):
                continue
            verdicts = _charge_verdicts(node)
            if not verdicts:
                continue
            required = frozenset().union(
                *(CONSERVATION_COUNTERS[v] for v in verdicts))
            if required & nearby.counters:
                continue
            label = "/".join(sorted(verdicts))
            expected = ", ".join(sorted(required))
            yield self.diagnostic(
                fn.unit, node,
                f"admission charge ({label}) with no matching flow "
                f"counter: the conservation law expects one of "
                f"[{expected}] to move in this function, a callee, or "
                f"a caller, or the ledger and the queue stats drift "
                f"apart",
                symbol=fn.name)

    def _check_counters(self, project, tracked: Set[str],
                        fn: FunctionInfo,
                        nearby: FlowEffects) -> Iterator[Diagnostic]:
        for node, counter in _counter_increments(project, tracked, fn):
            required = _COUNTER_VERDICTS.get(counter)
            if required is None:
                continue  # outflow counter with no admission category
            if required & nearby.verdicts:
                continue
            expected = " or ".join(
                f"comm.admission.{v}" if v != "shed" else CAT_FAULT_SHED
                for v in sorted(required))
            yield self.diagnostic(
                fn.unit, node,
                f"flow counter '{counter}' moves without a ledger "
                f"charge: no {expected} charge in this function, a "
                f"callee, or a caller, so the admission event is "
                f"invisible to cost accounting",
                symbol=fn.name)
