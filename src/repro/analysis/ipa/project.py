"""The :class:`Project` facade: what project-scoped rules analyze.

Built once per lint run from every discovered module (even under
``--changed-only``, where per-module rules run on a subset but the call
graph still spans the whole tree -- a cross-function flow does not care
which file the diff touched).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.ipa.callgraph import CallGraph, Resolver
from repro.analysis.ipa.symbols import FunctionInfo, SymbolTable


class Project:
    """Symbol table + call graph over a set of parsed modules.

    Attributes:
        units: display path -> :class:`~repro.analysis.engine.ModuleUnit`
            for every module in the program.
        symbols: The project-wide :class:`SymbolTable`.
        resolver: Shared call-site :class:`Resolver` (type caches warm
            across rules).
        callgraph: The resolved :class:`CallGraph`.
    """

    def __init__(self, units: Iterable) -> None:
        self.units: Dict[str, object] = {}
        self.symbols = SymbolTable()
        for unit in units:
            self.units[unit.display_path] = unit
            self.symbols.add_unit(unit)
        self.symbols.link_hierarchy()
        self.resolver = Resolver(self.symbols)
        self.callgraph = CallGraph(self.symbols, self.resolver)

    def unit_for(self, display_path: str):
        """The module unit behind a diagnostic path (pragma lookups)."""
        return self.units.get(display_path)

    def functions_in(self, display_path: str) -> List[FunctionInfo]:
        """Every function defined in one module, in definition order."""
        return sorted(
            (fn for fn in self.symbols.functions.values()
             if fn.unit is self.units.get(display_path)),
            key=lambda fn: fn.node.lineno)

    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        return self.symbols.functions.get(qualname)
