"""The summary fixpoint: worklist over the call-graph condensation.

An analysis derives from :class:`SummaryAnalysis` and implements one
method, :meth:`SummaryAnalysis.transfer`, which recomputes a function's
summary by reading its callees' current summaries.  The driver applies
it callee-first over the SCC condensation; inside a component (mutual
recursion) it iterates until no member's summary changes.  Summaries
must be plain comparable values (``==`` decides convergence) and
``transfer`` must be *monotone* over whatever join the analysis uses,
or the loop guard below will stop it after a bounded number of rounds
rather than diverge.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.analysis.ipa.callgraph import CallGraph
from repro.analysis.ipa.symbols import FunctionInfo

#: Hard bound on fixpoint rounds inside one SCC; any monotone summary
#: lattice in this package converges far earlier, so hitting it means a
#: non-monotone transfer -- stop deterministically instead of spinning.
MAX_SCC_ROUNDS = 50


class SummaryAnalysis:
    """Base class computing one summary per function over a call graph."""

    def __init__(self, callgraph: CallGraph):
        self.callgraph = callgraph
        self.symbols = callgraph.symbols
        self.summaries: Dict[str, Any] = {}

    # -- analysis interface ---------------------------------------------

    def bottom(self, fn: FunctionInfo) -> Any:
        """The starting summary (the lattice bottom)."""
        return None

    def transfer(self, fn: FunctionInfo,
                 get_summary: Callable[[str], Any]) -> Any:
        """Recompute ``fn``'s summary; read callees via ``get_summary``."""
        raise NotImplementedError

    # -- driver ----------------------------------------------------------

    def summary(self, qualname: str) -> Any:
        """The current summary for a function (bottom when unknown)."""
        if qualname not in self.summaries:
            fn = self.symbols.functions.get(qualname)
            self.summaries[qualname] = self.bottom(fn) if fn else None
        return self.summaries[qualname]

    def run(self) -> Dict[str, Any]:
        """Compute every function's summary to a fixpoint."""
        for qualname, fn in self.symbols.functions.items():
            self.summaries[qualname] = self.bottom(fn)
        for component in self.callgraph.sccs():
            if len(component) == 1 and \
                    component[0] not in self.callgraph.edges.get(
                        component[0], ()):
                # Non-recursive function: one transfer is the fixpoint
                # (callees are already final in callee-first order).
                fn = self.symbols.functions[component[0]]
                self.summaries[component[0]] = self.transfer(
                    fn, self.summary)
                continue
            for _ in range(MAX_SCC_ROUNDS):
                changed = False
                for qualname in component:
                    fn = self.symbols.functions[qualname]
                    updated = self.transfer(fn, self.summary)
                    if updated != self.summaries[qualname]:
                        self.summaries[qualname] = updated
                        changed = True
                if not changed:
                    break
        return self.summaries
