"""Rule ``wal-discipline``: journal-then-act typestate over WAL records.

The durability story in :mod:`repro.federation` hinges on one ordering:
a state mutation must be *journaled* before it *acts*, so replaying the
write-ahead log after a crash reproduces exactly the state the dead
process reached.  The in-tree pattern is ``_log``::

    record = WalRecord(kind=..., ...)
    lsn = self.wal.append(record)      # journal ...
    self._apply(record)                # ... then act

Three ways to get it wrong, three checks:

- **fresh-apply** -- a record constructed with ``WalRecord(...)`` is
  passed to an act call (``_apply`` / ``apply``) before any
  ``wal.append`` of that same record: the mutation would not survive a
  crash.  Records read back *from* a journal (``wal.records``,
  ``records_since(...)``, ``replay_wal(...)``) are already durable and
  may be applied freely.
- **unjournaled-migrate** -- ``migrate_orphans(...)`` re-routes queue
  entries to the successor topology; calling it in a function that has
  not first journaled a topology record (directly or through a helper
  like ``_log`` / ``split`` / ``merge``) or replayed a journal (the
  recovery path constructs the pool *from* an image) moves entries the
  journal knows nothing about.
- **machine-rebalance** -- ``RoundStateMachine.apply`` rejects
  ``REBALANCE_KINDS`` at runtime (topology records belong to the shard
  pool's journal); feeding it a record whose ``kind`` is statically a
  rebalance kind is a guaranteed ``InvalidTransitionError``.

Whether a callee journals or replays is a whole-program fact -- the
append usually hides inside ``_log`` -- so both are computed as
interprocedural summaries over the project call graph.  Ordering inside
one function is judged by source position, which is exact for the
repo's construct-then-use style (the checks are about *statement
discipline*, not arbitrary control flow).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.analysis.base import Rule, callee_name, dotted_name, register
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.ipa.callgraph import own_statements
from repro.analysis.ipa.dataflow import SummaryAnalysis
from repro.analysis.ipa.symbols import FunctionInfo
from repro.federation.wal import REBALANCE_KINDS

#: Call names that *act* on a record (mutate state from it).
ACT_NAMES = frozenset({"_apply", "apply"})

#: Constant names conventionally holding rebalance kinds.
REBALANCE_CONSTANTS = frozenset({"SHARD_SPLIT", "SHARD_MERGE"})

#: Journal read surfaces: records coming out of these are durable.
REPLAY_ATTRS = frozenset({"records"})
REPLAY_CALLS = frozenset({"records_since", "replay_wal"})


@dataclass(frozen=True)
class JournalEffects:
    """Whether a function journals and/or replays, transitively."""

    journals: bool = False
    replays: bool = False


def _is_wal_append(project, fn: FunctionInfo, call: ast.Call) -> bool:
    """``<wal>.append(record)``: the journaling primitive itself."""
    if callee_name(call.func) != "append" or \
            not isinstance(call.func, ast.Attribute):
        return False
    for qualname in project.resolver.resolve_call(fn, call):
        if qualname.endswith(".WriteAheadLog.append"):
            return True
    receiver = dotted_name(call.func.value)
    return receiver is not None and receiver.split(".")[-1] in (
        "wal", "_wal", "log", "journal")


def _is_replay_read(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in REPLAY_ATTRS:
        return True
    return isinstance(node, ast.Call) and \
        callee_name(node.func) in REPLAY_CALLS


class JournalSummaries(SummaryAnalysis):
    """Fixpoint of :class:`JournalEffects` over the call graph."""

    def __init__(self, project):
        super().__init__(project.callgraph)
        self.project = project

    def bottom(self, fn: FunctionInfo) -> JournalEffects:
        return JournalEffects()

    def transfer(self, fn: FunctionInfo, get_summary) -> JournalEffects:
        journals = False
        replays = False
        for node in own_statements(fn.node):
            if _is_replay_read(node):
                replays = True
            if not isinstance(node, ast.Call):
                continue
            if _is_wal_append(self.project, fn, node):
                journals = True
            for qualname in self.project.resolver.resolve_call(fn, node):
                callee = get_summary(qualname)
                if isinstance(callee, JournalEffects):
                    journals = journals or callee.journals
                    replays = replays or callee.replays
        return JournalEffects(journals=journals, replays=replays)


def _record_kind(call: ast.Call) -> Optional[str]:
    """The statically known ``kind`` of a ``WalRecord(...)`` call."""
    value: Optional[ast.expr] = None
    for keyword in call.keywords:
        if keyword.arg == "kind":
            value = keyword.value
    if value is None and call.args:
        value = call.args[0]
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    if isinstance(value, ast.Name) and value.id in REBALANCE_CONSTANTS:
        return value.id.lower()
    return None


def _first_arg_name(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Name):
        return call.args[0].id
    return None


def _machine_receiver(project, fn: FunctionInfo, call: ast.Call) -> bool:
    """Whether an ``apply`` call dispatches into ``RoundStateMachine``."""
    for qualname in project.resolver.resolve_call(fn, call):
        if qualname.endswith(".RoundStateMachine.apply"):
            return True
    if isinstance(call.func, ast.Attribute):
        receiver = dotted_name(call.func.value)
        if receiver is not None and \
                receiver.split(".")[-1] in ("machine", "_machine"):
            return True
    return False


@register
class WalDisciplineRule(Rule):
    name = "wal-discipline"
    description = ("WAL records must be journaled (wal.append) before "
                   "they act (_apply/migrate); rebalance kinds never "
                   "reach RoundStateMachine")
    needs_project = True

    def check_project(self, project) -> Iterator[Diagnostic]:
        effects = JournalSummaries(project)
        effects.run()
        for qualname in sorted(project.symbols.functions):
            fn = project.symbols.functions[qualname]
            yield from self._check_function(project, effects, fn)

    # ------------------------------------------------------------------

    def _check_function(self, project, effects: JournalSummaries,
                        fn: FunctionInfo) -> Iterator[Diagnostic]:
        #: name -> the WalRecord(...) call that freshly bound it.
        fresh: Dict[str, ast.Call] = {}
        #: lines on which something journaled or replayed.
        context_lines: List[int] = []
        for node in sorted(own_statements(fn.node),
                           key=lambda n: (getattr(n, "lineno", 0),
                                          getattr(n, "col_offset", 0))):
            if _is_replay_read(node):
                context_lines.append(getattr(node, "lineno", 0))
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._track_bindings(node, fresh)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                # Loop targets rebind: whatever they held is gone.
                for name in _target_name_list(node.target):
                    fresh.pop(name, None)
            if not isinstance(node, ast.Call):
                continue
            name = callee_name(node.func)
            summaries = [effects.summary(q) for q in
                         project.resolver.resolve_call(fn, node)]
            journaling = _is_wal_append(project, fn, node) or any(
                s.journals for s in summaries
                if isinstance(s, JournalEffects))
            replaying = any(s.replays for s in summaries
                            if isinstance(s, JournalEffects))
            if journaling or replaying:
                context_lines.append(node.lineno)
            if journaling:
                # Every record handed to a journaling call is durable.
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        fresh.pop(arg.id, None)
                continue
            if name == "migrate_orphans":
                if not any(line < node.lineno for line in context_lines):
                    yield self.diagnostic(
                        fn.unit, node,
                        "migrate_orphans() without a journaled topology "
                        "change: no wal.append (or journal replay) "
                        "precedes it in this function, so the entry "
                        "moves would not survive a crash",
                        symbol=fn.name)
                continue
            if name not in ACT_NAMES:
                continue
            record = _first_arg_name(node)
            inline = node.args[0] if node.args and \
                isinstance(node.args[0], ast.Call) and \
                callee_name(node.args[0].func) == "WalRecord" else None
            source = inline if inline is not None else \
                fresh.get(record) if record is not None else None
            if source is None:
                continue
            kind = _record_kind(source)
            if kind in REBALANCE_KINDS and \
                    _machine_receiver(project, fn, node):
                yield self.diagnostic(
                    fn.unit, node,
                    f"RoundStateMachine.apply() fed a {kind!r} record: "
                    f"rebalance kinds belong to the shard pool's "
                    f"topology journal and raise "
                    f"InvalidTransitionError here",
                    symbol=fn.name)
                continue
            yield self.diagnostic(
                fn.unit, node,
                f"{name}() acts on a WalRecord never journaled: "
                f"wal.append must come first (journal-then-act), or "
                f"the mutation is lost on crash replay",
                symbol=fn.name)

    @staticmethod
    def _track_bindings(node: ast.stmt, fresh: Dict[str, ast.Call]) -> None:
        value = node.value
        targets = node.targets if isinstance(node, ast.Assign) else \
            [node.target]
        is_record = isinstance(value, ast.Call) and \
            callee_name(value.func) == "WalRecord"
        for target in targets:
            for name in _target_name_list(target):
                if is_record:
                    fresh[name] = value
                else:
                    fresh.pop(name, None)


def _target_name_list(target: ast.expr) -> List[str]:
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names
