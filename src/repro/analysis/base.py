"""The rule framework: base class, registry, shared AST helpers."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Type

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover -- import cycle at runtime only
    from repro.analysis.engine import ModuleUnit

#: name -> rule class; populated by :func:`register`.
RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry under its name."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} declares no name")
    if cls.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


def rule_names() -> List[str]:
    """All registered rule names, sorted."""
    return sorted(RULE_REGISTRY)


class Rule:
    """One invariant checker.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Diagnostic` instances for one parsed
    module.  Rules are stateless across files -- the engine constructs
    one instance per run and calls it once per module.

    A rule that also (or only) needs the whole program sets
    :attr:`needs_project` and implements :meth:`check_project`; the
    engine builds one :class:`~repro.analysis.ipa.project.Project` per
    run and calls ``check_project`` once, after the per-module pass.
    Project findings go through the same pragma / baseline suppression,
    keyed by each diagnostic's path.
    """

    #: CLI-visible rule identifier (kebab-case).
    name: str = ""
    #: One-line summary shown by ``lint --help``-adjacent docs.
    description: str = ""
    #: Whether the engine must build a whole-program view for this rule.
    needs_project: bool = False

    def check(self, unit: "ModuleUnit") -> Iterator[Diagnostic]:
        """Per-module findings; project-only rules yield nothing here."""
        return iter(())

    def check_project(self, project) -> Iterator[Diagnostic]:
        """Whole-program findings (only called when ``needs_project``)."""
        return iter(())

    def diagnostic(self, unit: "ModuleUnit", node: ast.AST, message: str,
                   symbol: str = "") -> Diagnostic:
        """A diagnostic for ``node`` under this rule."""
        return Diagnostic(
            rule=self.name,
            path=unit.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


def callee_name(func: ast.expr) -> str:
    """The last dotted segment of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string when the expression is a pure name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local-name resolution for a module's imports.

    Maps local names to the fully qualified thing they denote, so rules
    can recognise ``import numpy as np; np.random.rand`` and
    ``from random import Random; Random()`` alike.
    """

    def __init__(self, tree: ast.Module):
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".", 1)[0]
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted path of a name chain, or ``None``.

        Only the *root* is rewritten through the import map; attribute
        chains on unresolvable roots return ``None`` so rules never
        misattribute a method on a local object to a stdlib module.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        resolved = self._names.get(root)
        if resolved is None:
            return None
        return f"{resolved}.{rest}" if rest else resolved
