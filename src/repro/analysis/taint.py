"""Rule ``plaintext-wire``: decrypted values must not reach the wire.

Intraprocedural taint analysis.  A value is *tainted* when it originates
from a decryption (any call whose last dotted segment starts with
``decrypt``) or from a :class:`PlainTensor` construction; taint follows
assignments (including tuple unpacking and augmented assignment),
arithmetic, containers, subscripts, attribute access, comprehensions,
ternaries, f-strings, and calls that receive a tainted receiver or
argument.  Any call whose last segment starts with ``encrypt`` is a
*sanitizer*: its result is clean, whatever went in -- re-encryption
clears taint.

Sinks are the places bytes leave the process's trust boundary:

- ``*.send(...)`` / ``*.broadcast(...)``  (channel / party transport),
- ``serialize_*``                          (wire encodings),
- ``*._log(...)`` / ``WalRecord(...)``     (write-ahead-log payloads,
  which land on disk and are replayed across failover).

A tainted expression reaching any sink argument is flagged.  Deliberate
exceptions carry ``# flcheck: allow[plaintext-wire]`` on the call's first
line -- today the only one in-tree is the coordinator's
``DECRYPT_COMMITTED`` WAL record, whose entire point is to persist the
decrypted aggregate for crash recovery.

The analysis is per-function (parameters start clean, calls are not
followed); loop bodies get a silent warm-up pass so loop-carried taint is
visible to sinks earlier in the body.  It trades inter-procedural depth
for zero-configuration speed, which is the right point for a diff-time
gate.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.base import Rule, callee_name, register
from repro.analysis.diagnostics import Diagnostic

#: Call targets (last dotted segment) whose results are tainted.
SOURCE_PREFIXES = ("decrypt",)
#: Constructors producing plaintext tensor values.
PLAIN_CONSTRUCTORS = {"PlainTensor"}
#: Call targets whose results are clean regardless of arguments.
SANITIZER_PREFIXES = ("encrypt",)

#: Method-call sinks (attribute calls only -- transport objects).
SINK_METHODS = {"send", "broadcast"}
#: Function-name-prefix sinks (wire encoders).
SINK_PREFIXES = ("serialize_",)
#: WAL sinks: payloads are persisted and replayed across failover.
WAL_SINKS = {"_log", "WalRecord"}


def _is_source(func: ast.expr) -> bool:
    name = callee_name(func)
    if name.startswith(SOURCE_PREFIXES) or name in PLAIN_CONSTRUCTORS:
        return True
    # PlainTensor.encode(...) and friends: classmethod constructors.
    return (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in PLAIN_CONSTRUCTORS)


def _is_sanitizer(func: ast.expr) -> bool:
    return callee_name(func).startswith(SANITIZER_PREFIXES)


def _sink_label(func: ast.expr) -> str:
    """Non-empty label when ``func`` is a sink call target."""
    name = callee_name(func)
    if isinstance(func, ast.Attribute) and name in SINK_METHODS:
        return name
    if name.startswith(SINK_PREFIXES):
        return name
    if name in WAL_SINKS:
        return name
    return ""


def _target_names(target: ast.expr) -> List[str]:
    """Every plain name bound by an assignment target."""
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


class _FunctionTaint:
    """Taint state and sink detection for one function (or module) body.

    The interprocedural pass (:mod:`repro.analysis.ipa.taint_summaries`)
    subclasses this and overrides the ``call_effect`` / ``observe_call``
    / ``attribute_taint`` / ``bind_attribute`` / ``on_return`` hooks to
    consult per-function summaries; the defaults below keep the original
    purely local behavior.
    """

    def __init__(self, rule: Rule, unit, symbol: str):
        self.rule = rule
        self.unit = unit
        self.symbol = symbol
        self.tainted: Set[str] = set()
        self.reporting = False
        self.hits: List[Diagnostic] = []
        self._seen: Set[Tuple[int, int]] = set()

    # -- interprocedural hooks (no-ops for the local analysis) -----------

    def call_effect(self, node: ast.Call, receiver_tainted: bool,
                    arg_taints: List[bool],
                    kw_taints: "dict") -> "bool | None":
        """Taint verdict for a call's *result* from callee summaries.

        ``None`` falls back to the local heuristic (tainted receiver or
        argument taints the result); ``False`` overrides it -- that is
        how an ``encrypt_tensor`` wrapper acts as a sanitizer.
        """
        return None

    def observe_call(self, call: ast.Call) -> None:
        """Called for every call while scanning sinks (summary sinks)."""

    def attribute_taint(self, node: ast.Attribute) -> "bool | None":
        """Taint verdict for an attribute read; ``None`` -> recurse."""
        return None

    def bind_attribute(self, target: ast.Attribute,
                       value_tainted: bool) -> bool:
        """Handle an attribute assignment; ``True`` claims the binding."""
        return False

    def on_return(self, tainted: bool) -> None:
        """Called for every ``return`` with the value's taint."""

    # -- expression taint ------------------------------------------------

    def is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            modeled = self.attribute_taint(node)
            if modeled is not None:
                return modeled
            return self.is_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value) or self.is_tainted(node.slice)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.Compare):
            # Comparison results are booleans, not plaintext payloads --
            # but operands still need visiting for walrus bindings.
            self.is_tainted(node.left)
            for comparator in node.comparators:
                self.is_tainted(comparator)
            return False
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.is_tainted(value) for value in node.values
                       if value is not None) or \
                   any(key is not None and self.is_tainted(key)
                       for key in node.keys)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.JoinedStr):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.is_tainted(node.value)
        if isinstance(node, ast.NamedExpr):
            result = self.is_tainted(node.value)
            self._bind(node.target, result)
            return result
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension_taint(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension_taint(node, [node.key, node.value])
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Yield):
            return node.value is not None and self.is_tainted(node.value)
        return False

    def _call_taint(self, node: ast.Call) -> bool:
        if _is_sanitizer(node.func):
            return False
        if _is_source(node.func):
            return True
        receiver = isinstance(node.func, ast.Attribute) and \
            self.is_tainted(node.func.value)
        arg_taints = [self.is_tainted(arg) for arg in node.args]
        kw_taints = {kw.arg: self.is_tainted(kw.value)
                     for kw in node.keywords}
        modeled = self.call_effect(node, receiver, arg_taints, kw_taints)
        if modeled is not None:
            return modeled
        # Local heuristic: a method on a tainted receiver (x.ravel())
        # or any tainted argument taints the result.
        return receiver or any(arg_taints) or any(kw_taints.values())

    def _comprehension_taint(self, node, results: List[ast.expr]) -> bool:
        bound: List[str] = []
        iter_tainted = False
        for gen in node.generators:
            if self.is_tainted(gen.iter):
                iter_tainted = True
                for name in _target_names(gen.target):
                    if name not in self.tainted:
                        self.tainted.add(name)
                        bound.append(name)
        result = iter_tainted or \
            any(self.is_tainted(expr) for expr in results)
        for name in bound:  # comprehension targets do not escape
            self.tainted.discard(name)
        return result

    # -- bindings --------------------------------------------------------

    def _bind(self, target: ast.expr, value_tainted: bool) -> None:
        """Strong update: assignment both taints and *untaints*."""
        if isinstance(target, ast.Attribute) and \
                self.bind_attribute(target, value_tainted):
            return
        for name in _target_names(target):
            if value_tainted:
                self.tainted.add(name)
            else:
                self.tainted.discard(name)

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)) and \
                    isinstance(value, (ast.Tuple, ast.List)) and \
                    len(target.elts) == len(value.elts):
                # Element-wise tuple unpacking keeps precision:
                # ``a, b = decrypt(x), 0`` taints only ``a``.
                for t_elt, v_elt in zip(target.elts, value.elts):
                    self._bind(t_elt, self.is_tainted(v_elt))
            else:
                self._bind(target, self.is_tainted(value))

    # -- sinks -----------------------------------------------------------

    def _scan_sinks(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            self.observe_call(call)
            label = _sink_label(call.func)
            if not label:
                continue
            flows = [arg for arg in call.args if self.is_tainted(arg)]
            flows += [kw.value for kw in call.keywords
                      if self.is_tainted(kw.value)]
            if not flows:
                continue
            key = (call.lineno, call.col_offset)
            if not self.reporting or key in self._seen:
                continue
            self._seen.add(key)
            described = _describe(flows[0])
            self.hits.append(self.rule.diagnostic(
                self.unit, call,
                f"plaintext leak: decrypted value {described} reaches "
                f"{label}() without passing through encrypt_tensor",
                symbol=self.symbol))

    # -- statements ------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> List[Diagnostic]:
        self.reporting = True
        self.visit_body(body)
        return self.hits

    def visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def _visit_loop_body(self, body: List[ast.stmt]) -> None:
        """Loop bodies get a silent warm-up pass first, so taint created
        late in iteration N is visible to sinks early in iteration N+1
        (loop-carried flows)."""
        was_reporting = self.reporting
        self.reporting = False
        self.visit_body(body)
        self.reporting = was_reporting
        self.visit_body(body)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed independently
        if isinstance(stmt, ast.Assign):
            self._scan_sinks(stmt.value)
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_sinks(stmt.value)
                self._bind(stmt.target, self.is_tainted(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._scan_sinks(stmt.value)
            already = self.is_tainted(stmt.target)
            self._bind(stmt.target,
                       already or self.is_tainted(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._scan_sinks(stmt.value)
            self.is_tainted(stmt.value)  # evaluate walrus bindings
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                self._scan_sinks(value)
            if isinstance(stmt, ast.Return):
                self.on_return(value is not None and
                               self.is_tainted(value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_sinks(stmt.iter)
            if self.is_tainted(stmt.iter):
                self._bind(stmt.target, True)
            self._visit_loop_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan_sinks(stmt.test)
            self.is_tainted(stmt.test)   # evaluate walrus bindings
            self._visit_loop_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._scan_sinks(stmt.test)
            self.is_tainted(stmt.test)   # evaluate walrus bindings
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_sinks(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.is_tainted(item.context_expr))
            self.visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            pass
        # Import/Global/Nonlocal/Pass/Break/Continue: no taint flow.


def _describe(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return f"'{node.id}'"
    if isinstance(node, ast.keyword):  # pragma: no cover -- defensive
        return f"'{node.arg}'"
    return "(expression)"


@register
class PlaintextWireRule(Rule):
    name = "plaintext-wire"
    description = ("decrypted values must pass through encrypt_tensor "
                   "before send/serialize/WAL sinks")
    needs_project = True

    def check_project(self, project) -> Iterator[Diagnostic]:
        """Interprocedural findings the per-module pass cannot see."""
        from repro.analysis.ipa.taint_summaries import collect_ipa_findings
        yield from collect_ipa_findings(self, project)

    def check(self, unit) -> Iterator[Diagnostic]:
        scopes: List[Tuple[str, List[ast.stmt]]] = [("", unit.tree.body)]
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node.name, node.body))
        for symbol, body in scopes:
            analyzer = _FunctionTaint(self, unit, symbol)
            yield from analyzer.run(body)
