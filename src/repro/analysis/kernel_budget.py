"""Rule ``kernel-budget``: declared kernel envelopes must be launchable.

``repro/gpu/kernels.py`` declares a :class:`~repro.gpu.kernels.
KernelBudget` per kernel -- worst-case registers per thread, shared
memory per block, block width.  This rule finds every ``KERNEL_BUDGETS``
assignment in the scanned files, *statically* evaluates the declared
constants (literal arithmetic plus named constants resolved from
:mod:`repro.gpu.resource_manager` / :mod:`repro.gpu.device` and the
module's own top-level assignments), and checks hard CUDA launchability
against the target :data:`~repro.gpu.device.RTX_3090` spec:

- block size a positive warp multiple, <= 1024 and <= threads/SM;
- registers/thread <= the architectural ceiling (255);
- one block's registers <= the SM register file;
- shared memory/block <= shared memory/SM.

An over-budget kernel therefore fails lint -- before any simulation run
constructs a :class:`~repro.gpu.kernels.GpuKernels` and trips the same
check at runtime.  A budget whose fields cannot be statically evaluated
is itself a finding: the declaration must stay analyzable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.base import Rule, callee_name, register
from repro.analysis.diagnostics import Diagnostic
from repro.gpu import device as _device
from repro.gpu import resource_manager as _rm
from repro.gpu.device import RTX_3090
from repro.gpu.kernels import KernelBudget

#: Names resolvable inside budget expressions: integer constants from the
#: gpu device/resource-manager modules (single source of truth for
#: limits and register modelling).
_CONSTANT_ENV: Dict[str, int] = {
    name: value
    for module in (_rm, _device)
    for name, value in vars(module).items()
    if isinstance(value, int) and not isinstance(value, bool)
    and name.isupper()
}


class _Unanalyzable(Exception):
    pass


def _fold(node: ast.expr, env: Dict[str, int]) -> int:
    """Evaluate a constant integer expression, or raise ``_Unanalyzable``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        raise _Unanalyzable(f"unknown constant {node.id!r}")
    if isinstance(node, ast.BinOp):
        left, right = _fold(node.left, env), _fold(node.right, env)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv):
            return left // right
        if isinstance(node.op, ast.Pow):
            return left ** right
        if isinstance(node.op, ast.LShift):
            return left << right
        if isinstance(node.op, ast.RShift):
            return left >> right
        raise _Unanalyzable(f"operator {type(node.op).__name__}")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_fold(node.operand, env)
    raise _Unanalyzable(type(node).__name__)


def _module_constants(tree: ast.Module) -> Dict[str, int]:
    """Top-level integer assignments of the module being linted."""
    env = dict(_CONSTANT_ENV)
    for stmt in tree.body:
        targets = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                try:
                    env[target.id] = _fold(value, env)
                except _Unanalyzable:
                    pass
    return env


@register
class KernelBudgetRule(Rule):
    name = "kernel-budget"
    description = ("declared KERNEL_BUDGETS envelopes must fit the "
                   "device limits, evaluated statically")

    def check(self, unit) -> Iterator[Diagnostic]:
        budgets = self._find_budget_dict(unit.tree)
        if budgets is None:
            return
        env = _module_constants(unit.tree)
        for key, value in zip(budgets.keys, budgets.values):
            kernel = key.value if isinstance(key, ast.Constant) else "?"
            if not (isinstance(value, ast.Call)
                    and callee_name(value.func) == "KernelBudget"):
                yield self.diagnostic(
                    unit, value,
                    f"kernel {kernel!r}: budget must be a direct "
                    f"KernelBudget(...) declaration")
                continue
            yield from self._check_budget(unit, kernel, value, env)

    @staticmethod
    def _find_budget_dict(tree: ast.Module) -> Optional[ast.Dict]:
        for stmt in tree.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == "KERNEL_BUDGETS" \
                        and isinstance(value, ast.Dict):
                    return value
        return None

    def _check_budget(self, unit, kernel: str, call: ast.Call,
                      env: Dict[str, int]) -> Iterator[Diagnostic]:
        fields: Dict[str, int] = {}
        for kw in call.keywords:
            if kw.arg is None:
                yield self.diagnostic(
                    unit, call,
                    f"kernel {kernel!r}: **-expansion in a budget is not "
                    f"statically analyzable")
                return
            try:
                fields[kw.arg] = _fold(kw.value, env)
            except _Unanalyzable as exc:
                yield self.diagnostic(
                    unit, kw.value,
                    f"kernel {kernel!r}: field {kw.arg!r} is not "
                    f"statically evaluable ({exc})")
                return
        missing = {"registers_per_thread", "shared_memory_per_block",
                   "block_size"} - set(fields)
        if call.args or missing:
            yield self.diagnostic(
                unit, call,
                f"kernel {kernel!r}: budget fields must be passed by "
                f"keyword ({', '.join(sorted(missing)) or 'positional'})")
            return
        budget = KernelBudget(**fields)
        for problem in budget.violations(RTX_3090):
            yield self.diagnostic(
                unit, call, f"kernel {kernel!r}: {problem}")
