"""Rule ``determinism``: all randomness and time must be injected.

The conformance simulator replays every experiment bit-for-bit from
``REPRO_TEST_SEED``; one call into the process-global ``random`` state, a
wall-clock read, or an OS-entropy draw breaks that.  This rule flags:

- the stdlib global RNG (``random.random``, ``random.seed``, ...) and
  ``random.SystemRandom`` -- seeded ``random.Random(seed)`` instances are
  fine anywhere;
- argless ``random.Random()`` / ``numpy.random.default_rng()`` (they
  self-seed from entropy) and every legacy ``numpy.random.*`` global
  (``rand``, ``seed``, ``RandomState``, ...);
- wall-clock reads: ``time.time`` / ``monotonic`` / ``perf_counter``
  (+ ``_ns`` variants) and ``time.sleep``, both called *and* passed as a
  bare reference (e.g. ``clock=time.monotonic`` defaults);
- ``datetime.now`` / ``utcnow`` / ``today``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, and anything in ``secrets``.

Whitelisted module paths (where nondeterminism is the point):

- ``repro/rng.py``           -- the one sanctioned construction site for
  routed streams;
- ``repro/mpint/primes.py``  -- production keygen entropy
  (``LimbRandom.entropy``); replayable keys would leak;
- ``repro/testing/``         -- harnesses that *measure* wall-clock;
- ``repro/analysis/``        -- flcheck's own ``--max-seconds`` clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.base import ImportMap, Rule, register
from repro.analysis.diagnostics import Diagnostic

#: Posix path suffixes/prefix-dirs exempt from this rule.
WHITELIST_FILES = (
    "repro/rng.py",
    "repro/mpint/primes.py",
)
WHITELIST_DIRS = (
    "repro/testing/",
    "repro/analysis/",
)

#: Fully qualified names flagged whenever *called*.
_FLAGGED_CALLS = {
    "os.urandom": "os.urandom draws OS entropy",
    "uuid.uuid1": "uuid.uuid1 embeds host clock and MAC",
    "uuid.uuid4": "uuid.uuid4 draws OS entropy",
    "random.SystemRandom": "random.SystemRandom is OS entropy",
    "numpy.random.RandomState": "legacy numpy RandomState; route through "
                                "repro.rng.np_rng",
}

#: Names flagged when called *or* referenced (often passed as callables).
_CLOCKS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Argless construction of these self-seeds from entropy.
_NEEDS_SEED = {"random.Random", "numpy.random.default_rng"}


def _whitelisted(display_path: str) -> bool:
    return display_path.endswith(WHITELIST_FILES) or \
        any(marker in display_path for marker in WHITELIST_DIRS)


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = ("no global RNG, wall clock, or OS entropy outside "
                   "the whitelisted routing modules")

    def check(self, unit) -> Iterator[Diagnostic]:
        if _whitelisted(unit.display_path):
            return
        imports = ImportMap(unit.tree)
        reported: Set[Tuple[int, int]] = set()

        def emit(node: ast.AST, message: str) -> Diagnostic:
            reported.add((node.lineno, node.col_offset))
            return self.diagnostic(unit, node, message)

        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                verdict = self._check_call(node, resolved)
                if verdict:
                    yield emit(node, verdict)
                    reported.add((node.func.lineno, node.func.col_offset))
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if (node.lineno, node.col_offset) in reported:
                    continue
                resolved = imports.resolve(node)
                if resolved in _CLOCKS:
                    yield emit(node, f"wall-clock reference {resolved}; "
                                     f"inject a clock instead")
                elif resolved is not None and \
                        resolved.startswith("secrets."):
                    yield emit(node, f"{resolved} draws OS entropy")

    @staticmethod
    def _check_call(node: ast.Call, resolved: Optional[str]) \
            -> Optional[str]:
        if resolved is None:
            return None
        if resolved in _FLAGGED_CALLS:
            return (f"{_FLAGGED_CALLS[resolved]}; route randomness "
                    f"through repro.rng")
        if resolved in _CLOCKS:
            return f"wall-clock call {resolved}; inject a clock instead"
        if resolved in _NEEDS_SEED:
            if not node.args and not node.keywords:
                return (f"argless {resolved}() self-seeds from OS "
                        f"entropy; pass a routed seed (repro.rng)")
            return None
        if resolved.startswith("secrets."):
            return f"{resolved} draws OS entropy"
        if resolved.startswith("numpy.random."):
            return (f"global numpy RNG {resolved}; use "
                    f"repro.rng.np_rng(stream) instead")
        if resolved.startswith("random."):
            # Anything else on the random module hits the process-global
            # Mersenne Twister (random.random, .seed, .choice, ...).
            return (f"process-global RNG {resolved}; use "
                    f"repro.rng.py_rng(stream) instead")
        return None
