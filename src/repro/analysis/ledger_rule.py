"""Rule ``ledger-category``: every charged category must be registered.

A typo'd category silently mis-buckets the paper's Table VI component
splits -- ``"he.encrpyt"`` lands in "HE operations" percentages as zero
and in "Others" as noise, and nothing crashes.  This rule extracts the
category argument of every charge-like call and validates it against
:data:`repro.ledger.CATEGORY_FAMILIES` (the runtime registry is imported,
so rule and ledger can never drift apart):

- string literals must satisfy :func:`repro.ledger.is_known_category`;
- ``CAT_*`` constant names must exist in :mod:`repro.ledger`;
- f-strings are only legal when their static prefix pins an *open*
  family (``f"comm.{tag}"``); closed families must not be assembled
  dynamically -- use the validated builders (:func:`fault_category`)
  instead, which this rule accepts;
- a bare name is legal only inside a registered *forwarder* (``charge``,
  ``_charge``, ``_charging``, ``charge_model_compute``,
  ``charge_pipeline_stage``) whose parameter it is -- the forwarder's
  own call sites are checked instead;
- anything else is a dynamic category and is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

import repro.ledger as _ledger
from repro.analysis.base import Rule, callee_name, register
from repro.analysis.diagnostics import Diagnostic

#: Attribute calls whose first positional arg is a category.
_CHARGE_METHODS = {"charge", "_charge", "_charging"}
#: Free functions taking the category as ``tag`` (position 2).
_TAG_FUNCTIONS = {"charge_model_compute", "charge_pipeline_stage"}
#: Functions allowed to receive a category as a parameter and forward it.
_FORWARDERS = _CHARGE_METHODS | _TAG_FUNCTIONS
#: Builder helpers that validate at runtime.
_VALIDATED_BUILDERS = {"fault_category", "comm_category",
                       "admission_category", "validate_category"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _param_names(func: _FunctionNode) -> List[str]:
    args = func.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def _category_argument(call: ast.Call) -> Optional[ast.expr]:
    """The category expression of a charge-like call, if it is one."""
    name = callee_name(call.func)
    if isinstance(call.func, ast.Attribute) and name in _CHARGE_METHODS:
        if call.args:
            return call.args[0]
        for kw in call.keywords:
            if kw.arg == "category":
                return kw.value
        return None
    if name in _TAG_FUNCTIONS:
        if len(call.args) >= 3:
            return call.args[2]
        for kw in call.keywords:
            if kw.arg == "tag":
                return kw.value
        return None  # default tag comes from the registry constant
    return None


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """Leading constant text of an f-string."""
    prefix = ""
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            prefix += value.value
        else:
            break
    return prefix


@register
class LedgerCategoryRule(Rule):
    name = "ledger-category"
    description = ("categories at CostLedger charge sites must come from "
                   "the repro.ledger registry")

    def check(self, unit) -> Iterator[Diagnostic]:
        yield from self._visit(unit, unit.tree, [])

    def _visit(self, unit, node: ast.AST,
               stack: List[_FunctionNode]) -> Iterator[Diagnostic]:
        """Depth-first walk carrying the lexical function stack.

        The stack is what lets a forwarder's *closure* use of its
        category parameter pass (``_charging``'s nested context-manager
        charging ``category`` on exit) while the same bare name anywhere
        else is flagged.
        """
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(unit, child, stack + [child])
                continue
            if isinstance(child, ast.Call):
                yield from self._check_call(unit, child, stack)
            yield from self._visit(unit, child, stack)

    def _check_call(self, unit, call: ast.Call,
                    stack: List[_FunctionNode]) -> Iterator[Diagnostic]:
        category = _category_argument(call)
        if category is None:
            return
        symbol = stack[-1].name if stack else ""
        verdict = self._judge(category, stack)
        if verdict:
            yield self.diagnostic(unit, call, verdict, symbol=symbol)

    @staticmethod
    def _judge(expr: ast.expr, stack: List[_FunctionNode]) -> str:
        """Empty string when legal; otherwise the diagnostic message."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            if _ledger.is_known_category(expr.value):
                return ""
            return (f"unregistered ledger category {expr.value!r}; "
                    f"declare it in repro.ledger.CATEGORY_FAMILIES")
        if isinstance(expr, (ast.Name, ast.Attribute)):
            tail = expr.attr if isinstance(expr, ast.Attribute) else expr.id
            if tail.startswith("CAT_"):
                value = getattr(_ledger, tail, None)
                if isinstance(value, str) and \
                        _ledger.is_known_category(value):
                    return ""
                return (f"constant {tail} is not defined by the "
                        f"repro.ledger registry")
            if isinstance(expr, ast.Name) and any(
                    func.name in _FORWARDERS
                    and expr.id in _param_names(func)
                    for func in stack):
                return ""  # forwarder parameter; call sites are checked
            return (f"dynamic ledger category {tail!r}; use a CAT_* "
                    f"constant or a validated builder from repro.ledger")
        if isinstance(expr, ast.Call):
            if callee_name(expr.func) in _VALIDATED_BUILDERS:
                return ""
            return ("category built by an unvalidated call; use "
                    "fault_category/comm_category from repro.ledger")
        if isinstance(expr, ast.JoinedStr):
            prefix = _fstring_prefix(expr)
            family, dot, _ = prefix.partition(".")
            if dot and family in _ledger.OPEN_FAMILIES:
                return ""
            return (f"dynamic f-string category with prefix {prefix!r}; "
                    f"only open families "
                    f"({', '.join(sorted(_ledger.OPEN_FAMILIES))}) may be "
                    f"assembled dynamically")
        return ("unanalyzable ledger category expression; use a string "
                "literal, CAT_* constant, or validated builder")

    @staticmethod
    def charge_sites(tree: ast.Module) -> List[Tuple[ast.Call, ast.expr]]:
        """(call, category expression) pairs -- exposed for tests."""
        sites = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                category = _category_argument(node)
                if category is not None:
                    sites.append((node, category))
        return sites
