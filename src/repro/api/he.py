"""Homomorphic-encryption APIs (paper Table I, lower half).

``Paillier::key_gen / encrypt / decrypt / add`` and ``RSA::key_gen /
encrypt / decrypt / mul`` over *arrays* of plaintexts and ciphertexts,
with the batched operations running on the simulated GPU.
:class:`FlBooster` bundles everything into the single object the paper's
developer experience suggests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.api.ops import ArrayOps
from repro.crypto.engine import HeEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.crypto.keys import (
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    RsaKeypair,
    RsaPrivateKey,
    RsaPublicKey,
)
from repro.crypto.paillier import Paillier
from repro.crypto.rsa import Rsa
from repro.gpu.kernels import GpuKernels
from repro.mpint.primes import LimbRandom
from repro.quantization.packing import PackingPlan
from repro.tensor.cipher import CipherTensor
from repro.tensor.plain import PlainTensor

Ints = Union[int, Sequence[int]]


def _as_list(values: Ints) -> List[int]:
    return [values] if isinstance(values, int) else list(values)


class PaillierApi:
    """``Paillier::*`` of Table I over arrays."""

    def __init__(self, kernels: Optional[GpuKernels] = None,
                 rng: Optional[LimbRandom] = None):
        self.kernels = kernels if kernels is not None else GpuKernels()
        self.rng = rng if rng is not None else LimbRandom()

    def key_gen(self, size: int) -> Tuple[PaillierPrivateKey,
                                          PaillierPublicKey]:
        """Generate a keypair; returns ``(pri_key, pub_key)`` like Table I."""
        keypair: PaillierKeypair = Paillier.key_gen(size, rng=self.rng)
        return keypair.private_key, keypair.public_key

    def encrypt(self, pub_key: PaillierPublicKey,
                plaintext: Ints) -> List[int]:
        """Encrypt an array of plaintexts (one GPU batch)."""
        values = _as_list(plaintext)
        n = pub_key.n
        n_squared = pub_key.n_squared
        g_m = [(1 + (m % n) * n) % n_squared if pub_key.g == n + 1
               else pow(pub_key.g, m % n, n_squared) for m in values]
        randomizers = [self.rng.random_unit(n) for _ in values]
        r_n = self.kernels.mod_pow_scalar_exponent(randomizers, n, n_squared)
        return self.kernels.mod_mul(g_m, r_n, n_squared)

    def decrypt(self, pri_key: PaillierPrivateKey,
                ciphertext: Ints) -> List[int]:
        """Decrypt an array of ciphertexts (one GPU batch)."""
        values = _as_list(ciphertext)
        public = pri_key.public_key
        c_lambda = self.kernels.mod_pow_scalar_exponent(
            values, pri_key.lam, public.n_squared)
        l_values = [(value - 1) // public.n for value in c_lambda]
        return self.kernels.mod_mul(
            l_values, [pri_key.mu] * len(l_values), public.n)

    def add(self, pub_key: PaillierPublicKey, ciphertext1: Ints,
            ciphertext2: Ints) -> List[int]:
        """Homomorphic addition of two ciphertext arrays."""
        a = _as_list(ciphertext1)
        b = _as_list(ciphertext2)
        if len(a) != len(b):
            raise ValueError("ciphertext arrays differ in length")
        return self.kernels.mod_mul(a, b, pub_key.n_squared)


class RsaApi:
    """``RSA::*`` of Table I over arrays."""

    def __init__(self, kernels: Optional[GpuKernels] = None,
                 rng: Optional[LimbRandom] = None):
        self.kernels = kernels if kernels is not None else GpuKernels()
        self.rng = rng if rng is not None else LimbRandom()

    def key_gen(self, size: int) -> Tuple[RsaPrivateKey, RsaPublicKey]:
        """Generate a keypair; returns ``(pri_key, pub_key)``."""
        keypair: RsaKeypair = Rsa.key_gen(size, rng=self.rng)
        return keypair.private_key, keypair.public_key

    def encrypt(self, pub_key: RsaPublicKey, plaintext: Ints) -> List[int]:
        """Encrypt an array of plaintexts (one GPU batch)."""
        values = _as_list(plaintext)
        for value in values:
            if not 0 <= value < pub_key.n:
                raise ValueError(f"plaintext {value} outside [0, n)")
        return self.kernels.mod_pow_scalar_exponent(
            values, pub_key.e, pub_key.n)

    def decrypt(self, pri_key: RsaPrivateKey, ciphertext: Ints) -> List[int]:
        """Decrypt an array of ciphertexts (one GPU batch)."""
        values = _as_list(ciphertext)
        return self.kernels.mod_pow_scalar_exponent(
            values, pri_key.d, pri_key.public_key.n)

    def mul(self, pub_key: RsaPublicKey, ciphertext1: Ints,
            ciphertext2: Ints) -> List[int]:
        """Homomorphic multiplication of two ciphertext arrays."""
        a = _as_list(ciphertext1)
        b = _as_list(ciphertext2)
        if len(a) != len(b):
            raise ValueError("ciphertext arrays differ in length")
        return self.kernels.mod_mul(a, b, pub_key.n)


class FlBooster:
    """The one-stop developer object: array ops + both cryptosystems.

    All sub-APIs share one simulated GPU, so a session's kernel launches
    and utilization can be inspected at ``fl.kernels.device``.
    """

    def __init__(self, kernels: Optional[GpuKernels] = None,
                 seed: Optional[int] = None):
        self.kernels = kernels if kernels is not None else GpuKernels()
        rng = LimbRandom(seed=seed) if seed is not None else LimbRandom()
        self.ops = ArrayOps(kernels=self.kernels)
        self.paillier = PaillierApi(kernels=self.kernels, rng=rng)
        self.rsa = RsaApi(kernels=self.kernels, rng=rng)

    # Convenience pass-throughs for the Table I fundamental ops.

    def add(self, values1, values2):
        """Table I ``add``."""
        return self.ops.add(values1, values2)

    def sub(self, values1, values2):
        """Table I ``sub``."""
        return self.ops.sub(values1, values2)

    def mul(self, values1, values2):
        """Table I ``mul``."""
        return self.ops.mul(values1, values2)

    def div(self, values1, values2):
        """Table I ``div``."""
        return self.ops.div(values1, values2)

    def mod(self, x, n):
        """Table I ``mod``."""
        return self.ops.mod(x, n)

    def mod_inv(self, x, n):
        """Table I ``mod_inv``."""
        return self.ops.mod_inv(x, n)

    def mod_mul(self, values1, values2, n):
        """Table I ``mod_mul``."""
        return self.ops.mod_mul(values1, values2, n)

    def mod_pow(self, x, p, n):
        """Table I ``mod_pow``."""
        return self.ops.mod_pow(x, p, n)

    # Encrypted tensors -----------------------------------------------

    def he_engine(self, keypair: PaillierKeypair,
                  nominal_bits: Optional[int] = None) -> GpuPaillierEngine:
        """A batched Paillier engine sharing this session's GPU.

        The returned engine's kernel launches land on ``self.kernels``,
        so tensor work is visible in the same device log and utilization
        stats as the Table I array operations.
        """
        return GpuPaillierEngine(keypair, kernels=self.kernels,
                                 nominal_bits=nominal_bits)

    def encrypt_tensor(self, engine: HeEngine, values,
                       alpha: float = 1.0, r_bits: int = 30,
                       num_parties: int = 2) -> CipherTensor:
        """Encode, pack and encrypt a real-valued array in one call.

        The packing plan is derived from the engine's key geometry; the
        returned :class:`CipherTensor` carries everything needed to
        decrypt and decode it later.
        """
        plan = PackingPlan.for_engine(engine, alpha=alpha, r_bits=r_bits,
                                      num_parties=num_parties)
        return engine.encrypt_tensor(PlainTensor.encode(values, plan.packer))

    def decrypt_tensor(self, engine: HeEngine, tensor: CipherTensor):
        """Decrypt and decode an encrypted tensor; returns the array.

        No caller-supplied count, summand count or scheme: the tensor's
        metadata describes its own layout.
        """
        return engine.decrypt_tensor(tensor).decode()
