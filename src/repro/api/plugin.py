"""Drop-in plugin adapter (paper Sec. VI-B: FLBooster "wraps the crucial
operation with simple Python APIs as plugin acceleration components").

FATE (and python-paillier users generally) call an object-per-ciphertext
interface: ``keypair.encrypt(float) -> EncryptedNumber`` supporting
``+`` and ``*``.  This module provides that exact surface on top of the
accelerated batch engines, so an existing training loop switches to
FLBooster by swapping its keypair object -- no call-site changes:

>>> from repro.api.plugin import generate_accelerated_keypair
>>> public, private = generate_accelerated_keypair(key_bits=1024)
>>> a = public.encrypt(3.25)
>>> b = public.encrypt(-1.25)
>>> private.decrypt(a + b)               # 2.0 (within quantization)

Under the hood every call runs through the GPU engine and the Eq. 6-8
encoding, and the shared device/ledger keep the cost accounting the rest
of the platform uses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.crypto.keys import generate_paillier_keypair
from repro.federation.runtime import cached_keypair
from repro.gpu.kernels import GpuKernels
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import QuantizationScheme


class EncryptedNumber:
    """One encrypted float, python-paillier style.

    Supports ``+`` with another :class:`EncryptedNumber` or a plain
    float/int, and ``*`` by a non-negative plain scalar.  All arithmetic
    dispatches to the accelerated engine.
    """

    __slots__ = ("_public", "ciphertext", "_summands")

    def __init__(self, public: "AcceleratedPublicKey", ciphertext: int,
                 summands: int = 1):
        self._public = public
        self.ciphertext = ciphertext
        # Each encoded value carries a +alpha offset; sums accumulate
        # them, and decryption corrects by the count.
        self._summands = summands

    def __add__(self, other) -> "EncryptedNumber":
        public = self._public
        if isinstance(other, EncryptedNumber):
            if other._public is not public:
                raise ValueError("cannot add numbers under different keys")
            value = public._engine.add_batch([self.ciphertext],
                                             [other.ciphertext])[0]
            return EncryptedNumber(public, value,
                                   self._summands + other._summands)
        if isinstance(other, (int, float)):
            return self + public.encrypt(float(other))
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar) -> "EncryptedNumber":
        if not isinstance(scalar, int) or scalar < 0:
            raise ValueError(
                "plugin scalar multiplication takes non-negative ints "
                "(scale floats before encryption)")
        public = self._public
        value = public._engine.scalar_mul_batch([self.ciphertext],
                                                [scalar])[0]
        return EncryptedNumber(public, value,
                               self._summands * scalar if scalar else 1)

    __rmul__ = __mul__


class AcceleratedPublicKey:
    """The encrypting half of the plugin keypair."""

    def __init__(self, engine: GpuPaillierEngine,
                 scheme: QuantizationScheme):
        self._engine = engine
        self._scheme = scheme

    def encrypt(self, value: float) -> EncryptedNumber:
        """Encode (Eqs. 6-8) and encrypt one float."""
        encoded = self._scheme.encode(float(value))
        ciphertext = self._engine.encrypt_batch([encoded])[0]
        return EncryptedNumber(self, ciphertext)

    def encrypt_many(self, values) -> list:
        """Batch variant: one kernel launch for the whole vector."""
        encoded = self._scheme.encode_array(values)
        ciphertexts = self._engine.encrypt_batch(encoded)
        return [EncryptedNumber(self, c) for c in ciphertexts]

    @property
    def max_summands(self) -> int:
        """How many numbers may be summed before overflow (2^b)."""
        return 2 ** self._scheme.overflow_bits


class AcceleratedPrivateKey:
    """The decrypting half of the plugin keypair."""

    def __init__(self, engine: GpuPaillierEngine,
                 scheme: QuantizationScheme):
        self._engine = engine
        self._scheme = scheme

    def decrypt(self, number: EncryptedNumber) -> float:
        """Decrypt and decode one (possibly aggregated) number."""
        if number._summands > 2 ** self._scheme.overflow_bits:
            raise OverflowError(
                f"{number._summands} summands exceed the scheme's "
                f"{self._scheme.overflow_bits} overflow bits")
        encoded = self._engine.decrypt_batch([number.ciphertext])[0]
        return self._scheme.decode_sum(encoded, count=number._summands)

    def decrypt_many(self, numbers) -> list:
        """Batch variant: one kernel launch for the whole vector."""
        ciphertexts = [number.ciphertext for number in numbers]
        encoded = self._engine.decrypt_batch(ciphertexts)
        return [self._scheme.decode_sum(value, count=number._summands)
                for value, number in zip(encoded, numbers)]


def generate_accelerated_keypair(
        key_bits: int = 1024, alpha: float = 1024.0, r_bits: int = 40,
        max_summands: int = 64, physical_key_bits: Optional[int] = None,
        seed: Optional[int] = None,
) -> Tuple[AcceleratedPublicKey, AcceleratedPrivateKey]:
    """Build a plugin keypair backed by the accelerated engine.

    Args:
        key_bits: Nominal (charged) key size.
        alpha: Value range; floats are clipped into ``[-alpha, alpha]``.
        r_bits: Quantization bits (precision ``2 alpha / 2^r``).
        max_summands: How many numbers must be safely summable; sets the
            overflow bits.
        physical_key_bits: Mathematics key size (defaults to nominal).
        seed: Determinism seed; fresh random keys when omitted.
    """
    physical = physical_key_bits if physical_key_bits is not None \
        else key_bits
    if seed is None:
        keypair = generate_paillier_keypair(physical, rng=LimbRandom())
        rng = LimbRandom()
    else:
        keypair = cached_keypair(physical, seed=seed)
        rng = LimbRandom(seed=seed + 1)
    engine = GpuPaillierEngine(keypair, kernels=GpuKernels(),
                               nominal_bits=key_bits, rng=rng,
                               randomizer_pool_size=16)
    scheme = QuantizationScheme(alpha=alpha, r_bits=r_bits,
                                num_parties=max_summands)
    if scheme.slot_bits > engine.physical_plaintext_bits:
        raise ValueError(
            f"r_bits={r_bits} + overflow bits exceed the "
            f"{engine.physical_plaintext_bits}-bit plaintext")
    return (AcceleratedPublicKey(engine, scheme),
            AcceleratedPrivateKey(engine, scheme))
