"""Array arithmetic APIs (paper Table I, upper half).

``add / sub / mul / div / mod / mod_inv / mod_mul / mod_pow`` over arrays
of multi-precision integers.  The modular operations dispatch to the
simulated GPU kernels (so API users get the same accounting the engines
do); the plain arithmetic runs element-wise with Python's arbitrary
precision, which is already exact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.gpu.kernels import GpuKernels

IntArray = Sequence[int]


def _broadcast(a: Union[int, IntArray],
               b: Union[int, IntArray]) -> tuple:
    """Promote scalars and validate lengths; returns two equal lists.

    A length-1 operand broadcasts against *any* other length, including
    zero: scalar-vs-empty yields empty results rather than a length
    mismatch (numpy's broadcasting rule).
    """
    a_list = [a] if isinstance(a, int) else list(a)
    b_list = [b] if isinstance(b, int) else list(b)
    if len(a_list) == 1 and len(b_list) != 1:
        a_list = a_list * len(b_list)
    if len(b_list) == 1 and len(a_list) != 1:
        b_list = b_list * len(a_list)
    if len(a_list) != len(b_list):
        raise ValueError(
            f"length mismatch: {len(a_list)} vs {len(b_list)}")
    return a_list, b_list


class ArrayOps:
    """The fundamental and modular array operations of Table I.

    Args:
        kernels: Simulated-GPU executor for the modular operations; a
            private instance is created when omitted.
    """

    def __init__(self, kernels: Optional[GpuKernels] = None):
        self.kernels = kernels if kernels is not None else GpuKernels()

    # Fundamental operations ------------------------------------------------

    def add(self, values1, values2) -> List[int]:
        """Element-wise addition (Table I: ``add``)."""
        a, b = _broadcast(values1, values2)
        return [x + y for x, y in zip(a, b)]

    def sub(self, values1, values2) -> List[int]:
        """Element-wise subtraction (Table I: ``sub``)."""
        a, b = _broadcast(values1, values2)
        return [x - y for x, y in zip(a, b)]

    def mul(self, values1, values2) -> List[int]:
        """Element-wise multiplication (Table I: ``mul``)."""
        a, b = _broadcast(values1, values2)
        return [x * y for x, y in zip(a, b)]

    def div(self, values1, values2) -> List[int]:
        """Element-wise floor division (Table I: ``div``)."""
        a, b = _broadcast(values1, values2)
        for divisor in b:
            if divisor == 0:
                raise ZeroDivisionError("div by zero in array operand")
        return [x // y for x, y in zip(a, b)]

    # Modular operations -----------------------------------------------------

    def mod(self, x, n) -> List[int]:
        """Element-wise remainder ``x % n`` (Table I: ``mod``)."""
        a, b = _broadcast(x, n)
        for modulus in b:
            if modulus <= 0:
                raise ValueError("modulus must be positive")
        return [value % modulus for value, modulus in zip(a, b)]

    def mod_inv(self, x, n) -> List[int]:
        """Element-wise modular inverse (Table I: ``mod_inv``).

        Raises ``ValueError`` when an element is not invertible.
        """
        a, b = _broadcast(x, n)
        results: List[int] = []
        for value, modulus in zip(a, b):
            try:
                results.append(pow(value, -1, modulus))
            except ValueError as error:
                raise ValueError(
                    f"{value} has no inverse modulo {modulus}") from error
        return results

    def mod_mul(self, values1, values2, n: int) -> List[int]:
        """Batched Montgomery modular multiplication (Table I: ``mod_mul``).

        Runs as one simulated-GPU kernel launch.
        """
        a, b = _broadcast(values1, values2)
        return self.kernels.mod_mul(a, b, n)

    def mod_pow(self, x, p, n: int) -> List[int]:
        """Batched modular exponentiation (Table I: ``mod_pow``)."""
        a, b = _broadcast(x, p)
        return self.kernels.mod_pow(a, b, n)
