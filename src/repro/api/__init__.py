"""FLBooster's user-facing APIs (paper Sec. IV-D, Table I).

Array-oriented multi-precision arithmetic plus the Paillier / RSA facades,
exactly the surface of the paper's Table I:

>>> from repro.api import FlBooster
>>> fl = FlBooster()
>>> fl.add([1, 2], [3, 4])
[4, 6]
>>> pri, pub = fl.paillier.key_gen(128)
>>> c = fl.paillier.encrypt(pub, [5, 6])
>>> fl.paillier.decrypt(pri, fl.paillier.add(pub, c, c))
[10, 12]
"""

from repro.api.ops import ArrayOps
from repro.api.he import PaillierApi, RsaApi, FlBooster
from repro.api.plugin import (
    AcceleratedPublicKey,
    AcceleratedPrivateKey,
    EncryptedNumber,
    generate_accelerated_keypair,
)

__all__ = [
    "ArrayOps",
    "PaillierApi",
    "RsaApi",
    "FlBooster",
    "AcceleratedPublicKey",
    "AcceleratedPrivateKey",
    "EncryptedNumber",
    "generate_accelerated_keypair",
]
