"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``                       -- version, systems, simulated device.
- ``demo``                       -- the Table I API quickstart.
- ``train MODEL [DATASET]``      -- quick federated training comparison.
- ``compress [KEY_BITS]``        -- batch-compression theory table.
- ``faults MODEL [DATASET]``     -- training under an injected fault plan
  (crashes, stragglers, message loss) with quorum aggregation and
  checkpoint/resume, compared across systems.
- ``report [--output PATH]``     -- aggregate benchmarks/results/ into
  one markdown report.
- ``conformance``                -- replay the differential-oracle trace
  suite against every registered engine.
- ``simulate [--trace JSON]``    -- run (or replay) a deterministic
  federation simulation.
- ``fuzz --cases N --seed S``    -- fuzz the wire-format decoders; exits
  non-zero on any crash or silent mis-decode.
- ``failover [--sweep]``         -- durable-coordinator scenarios: one
  scheduled kill by default, or the kill-at-every-WAL-record-boundary
  crash-consistency sweep; exits non-zero on any divergence.
- ``shard [--sweep]``            -- two-level sharded aggregation: one
  run through the sharded service by default, or the per-node
  crash-consistency sweep (leaf, root, and a root failover racing a
  leaf failover); exits non-zero on any divergence.
- ``lint [PATHS ...]``           -- run the flcheck static invariant
  rules (plaintext-wire, determinism, ledger-category, deprecated-api,
  kernel-budget) over src/repro; exits non-zero on live findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_info(_args) -> int:
    import repro
    from repro.baselines import systems
    from repro.gpu.device import RTX_3090

    print(f"repro {repro.__version__} -- FLBooster reproduction (ICDE 2023)")
    print("\nsystem configurations:")
    for config in (systems.FATE, systems.HAFLO, systems.FLBOOSTER,
                   systems.WITHOUT_GHE, systems.WITHOUT_BC):
        print(f"  {config.name:<10s} gpu={config.gpu_he!s:<5s} "
              f"managed={config.managed_gpu!s:<5s} "
              f"bc={config.batch_compression!s:<5s} "
              f"r_bits={config.r_bits}")
    spec = RTX_3090
    print(f"\nsimulated device: {spec.name}")
    print(f"  {spec.num_sms} SMs x {spec.max_threads_per_sm} threads, "
          f"{spec.registers_per_sm} registers/SM, "
          f"{spec.global_memory // 2**30} GiB")
    return 0


def _cmd_demo(_args) -> int:
    from repro import FlBooster

    fl = FlBooster(seed=1)
    pri, pub = fl.paillier.key_gen(1024)
    values = [3, 14, 159]
    ciphertexts = fl.paillier.encrypt(pub, values)
    total = fl.paillier.add(pub, ciphertexts, ciphertexts)
    print(f"encrypt {values} under a {pub.key_bits}-bit Paillier key,")
    print(f"homomorphically double, decrypt ->",
          fl.paillier.decrypt(pri, total))
    device = fl.kernels.device
    print(f"({len(device.launches)} simulated kernel launches, "
          f"SM utilization {device.mean_sm_utilization():.0%})")
    return 0


def _cmd_train(args) -> int:
    from repro.baselines import FATE, FLBOOSTER, HAFLO
    from repro.experiments import format_table, run_training

    rows = []
    for config in (FATE, HAFLO, FLBOOSTER):
        trace = run_training(config, args.model, args.dataset,
                             key_bits=args.key_bits,
                             max_epochs=args.epochs,
                             physical_key_bits=256,
                             bc_capacity="physical")
        rows.append([config.name, f"{trace.losses[0]:.4f}",
                     f"{trace.final_loss:.4f}",
                     f"{trace.cumulative_seconds[-1]:.2f}"])
    print(format_table(
        ["System", "First loss", "Final loss", "Modelled time (s)"],
        rows,
        title=f"{args.model} on {args.dataset} @{args.key_bits} "
              f"({args.epochs} epochs)"))
    return 0


def _cmd_compress(args) -> int:
    from repro.experiments import format_table
    from repro.quantization.packing import (
        compression_ratio,
        packing_capacity,
        plaintext_space_utilization,
    )

    rows = []
    for key_bits in (1024, 2048, 4096) if args.key_bits is None \
            else (args.key_bits,):
        capacity = packing_capacity(key_bits, 30, 4)
        rows.append([key_bits, capacity,
                     f"{compression_ratio(100_000, key_bits, 30, 4):.1f}x",
                     f"{plaintext_space_utilization(100_000, key_bits, 30, 4):.1%}"])
    print(format_table(
        ["Key bits", "Capacity", "Compression (Eq. 11)", "PSU (Eq. 12)"],
        rows, title="Batch compression (r=30, 4 parties)"))
    return 0


def _cmd_faults(args) -> int:
    from repro.baselines import FATE, FLBOOSTER
    from repro.experiments import format_table, run_training_with_recovery
    from repro.federation.faults import FaultPlan

    plan = FaultPlan(seed=args.seed).with_message_loss(args.loss)
    for crash_index in range(args.crashes):
        plan = plan.crash(f"client-{args.clients - 1 - crash_index}",
                          round_index=1)
    if args.straggler_delay > 0:
        plan = plan.straggler(f"client-{args.crashes}", round_index=2,
                              delay_seconds=args.straggler_delay)
    if args.coordinator_crash is not None:
        plan = plan.coordinator_crash(0,
                                      after_record=args.coordinator_crash)
    if args.failover is not None:
        plan = plan.failover(0, after_record=args.failover)

    if args.dump_plan:
        import json as _json

        print(_json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0

    rows = []
    last_result = None
    for config in (FATE, FLBOOSTER):
        result = run_training_with_recovery(
            config, args.model, args.dataset, key_bits=args.key_bits,
            max_epochs=args.epochs, fault_plan=plan,
            min_quorum=args.quorum, num_clients=args.clients,
            physical_key_bits=256, bc_capacity="physical",
            seed=args.seed, max_restarts=args.max_restarts)
        report = result.fault_report
        rows.append([config.name, f"{result.trace.final_loss:.4f}",
                     len(result.trace.losses), result.restarts,
                     report.retransmissions, report.lost_updates,
                     f"{result.trace.cumulative_seconds[-1]:.2f}"])
        last_result = result
    crashes = args.crashes
    print(format_table(
        ["System", "Final loss", "Epochs", "Restarts", "Retransmits",
         "Lost updates", "Modelled time (s)"],
        rows,
        title=f"{args.model} on {args.dataset}: {args.clients} clients, "
              f"quorum {args.quorum}, {args.loss:.0%} loss, "
              f"{crashes} crash{'es' if crashes != 1 else ''}"))
    print("\nfault report (last system):")
    for line in last_result.fault_report.summary_lines():
        print(f"  {line}")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.experiments.report import build_report

    results = Path(args.results_dir)
    output = Path(args.output) if args.output else None
    report = build_report(results, output_path=output)
    if output:
        print(f"wrote {output} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


def _cmd_conformance(args) -> int:
    from repro.experiments import format_table
    from repro.testing import run_all

    results = run_all(key_bits=args.key_bits)
    rows = [[r.engine, r.trace, r.status, r.ops_checked]
            for r in results]
    print(format_table(["Engine", "Trace", "Status", "Ops checked"],
                       rows, title="Differential conformance oracle"))
    failed = [r for r in results if r.status not in ("ok", "skipped")]
    print(f"\n{len(results)} (engine, trace) rows, "
          f"{sum(1 for r in results if r.status == 'ok')} ok")
    return 1 if failed else 0


def _cmd_simulate(args) -> int:
    import json as _json

    from repro.testing.simulator import (
        FederationSimulator,
        SimulationSpec,
        replay,
    )

    if args.trace:
        result = replay(args.trace)
    else:
        spec = SimulationSpec(system=args.system,
                              num_clients=args.clients,
                              rounds=args.rounds,
                              key_bits=args.key_bits,
                              physical_key_bits=args.physical_key_bits,
                              seed=args.seed,
                              min_quorum=args.quorum)
        result = FederationSimulator(spec).run()
    print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.testing.fuzz import run_fuzz

    seed = int(args.seed) if args.seed.lstrip("-").isdigit() \
        else args.seed
    report = run_fuzz(cases=args.cases, seed=seed, corpus=args.corpus)
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_failover(args) -> int:
    import json as _json

    from repro.federation.faults import FaultPlan
    from repro.testing.simulator import (
        DurableFederationSimulator,
        SimulationFailure,
        SimulationSpec,
        crash_consistency_sweep,
    )

    spec = SimulationSpec(system=args.system,
                          num_clients=args.clients,
                          rounds=args.rounds,
                          key_bits=args.key_bits,
                          physical_key_bits=args.physical_key_bits,
                          seed=args.seed,
                          min_quorum=args.quorum,
                          durable=True)
    if args.sweep:
        modes = (("coordinator_crash", "failover")
                 if args.mode == "both" else (args.mode,))
        for mode in modes:
            try:
                report = crash_consistency_sweep(spec, mode=mode)
            except SimulationFailure as failure:
                print(failure)
                return 1
            for line in report.summary_lines():
                print(line)
        return 0

    plan = FaultPlan(seed=args.seed)
    if args.mode == "failover":
        plan = plan.failover(0, after_record=args.after_record)
    else:
        plan = plan.coordinator_crash(0, after_record=args.after_record)
    spec = SimulationSpec.from_dict(
        {**spec.to_dict(), "fault_plan": plan.to_dict()})
    try:
        result = DurableFederationSimulator(spec).run()
    except SimulationFailure as failure:
        print(failure)
        return 1
    print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_shard(args) -> int:
    import json as _json

    from repro.federation.faults import FaultPlan
    from repro.testing.simulator import (
        ShardedFederationSimulator,
        SimulationFailure,
        SimulationSpec,
        shard_crash_consistency_sweep,
    )

    spec = SimulationSpec(system=args.system,
                          num_clients=args.clients,
                          rounds=args.rounds,
                          key_bits=args.key_bits,
                          physical_key_bits=args.physical_key_bits,
                          seed=args.seed,
                          min_quorum=args.quorum,
                          sharded=True,
                          num_shards=args.shards,
                          queue_capacity=args.queue_capacity,
                          cohort_size=args.cohort)
    if args.sweep:
        scenarios = (("shard-0", False), ("root", False),
                     ("shard-0", True))
        for node, race in scenarios:
            try:
                report = shard_crash_consistency_sweep(
                    spec, node=node, race_root_failover=race)
            except SimulationFailure as failure:
                print(failure)
                return 1
            for line in report.summary_lines():
                print(line)
        return 0

    if args.shard_crash is not None:
        plan = (spec.fault_plan if spec.fault_plan is not None
                else FaultPlan(seed=args.seed))
        plan = plan.shard_crash("shard-0", 0,
                                after_record=args.shard_crash)
        spec = SimulationSpec.from_dict(
            {**spec.to_dict(), "fault_plan": plan.to_dict()})
    try:
        result = ShardedFederationSimulator(spec).run()
    except SimulationFailure as failure:
        print(failure)
        return 1
    print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0


def _build_tenancy_spec(args) -> "object":
    from repro.federation.faults import FaultPlan
    from repro.testing.simulator import TenancySpec, TenantSpec

    noisy_plan = (FaultPlan(seed=args.seed)
                  .tenant_flood("tenant-a", 0,
                                intensity=args.flood_intensity)
                  .tenant_crash("tenant-a", 1))
    return TenancySpec(
        system=args.system,
        rounds=args.rounds,
        key_bits=args.key_bits,
        physical_key_bits=args.physical_key_bits,
        queue_capacity=args.queue_capacity,
        tenants=(
            TenantSpec("tenant-a", num_clients=args.clients,
                       seed=args.seed + 4,
                       quota_rate=args.quota_rate,
                       quota_burst=args.quota_burst,
                       min_quorum=1,
                       fault_plan=noisy_plan),
            TenantSpec("tenant-b", num_clients=args.clients,
                       weight=2.0, seed=args.seed + 16),
        ))


def _cmd_tenants(args) -> int:
    from repro.testing.simulator import (
        MultiTenantSimulator,
        TenancyFailure,
        TenancySpec,
        rebalance_crash_sweep,
        tenant_isolation_check,
    )

    spec = _build_tenancy_spec(args)
    if args.sweep:
        # CI smoke: the isolation invariant plus the kill-at-every-
        # topology-record rebalance sweep, on one small scenario.
        try:
            isolation = tenant_isolation_check(spec, "tenant-b")
        except TenancyFailure as failure:
            print(failure)
            return 1
        for line in isolation.summary_lines():
            print(line)
        sweep_spec = TenancySpec.from_dict({
            **spec.to_dict(),
            "rebalance_targets": [3, 1, 2],
            "tenants": [{**t.to_dict(), "fault_plan": None}
                        for t in spec.tenants],
        })
        try:
            sweep = rebalance_crash_sweep(sweep_spec)
        except TenancyFailure as failure:
            print(failure)
            return 1
        for line in sweep.summary_lines():
            print(line)
        return 0

    try:
        result = MultiTenantSimulator(spec).run()
    except TenancyFailure as failure:
        print(failure)
        return 1
    print(f"tenants               {len(spec.tenants)}")
    print(f"rounds                {spec.rounds}")
    print(f"active shards         {result.active_history[-1]}")
    print(f"rebalance operations  {result.rebalance_ops}")
    for tenant_spec in spec.tenants:
        tenant_id = tenant_spec.tenant_id
        statuses = ",".join(result.statuses[tenant_id])
        faults = result.tenant_fault_counts[tenant_id]
        print(f"{tenant_id:<21} rounds [{statuses}] faults {faults}")
    try:
        isolation = tenant_isolation_check(spec, "tenant-b")
    except TenancyFailure as failure:
        print(failure)
        return 1
    for line in isolation.summary_lines():
        print(line)
    return 0


def _changed_files():
    """Resolved paths git reports as modified or untracked, or ``None``.

    ``None`` (git missing, not a repository, subprocess failure) makes
    ``--changed-only`` degrade to a full scan -- strictly more findings,
    never fewer, which is the safe direction for a lint gate.
    """
    import subprocess
    from pathlib import Path

    changed = set()
    for command in (["git", "diff", "--name-only", "HEAD"],
                    ["git", "ls-files", "--others",
                     "--exclude-standard"]):
        try:
            output = subprocess.run(
                command, capture_output=True, text=True, check=True,
                timeout=30).stdout
        except (OSError, subprocess.SubprocessError):
            return None
        for line in output.splitlines():
            if line.strip():
                changed.add(Path(line.strip()).resolve())
    return changed


def _cmd_lint(args) -> int:
    from pathlib import Path

    import repro
    from repro.analysis import (
        ALL_RULES,
        TimeBudgetExceeded,
        load_baseline,
        run_lint,
        write_baseline,
    )

    paths = [Path(p) for p in args.paths] if args.paths else \
        [Path(repro.__file__).resolve().parent]
    baseline_path = Path(args.baseline)
    changed_paths = None
    if args.changed_only:
        changed_paths = _changed_files()
        if changed_paths is None:
            print("flcheck: warning: git unavailable, --changed-only "
                  "falling back to a full scan", file=sys.stderr)
    try:
        report = run_lint(paths,
                          rule_filter=args.rule or None,
                          baseline=load_baseline(baseline_path),
                          max_seconds=args.max_seconds,
                          excludes=tuple(args.exclude),
                          changed_paths=changed_paths)
    except (TimeBudgetExceeded, ValueError) as exc:
        print(f"flcheck: error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        write_baseline(baseline_path, report.findings)
        print(f"flcheck: wrote {len(report.findings)} finding(s) to "
              f"{baseline_path}")
        return 0
    if args.sarif:
        descriptions = {rule.name: rule.description for rule in ALL_RULES}
        Path(args.sarif).write_text(report.to_sarif(descriptions) + "\n",
                                    encoding="utf-8")
        print(f"flcheck: wrote SARIF log to {args.sarif}",
              file=sys.stderr)
    print(report.to_json() if args.json else report.format())
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLBooster reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="show configuration and device") \
        .set_defaults(handler=_cmd_info)
    commands.add_parser("demo", help="run the Table I quickstart") \
        .set_defaults(handler=_cmd_demo)

    train = commands.add_parser("train",
                                help="quick training comparison")
    train.add_argument("model",
                       choices=["Homo LR", "Hetero LR", "Hetero SBT",
                                "Hetero NN", "Homo NN"])
    train.add_argument("dataset", nargs="?", default="Synthetic",
                       choices=["RCV1", "Avazu", "Synthetic"])
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--key-bits", type=int, default=1024)
    train.set_defaults(handler=_cmd_train)

    compress = commands.add_parser("compress",
                                   help="compression theory table")
    compress.add_argument("key_bits", nargs="?", type=int, default=None)
    compress.set_defaults(handler=_cmd_compress)

    faults = commands.add_parser(
        "faults", help="training under an injected fault plan")
    faults.add_argument("model", nargs="?", default="Homo LR",
                        choices=["Homo LR", "Homo NN"])
    faults.add_argument("dataset", nargs="?", default="Synthetic",
                        choices=["RCV1", "Avazu", "Synthetic"])
    faults.add_argument("--clients", type=int, default=8)
    faults.add_argument("--quorum", type=int, default=6)
    faults.add_argument("--loss", type=float, default=0.10,
                        help="per-attempt message loss probability")
    faults.add_argument("--crashes", type=int, default=1,
                        help="clients permanently crashed from round 1")
    faults.add_argument("--straggler-delay", type=float, default=30.0,
                        help="modelled straggler delay in round 2 (s)")
    faults.add_argument("--epochs", type=int, default=3)
    faults.add_argument("--key-bits", type=int, default=1024)
    faults.add_argument("--max-restarts", type=int, default=10)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--coordinator-crash", type=int, default=None,
                        metavar="RECORD",
                        help="schedule a coordinator crash after this "
                             "WAL record")
    faults.add_argument("--failover", type=int, default=None,
                        metavar="RECORD",
                        help="schedule a standby failover after this "
                             "WAL record")
    faults.add_argument("--dump-plan", action="store_true",
                        help="print the fault plan JSON and exit")
    faults.set_defaults(handler=_cmd_faults)

    report = commands.add_parser(
        "report", help="aggregate benchmark results into one document")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None)
    report.set_defaults(handler=_cmd_report)

    conformance = commands.add_parser(
        "conformance",
        help="replay the differential oracle against every engine")
    conformance.add_argument("--key-bits", type=int, default=128,
                             help="physical key size for the traces")
    conformance.set_defaults(handler=_cmd_conformance)

    simulate = commands.add_parser(
        "simulate", help="run or replay a deterministic federation sim")
    simulate.add_argument("--trace", default=None,
                          help="replay a failure's printed trace JSON")
    simulate.add_argument("--system", default="FLBooster")
    simulate.add_argument("--clients", type=int, default=4)
    simulate.add_argument("--rounds", type=int, default=3)
    simulate.add_argument("--key-bits", type=int, default=256)
    simulate.add_argument("--physical-key-bits", type=int, default=128)
    simulate.add_argument("--quorum", type=int, default=None)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.set_defaults(handler=_cmd_simulate)

    fuzz = commands.add_parser(
        "fuzz", help="fuzz the wire-format decoders")
    fuzz.add_argument("--cases", type=int, default=500)
    fuzz.add_argument("--seed", default="0",
                      help="int, or a string (e.g. 'ci') hashed to one")
    fuzz.add_argument("--corpus", choices=["all", "packing"],
                      default="all",
                      help="'packing' restricts to FLT2/FLT3 tensor "
                           "frames (the codec-focused campaign)")
    fuzz.set_defaults(handler=_cmd_fuzz)

    failover = commands.add_parser(
        "failover",
        help="durable-coordinator crash/failover scenarios")
    failover.add_argument("--sweep", action="store_true",
                          help="kill after every WAL record boundary "
                               "and verify bit-identical recovery")
    failover.add_argument("--mode", default="coordinator_crash",
                          choices=["coordinator_crash", "failover",
                                   "both"])
    failover.add_argument("--after-record", type=int, default=2,
                          help="kill boundary for the single-scenario "
                               "mode")
    failover.add_argument("--system", default="FLBooster")
    failover.add_argument("--clients", type=int, default=3)
    failover.add_argument("--rounds", type=int, default=2)
    failover.add_argument("--key-bits", type=int, default=256)
    failover.add_argument("--physical-key-bits", type=int, default=128)
    failover.add_argument("--quorum", type=int, default=None)
    failover.add_argument("--seed", type=int, default=7)
    failover.set_defaults(handler=_cmd_failover)

    shard = commands.add_parser(
        "shard",
        help="two-level sharded aggregation scenarios")
    shard.add_argument("--sweep", action="store_true",
                       help="kill each tree node after every WAL record "
                            "(leaf, root, and a root/leaf failover "
                            "race) and verify bit-identical recovery")
    shard.add_argument("--shard-crash", type=int, default=None,
                       metavar="RECORD",
                       help="kill shard-0 after this WAL record in the "
                            "single-scenario mode")
    shard.add_argument("--system", default="FLBooster")
    shard.add_argument("--clients", type=int, default=6)
    shard.add_argument("--shards", type=int, default=None,
                       help="fixed shard count "
                            "(default ceil(sqrt(cohort)))")
    shard.add_argument("--rounds", type=int, default=2)
    shard.add_argument("--queue-capacity", type=int, default=64)
    shard.add_argument("--cohort", type=int, default=None,
                       help="sample this many clients per round")
    shard.add_argument("--key-bits", type=int, default=256)
    shard.add_argument("--physical-key-bits", type=int, default=128)
    shard.add_argument("--quorum", type=int, default=None)
    shard.add_argument("--seed", type=int, default=7)
    shard.set_defaults(handler=_cmd_shard)

    tenants = commands.add_parser(
        "tenants",
        help="multi-tenant isolation scenarios on the shared pool")
    tenants.add_argument("--sweep", action="store_true",
                         help="assert the tenant-isolation invariant "
                              "and kill the shard pool at every "
                              "topology record (bit-identical "
                              "recovery)")
    tenants.add_argument("--system", default="FLBooster")
    tenants.add_argument("--clients", type=int, default=4,
                         help="clients per tenant")
    tenants.add_argument("--rounds", type=int, default=3)
    tenants.add_argument("--queue-capacity", type=int, default=64)
    tenants.add_argument("--flood-intensity", type=int, default=3,
                         help="duplicate uploads per client in "
                              "tenant-a's injected flood round")
    tenants.add_argument("--quota-rate", type=float, default=2.0,
                         help="tenant-a's token-bucket refill rate")
    tenants.add_argument("--quota-burst", type=int, default=8)
    tenants.add_argument("--key-bits", type=int, default=256)
    tenants.add_argument("--physical-key-bits", type=int, default=128)
    tenants.add_argument("--seed", type=int, default=7)
    tenants.set_defaults(handler=_cmd_tenants)

    lint = commands.add_parser(
        "lint", help="run the flcheck static invariant rules")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to scan "
                           "(default: the installed repro package)")
    lint.add_argument("--rule", action="append", default=[],
                      help="run only this rule (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    lint.add_argument("--baseline", default="flcheck-baseline.json",
                      help="grandfathered-findings file")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to the current findings")
    lint.add_argument("--sarif", metavar="FILE", default=None,
                      help="also write the report as a SARIF 2.1.0 log")
    lint.add_argument("--changed-only", action="store_true",
                      help="report findings only in files git sees as "
                           "modified or untracked (the whole-program "
                           "call graph still spans the full tree)")
    lint.add_argument("--exclude", action="append", default=[],
                      metavar="DIR",
                      help="directory name to skip during discovery "
                           "(repeatable), e.g. fixtures")
    lint.add_argument("--max-seconds", type=float, default=None,
                      help="abort (exit 2) past this time budget")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
