"""A CSR sparse-matrix substrate for the sparse paper datasets.

RCV1 and Avazu are 0.2%- and 0.002%-dense (Table II); their gradient
computations are nnz-bound, not dims-bound.  This module provides the
compressed-sparse-row kernels the models need -- ``X @ w``, ``X.T @ r``
and row slicing -- implemented with vectorized numpy (no Python-level
inner loops), so sparse training is both *correct* and charged at its
true nnz-proportional FLOP cost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class CsrMatrix:
    """Compressed sparse row matrix with the kernels FL training needs.

    Attributes:
        data: Non-zero values, row-major.
        indices: Column index of each value.
        indptr: Row boundaries into ``data``/``indices``
            (length ``rows + 1``).
        shape: ``(rows, cols)``.
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(self, data: np.ndarray, indices: np.ndarray,
                 indptr: np.ndarray, shape: tuple):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = tuple(shape)
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError("indptr length must be rows + 1")
        if len(self.data) != len(self.indices):
            raise ValueError("data and indices lengths differ")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must span [0, nnz]")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= self.shape[1]):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CsrMatrix":
        """Compress a dense matrix (zeros dropped exactly)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("need a 2-D matrix")
        rows, _cols = dense.shape
        mask = dense != 0.0
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        row_idx, col_idx = np.nonzero(mask)
        return cls(data=dense[row_idx, col_idx], indices=col_idx,
                   indptr=indptr, shape=dense.shape)

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix."""
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # Properties.
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return len(self.data)

    @property
    def density(self) -> float:
        """Fraction of cells that are non-zero."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def matvec_flops(self) -> int:
        """FLOPs of one ``X @ w`` (a multiply-add per stored value)."""
        return 2 * self.nnz

    # ------------------------------------------------------------------
    # Kernels.
    # ------------------------------------------------------------------

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """``X @ w`` -- per-row segmented dot products."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.shape[1],):
            raise ValueError(
                f"vector of length {len(vector)} against "
                f"{self.shape[1]} columns")
        products = self.data * vector[self.indices]
        out = np.zeros(self.shape[0])
        if self.nnz:
            # reduceat needs strictly valid segment starts; empty rows
            # are handled by differencing the cumulative sum instead.
            cumulative = np.concatenate(([0.0], np.cumsum(products)))
            out = cumulative[self.indptr[1:]] - cumulative[self.indptr[:-1]]
        return out

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        """``X.T @ r`` -- scatter-add into the column space."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.shape[0],):
            raise ValueError(
                f"vector of length {len(vector)} against "
                f"{self.shape[0]} rows")
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data * vector[rows])
        return out

    def take_rows(self, row_indices: Sequence[int]) -> "CsrMatrix":
        """Row subset (mini-batching), preserving sparsity."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        counts = np.diff(self.indptr)[row_indices]
        indptr = np.zeros(len(row_indices) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        spans = [slice(self.indptr[row], self.indptr[row + 1])
                 for row in row_indices]
        if spans:
            data = np.concatenate([self.data[span] for span in spans]) \
                if indptr[-1] else np.empty(0)
            indices = np.concatenate([self.indices[span] for span in spans]) \
                if indptr[-1] else np.empty(0, dtype=np.int64)
        else:
            data = np.empty(0)
            indices = np.empty(0, dtype=np.int64)
        return CsrMatrix(data=data, indices=indices, indptr=indptr,
                         shape=(len(row_indices), self.shape[1]))
