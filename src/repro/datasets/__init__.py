"""Datasets (paper Sec. VI-A, Table II).

Synthetic replicas of the paper's three evaluation datasets, matching each
one's *shape* -- sparsity pattern, feature-dimension ratios, label balance
-- at a configurable scale, plus the horizontal / vertical partitioners
that produce the homogeneous and heterogeneous federation splits.

- ``rcv1_like``      -- sparse, text-categorization-shaped (RCV1).
- ``avazu_like``     -- very sparse, one-hot CTR-shaped (Avazu).
- ``synthetic_like`` -- the dense LEAF ``synthetic`` generator of Li et
  al. [39], reimplemented from its published recipe.
"""

from repro.datasets.generators import (
    Dataset,
    rcv1_like,
    avazu_like,
    synthetic_like,
    DATASET_GENERATORS,
    PAPER_SCALES,
)
from repro.datasets.sparse import CsrMatrix
from repro.datasets.partition import (
    horizontal_split,
    vertical_split,
    train_test_split,
    HorizontalPartition,
    VerticalPartition,
)

__all__ = [
    "Dataset",
    "rcv1_like",
    "avazu_like",
    "synthetic_like",
    "DATASET_GENERATORS",
    "PAPER_SCALES",
    "horizontal_split",
    "train_test_split",
    "vertical_split",
    "HorizontalPartition",
    "VerticalPartition",
    "CsrMatrix",
]
