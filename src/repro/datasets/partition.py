"""Federation partitioners (paper Sec. VI-A, "Benchmark FL Models").

The paper: "For the homogeneous model, we horizontally divide three
datasets into subsets of the same number of data instances where each
participant shares the same feature space but is different in samples.
For heterogeneous models, we vertically divide three datasets into subsets
of the same number of features, where each participant shares the same
sample ID space but differs in feature space."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.generators import Dataset
from repro.rng import np_rng


@dataclass(frozen=True)
class HorizontalPartition:
    """One client's horizontal shard: same features, disjoint samples."""

    client_id: int
    features: np.ndarray
    labels: np.ndarray

    @property
    def num_instances(self) -> int:
        """Rows owned by this client."""
        return self.features.shape[0]


@dataclass(frozen=True)
class VerticalPartition:
    """One party's vertical shard: same samples, disjoint features.

    Only the guest (``has_labels=True``) holds the labels, per the
    standard vertical-FL trust model.
    """

    party_id: int
    features: np.ndarray
    labels: np.ndarray | None
    has_labels: bool

    @property
    def num_features(self) -> int:
        """Columns owned by this party."""
        return self.features.shape[1]


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     seed: int = 0):
    """Split a dataset into (train, test) :class:`Dataset` pair.

    The split shuffles instances; both halves keep the parent's metadata
    (paper-scale dimensions, name) so downstream accounting still works.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np_rng(seed)
    order = rng.permutation(dataset.num_instances)
    test_count = max(1, int(round(test_fraction * dataset.num_instances)))
    if test_count >= dataset.num_instances:
        raise ValueError("test fraction leaves no training data")
    test_rows = order[:test_count]
    train_rows = order[test_count:]

    def subset(rows: np.ndarray) -> Dataset:
        return Dataset(name=dataset.name,
                       features=dataset.features[rows],
                       labels=dataset.labels[rows],
                       density=dataset.density,
                       paper_instances=dataset.paper_instances,
                       paper_features=dataset.paper_features)

    return subset(train_rows), subset(test_rows)


def horizontal_split(dataset: Dataset, num_clients: int,
                     seed: int = 0) -> List[HorizontalPartition]:
    """Split instances evenly across ``num_clients`` (homogeneous FL)."""
    if num_clients < 1:
        raise ValueError("need at least one client")
    if dataset.num_instances < num_clients:
        raise ValueError(
            f"{dataset.num_instances} instances cannot cover "
            f"{num_clients} clients")
    rng = np_rng(seed)
    order = rng.permutation(dataset.num_instances)
    shards = np.array_split(order, num_clients)
    return [
        HorizontalPartition(
            client_id=index,
            features=dataset.features[shard],
            labels=dataset.labels[shard],
        )
        for index, shard in enumerate(shards)
    ]


def vertical_split(dataset: Dataset, num_parties: int = 2,
                   guest_fraction: float | None = None,
                   seed: int = 0) -> List[VerticalPartition]:
    """Split features across parties (heterogeneous FL).

    Party 0 is the guest and keeps the labels.  With ``guest_fraction``
    the guest receives that share of the features; otherwise features are
    divided evenly (the paper's "subsets of the same number of features").
    """
    if num_parties < 2:
        raise ValueError("vertical FL needs at least two parties")
    if dataset.num_features < num_parties:
        raise ValueError(
            f"{dataset.num_features} features cannot cover "
            f"{num_parties} parties")
    rng = np_rng(seed)
    order = rng.permutation(dataset.num_features)
    if guest_fraction is not None:
        if not 0 < guest_fraction < 1:
            raise ValueError("guest_fraction must be in (0, 1)")
        guest_count = max(1, int(round(guest_fraction * dataset.num_features)))
        shards = [order[:guest_count]]
        shards.extend(np.array_split(order[guest_count:], num_parties - 1))
    else:
        shards = np.array_split(order, num_parties)
    partitions: List[VerticalPartition] = []
    for index, shard in enumerate(shards):
        is_guest = index == 0
        partitions.append(VerticalPartition(
            party_id=index,
            features=dataset.features[:, np.sort(shard)],
            labels=dataset.labels if is_guest else None,
            has_labels=is_guest,
        ))
    return partitions
