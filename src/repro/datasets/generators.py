"""Synthetic dataset generators matching the paper's Table II shapes.

The paper evaluates on RCV1 (677,399 x 47,236, sparse NLP), Avazu
(1,719,304 x 1,000,000, extremely sparse CTR) and the LEAF ``synthetic``
benchmark (100,000 x 10,000, dense).  Real RCV1/Avazu cannot ship with the
repository, so each generator reproduces the property that drives the
paper's results -- the gradient-vector dimensionality and the sparsity
pattern -- at laptop scale, with the paper-scale dimensions recorded in
:data:`PAPER_SCALES` so benchmarks can extrapolate operation counts.

All generators are deterministic given a seed and produce linearly
separable-ish binary tasks so the four FL models genuinely converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.rng import np_rng


@dataclass(frozen=True)
class Dataset:
    """A supervised binary-classification dataset.

    Attributes:
        name: Display name.
        features: Dense feature matrix, shape (instances, dims).
        labels: Binary labels in {0, 1}, shape (instances,).
        density: Fraction of non-zero feature entries.
        paper_instances / paper_features: The paper-scale dimensions this
            dataset stands in for, used by the extrapolation helpers.
    """

    name: str
    features: np.ndarray
    labels: np.ndarray
    density: float
    paper_instances: int
    paper_features: int

    @property
    def num_instances(self) -> int:
        """Rows in the scaled dataset."""
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Columns in the scaled dataset."""
        return self.features.shape[1]

    def scale_factor(self) -> float:
        """Paper-scale work per unit of scaled work (instances x dims)."""
        ours = self.num_instances * self.num_features
        paper = self.paper_instances * self.paper_features
        return paper / ours


#: Paper-scale dimensions from Table II.
PAPER_SCALES: Dict[str, Tuple[int, int]] = {
    "RCV1": (677_399, 47_236),
    "Avazu": (1_719_304, 1_000_000),
    "Synthetic": (100_000, 10_000),
}


def _labels_from_logits(logits: np.ndarray, rng: np.random.Generator,
                        noise: float = 0.1) -> np.ndarray:
    """Draw binary labels from a logistic model with label noise."""
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    labels = (probabilities > 0.5).astype(np.float64)
    flip = rng.random(len(labels)) < noise
    labels[flip] = 1.0 - labels[flip]
    return labels


def rcv1_like(instances: int = 1024, features: int = 512,
              density: float = 0.04, seed: int = 0) -> Dataset:
    """Sparse text-categorization-shaped data (RCV1 stand-in).

    TF-IDF-like features: each document activates a power-law-distributed
    subset of terms with log-normal weights.
    """
    rng = np_rng(seed)
    matrix = np.zeros((instances, features))
    nnz_per_row = max(1, int(density * features))
    # Power-law term popularity, the signature of text data.
    popularity = 1.0 / np.arange(1, features + 1) ** 0.8
    popularity /= popularity.sum()
    for row in range(instances):
        active = rng.choice(features, size=nnz_per_row, replace=False,
                            p=popularity)
        matrix[row, active] = rng.lognormal(mean=0.0, sigma=0.4,
                                            size=nnz_per_row)
    # Row-normalize like TF-IDF vectors.
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    matrix /= norms
    truth = rng.normal(size=features) / np.sqrt(nnz_per_row)
    labels = _labels_from_logits(matrix @ truth * 4.0, rng)
    paper_rows, paper_dims = PAPER_SCALES["RCV1"]
    return Dataset(name="RCV1", features=matrix, labels=labels,
                   density=float((matrix != 0).mean()),
                   paper_instances=paper_rows, paper_features=paper_dims)


def avazu_like(instances: int = 1024, features: int = 1024,
               fields: int = 16, seed: int = 0) -> Dataset:
    """One-hot CTR-shaped data (Avazu stand-in).

    Each instance activates exactly one feature per categorical field --
    the structure of hashed CTR data -- giving extreme sparsity with
    binary values.
    """
    rng = np_rng(seed)
    if features % fields != 0:
        raise ValueError("features must divide evenly into fields")
    per_field = features // fields
    matrix = np.zeros((instances, features))
    # Skewed category popularity inside each field.
    weights = 1.0 / np.arange(1, per_field + 1)
    weights /= weights.sum()
    for field_index in range(fields):
        categories = rng.choice(per_field, size=instances, p=weights)
        matrix[np.arange(instances),
               field_index * per_field + categories] = 1.0
    truth = rng.normal(size=features)
    labels = _labels_from_logits(matrix @ truth / np.sqrt(fields) * 3.0, rng)
    paper_rows, paper_dims = PAPER_SCALES["Avazu"]
    return Dataset(name="Avazu", features=matrix, labels=labels,
                   density=float((matrix != 0).mean()),
                   paper_instances=paper_rows, paper_features=paper_dims)


def synthetic_like(instances: int = 1024, features: int = 64,
                   alpha: float = 1.0, beta: float = 1.0,
                   seed: int = 0) -> Dataset:
    """The LEAF ``synthetic(alpha, beta)`` generator of Li et al. [39].

    Dense Gaussian features with diagonal covariance ``Sigma_jj =
    j^{-1.2}``, a Gaussian ground-truth model drawn per the ``alpha``
    heterogeneity parameter, and logistic labels -- the recipe of the
    LEAF benchmark the paper's Synthetic dataset comes from.
    """
    rng = np_rng(seed)
    b = rng.normal(0.0, beta)
    mean_v = rng.normal(b, 1.0, size=features)
    diag = np.arange(1, features + 1, dtype=np.float64) ** -1.2
    matrix = rng.normal(loc=mean_v, scale=np.sqrt(diag),
                        size=(instances, features))
    # Standardize so gradients respect the quantization bound; labels are
    # drawn from the standardized features so an intercept-free linear
    # model can realize the ground truth.
    matrix = (matrix - matrix.mean(axis=0)) / (matrix.std(axis=0) + 1e-8)
    u = rng.normal(0.0, alpha)
    truth = rng.normal(u, 1.0, size=features)
    labels = _labels_from_logits(matrix @ truth / np.sqrt(features) * 3.0,
                                 rng)
    paper_rows, paper_dims = PAPER_SCALES["Synthetic"]
    return Dataset(name="Synthetic", features=matrix, labels=labels,
                   density=1.0,
                   paper_instances=paper_rows, paper_features=paper_dims)


#: Name -> generator, for sweep harnesses.
DATASET_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "RCV1": rcv1_like,
    "Avazu": avazu_like,
    "Synthetic": synthetic_like,
}
