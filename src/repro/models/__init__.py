"""The four benchmark FL models (paper Sec. VI-A).

- :mod:`repro.models.homo_lr` -- homogeneous logistic regression [28]:
  horizontal split, FedAvg-style secure gradient aggregation.
- :mod:`repro.models.hetero_lr` -- heterogeneous logistic regression [11]:
  vertical split, encrypted forward-sum / residual exchange.
- :mod:`repro.models.hetero_sbt` -- heterogeneous SecureBoost [17]:
  vertical gradient boosting with encrypted gradient/histogram exchange.
- :mod:`repro.models.hetero_nn` -- heterogeneous neural network [71]:
  split network with an encrypted interactive layer.

All models run their numerics for real (losses are genuine) and route
every cross-party tensor through the secure pipeline
(encode -> pack -> encrypt -> transfer -> decrypt), so HE-operation and
communication counts respond to the system configuration exactly as the
paper's do.  DESIGN.md documents where the cipher-domain per-element
computations of the original vertical protocols are replaced by
masked-transfer equivalents with matching operation counts.
"""

from repro.models.base import FederatedModel, TrainingTrace
from repro.models.optim import SgdOptimizer, AdamOptimizer
from repro.models.losses import (
    sigmoid,
    logistic_loss,
    logistic_gradient,
)
from repro.models.homo_lr import HomoLogisticRegression
from repro.models.hetero_lr import HeteroLogisticRegression
from repro.models.hetero_sbt import HeteroSecureBoost
from repro.models.hetero_nn import HeteroNeuralNetwork
from repro.models.homo_nn import HomoNeuralNetwork

#: Name -> class, for the benchmark sweeps.  "Homo NN" is a
#: beyond-the-paper extension (the paper benchmarks the first four).
MODEL_REGISTRY = {
    "Homo LR": HomoLogisticRegression,
    "Hetero LR": HeteroLogisticRegression,
    "Hetero SBT": HeteroSecureBoost,
    "Hetero NN": HeteroNeuralNetwork,
    "Homo NN": HomoNeuralNetwork,
}

__all__ = [
    "FederatedModel",
    "TrainingTrace",
    "SgdOptimizer",
    "AdamOptimizer",
    "sigmoid",
    "logistic_loss",
    "logistic_gradient",
    "HomoLogisticRegression",
    "HeteroLogisticRegression",
    "HeteroSecureBoost",
    "HeteroNeuralNetwork",
    "HomoNeuralNetwork",
    "MODEL_REGISTRY",
]
