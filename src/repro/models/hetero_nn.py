"""Heterogeneous neural network (paper's Hetero NN [71]).

A split network over a vertical partition, in the style of FATE's
Hetero NN / GELU-Net:

- the *host* runs a bottom MLP over its features and contributes an
  interactive-layer fragment ``u_h = bottom_h(X_h) @ W_h``;
- the *guest* runs its own bottom MLP, adds the host fragment inside the
  interactive layer ``z = bottom_g(X_g) @ W_g + u_h``, and runs the top
  model (a logistic head) on ``tanh(z)``;
- on the backward pass the guest returns the interactive-layer gradient
  ``dL/du_h`` to the host, which backpropagates through its weights.

The two per-batch cross-party tensors -- the forward fragment and the
backward gradient, each ``batch x interactive_dim`` -- travel through the
encode -> pack -> encrypt -> transfer -> decrypt pipeline, making Hetero
NN the most HE-op-intensive model per instance after SBT, as in the
paper's Fig. 1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.partition import vertical_split
from repro.federation.metrics import charge_model_compute
from repro.federation.runtime import FederationRuntime
from repro.models.base import FederatedModel
from repro.models.losses import logistic_loss, sigmoid
from repro.models.optim import AdamOptimizer


class HeteroNeuralNetwork(FederatedModel):
    """Split neural network between a guest and a host.

    Args:
        dataset: The full dataset (vertically split internally).
        hidden_dim: Bottom-MLP hidden width on each side.
        interactive_dim: Width of the encrypted interactive layer.
        batch_size: Mini-batch size.
        learning_rate: Adam step size.
        l2: Weight decay.
        seed: Determinism seed.
    """

    name = "Hetero NN"

    def __init__(self, dataset: Dataset, hidden_dim: int = 16,
                 interactive_dim: int = 4, batch_size: int = 256,
                 learning_rate: float = 0.02, l2: float = 1e-4,
                 seed: int = 0):
        super().__init__(dataset, seed=seed)
        self.batch_size = batch_size
        self.l2 = l2
        self._density = max(dataset.density, 1e-6)
        self.interactive_dim = interactive_dim
        guest, host = vertical_split(dataset, num_parties=2, seed=seed)
        self.guest = guest
        self.host = host

        def xavier(rows: int, cols: int) -> np.ndarray:
            bound = np.sqrt(6.0 / (rows + cols))
            return self.rng.uniform(-bound, bound, size=(rows, cols))

        self.params: Dict[str, np.ndarray] = {
            # Bottom MLPs (tanh keeps interactive inputs bounded).
            "guest_w1": xavier(guest.num_features, hidden_dim),
            "guest_b1": np.zeros(hidden_dim),
            "host_w1": xavier(host.num_features, hidden_dim),
            "host_b1": np.zeros(hidden_dim),
            # Interactive layer.
            "guest_wi": xavier(hidden_dim, interactive_dim),
            "host_wi": xavier(hidden_dim, interactive_dim),
            "bias_i": np.zeros(interactive_dim),
            # Top (logistic head).
            "top_w": xavier(interactive_dim, 1),
            "top_b": np.zeros(1),
        }
        self._optimizers = {
            name: AdamOptimizer(learning_rate=learning_rate)
            for name in self.params
        }

    # ------------------------------------------------------------------
    # Epoch.
    # ------------------------------------------------------------------

    def run_epoch(self, runtime: FederationRuntime) -> float:
        """One epoch of mini-batch split training."""
        order = self.rng.permutation(self.dataset.num_instances)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            self._run_batch(runtime, batch)
        return self.loss()

    def _run_batch(self, runtime: FederationRuntime,
                   batch: np.ndarray) -> None:
        p = self.params
        X_g = self.guest.features[batch]
        X_h = self.host.features[batch]
        y = self.guest.labels[batch]
        m = len(batch)

        # Host bottom forward and interactive fragment.
        a_h = np.tanh(X_h @ p["host_w1"] + p["host_b1"])
        u_h = a_h @ p["host_wi"]
        charge_model_compute(
            runtime.ledger,
            2.0 * (X_h.size * self._density * p["host_w1"].shape[1]
                   / max(m, 1)
                   + a_h.size * self.interactive_dim / max(m, 1)) * m,
            tag="model.nn.host_forward")
        u_h_received = self.secure_transfer(
            runtime, u_h, sender="host", receiver="guest",
            tag="hetero_nn.forward", scale=4.0)

        # Guest forward through interactive + top layers.
        a_g = np.tanh(X_g @ p["guest_w1"] + p["guest_b1"])
        z_i = a_g @ p["guest_wi"] + u_h_received + p["bias_i"]
        act_i = np.tanh(z_i)
        logits = (act_i @ p["top_w"]).ravel() + p["top_b"][0]
        probabilities = sigmoid(logits)
        charge_model_compute(runtime.ledger,
                             6.0 * X_g.size * self._density,
                             tag="model.nn.guest_forward")

        # Backward (manual autodiff of the split graph).
        d_logits = (probabilities - y)[:, None] / m
        grad_top_w = act_i.T @ d_logits + self.l2 * p["top_w"]
        grad_top_b = d_logits.sum(axis=0)
        d_act_i = d_logits @ p["top_w"].T
        d_z_i = d_act_i * (1.0 - act_i ** 2)
        grad_bias_i = d_z_i.sum(axis=0)
        grad_guest_wi = a_g.T @ d_z_i + self.l2 * p["guest_wi"]
        d_a_g = d_z_i @ p["guest_wi"].T
        d_z_g = d_a_g * (1.0 - a_g ** 2)
        grad_guest_w1 = X_g.T @ d_z_g + self.l2 * p["guest_w1"]
        grad_guest_b1 = d_z_g.sum(axis=0)
        charge_model_compute(runtime.ledger,
                             8.0 * X_g.size * self._density,
                             tag="model.nn.guest_backward")

        # Interactive-layer gradient returns to the host encrypted.
        d_u_h = self.secure_transfer(
            runtime, d_z_i, sender="guest", receiver="host",
            tag="hetero_nn.backward", scale=1.0)

        grad_host_wi = a_h.T @ d_u_h + self.l2 * p["host_wi"]
        d_a_h = d_u_h @ p["host_wi"].T
        d_z_h = d_a_h * (1.0 - a_h ** 2)
        grad_host_w1 = X_h.T @ d_z_h + self.l2 * p["host_w1"]
        grad_host_b1 = d_z_h.sum(axis=0)
        charge_model_compute(runtime.ledger,
                             8.0 * X_h.size * self._density,
                             tag="model.nn.host_backward")

        gradients = {
            "guest_w1": grad_guest_w1, "guest_b1": grad_guest_b1,
            "host_w1": grad_host_w1, "host_b1": grad_host_b1,
            "guest_wi": grad_guest_wi, "host_wi": grad_host_wi,
            "bias_i": grad_bias_i,
            "top_w": grad_top_w, "top_b": grad_top_b,
        }
        for name, gradient in gradients.items():
            p[name] = self._optimizers[name].step(p[name], gradient)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def forward(self) -> np.ndarray:
        """Plaintext joint forward pass over the full dataset."""
        return self.predict_scores(self.guest.features, self.host.features)

    def predict_scores(self, guest_features: np.ndarray,
                       host_features: np.ndarray) -> np.ndarray:
        """Joint logits for unseen rows (one block per party)."""
        guest_features = np.asarray(guest_features, dtype=np.float64)
        host_features = np.asarray(host_features, dtype=np.float64)
        if guest_features.shape[0] != host_features.shape[0]:
            raise ValueError("party blocks must align on rows")
        if guest_features.shape[1] != self.guest.num_features or \
                host_features.shape[1] != self.host.num_features:
            raise ValueError("feature blocks do not match the partitions")
        p = self.params
        a_g = np.tanh(guest_features @ p["guest_w1"] + p["guest_b1"])
        a_h = np.tanh(host_features @ p["host_w1"] + p["host_b1"])
        z_i = a_g @ p["guest_wi"] + a_h @ p["host_wi"] + p["bias_i"]
        return (np.tanh(z_i) @ p["top_w"]).ravel() + p["top_b"][0]

    def predict(self, guest_features: np.ndarray,
                host_features: np.ndarray) -> np.ndarray:
        """Binary predictions for unseen rows."""
        return (self.predict_scores(guest_features, host_features) > 0) \
            .astype(np.float64)

    def loss(self) -> float:
        """Training loss of the joint split network."""
        return logistic_loss(self.forward(), self.guest.labels)

    def accuracy(self) -> float:
        """Training accuracy of the joint split network."""
        predictions = (self.forward() > 0).astype(np.float64)
        return float(np.mean(predictions == self.guest.labels))
