"""Homogeneous neural network (beyond the paper's benchmarked four).

The paper claims FLBooster accelerates *all* standard FL models; the four
it benchmarks are Homo LR and three vertical models.  This module adds
the obvious fifth -- a horizontally-federated MLP trained FedAvg-style --
to exercise the platform's generality claim: the entire parameter vector
travels through the same encode -> pack -> encrypt -> aggregate ->
decrypt pipeline as Homo LR, just with far more values per round (which
is exactly the regime where batch compression matters most).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.partition import HorizontalPartition, horizontal_split
from repro.federation.metrics import charge_model_compute
from repro.federation.runtime import FederationRuntime
from repro.models.base import FederatedModel
from repro.models.losses import logistic_loss, sigmoid
from repro.models.optim import AdamOptimizer


class HomoNeuralNetwork(FederatedModel):
    """FedAvg over a one-hidden-layer MLP on horizontal shards.

    Args:
        dataset: The full dataset (split internally).
        num_clients: Participant count.
        hidden_dim: Hidden-layer width.
        batch_size: Local mini-batch size.
        learning_rate: Local Adam step size.
        l2: Weight decay.
        rounds_per_epoch: Secure aggregation rounds per epoch.
        seed: Determinism seed.
    """

    name = "Homo NN"

    def __init__(self, dataset: Dataset, num_clients: int = 4,
                 hidden_dim: int = 16, batch_size: int = 256,
                 learning_rate: float = 0.02, l2: float = 1e-4,
                 rounds_per_epoch: int = 2, seed: int = 0):
        super().__init__(dataset, seed=seed)
        if rounds_per_epoch < 1:
            raise ValueError("need at least one aggregation round per epoch")
        self.num_clients = num_clients
        self.batch_size = batch_size
        self.l2 = l2
        self.rounds_per_epoch = rounds_per_epoch
        self._density = max(dataset.density, 1e-6)
        self.partitions: List[HorizontalPartition] = horizontal_split(
            dataset, num_clients, seed=seed)

        def xavier(rows: int, cols: int) -> np.ndarray:
            bound = np.sqrt(6.0 / (rows + cols))
            return self.rng.uniform(-bound, bound, size=(rows, cols))

        self.params: Dict[str, np.ndarray] = {
            "w1": xavier(dataset.num_features, hidden_dim),
            "b1": np.zeros(hidden_dim),
            "w2": xavier(hidden_dim, 1),
            "b2": np.zeros(1),
        }
        self._optimizers = [
            {name: AdamOptimizer(learning_rate=learning_rate)
             for name in self.params}
            for _ in range(num_clients)
        ]

    # ------------------------------------------------------------------
    # Parameter-vector flattening (the aggregated payload).
    # ------------------------------------------------------------------

    def _flatten(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        return np.concatenate([params[name].ravel()
                               for name in sorted(params)])

    def _unflatten(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        cursor = 0
        for name in sorted(self.params):
            shape = self.params[name].shape
            size = int(np.prod(shape))
            out[name] = flat[cursor:cursor + size].reshape(shape)
            cursor += size
        return out

    @property
    def parameter_count(self) -> int:
        """Values aggregated per round (the BC-relevant payload size)."""
        return sum(value.size for value in self.params.values())

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def run_epoch(self, runtime: FederationRuntime) -> float:
        """Local passes + secure delta averaging, per round."""
        if runtime.num_clients != self.num_clients:
            raise ValueError(
                f"runtime built for {runtime.num_clients} clients, model "
                f"has {self.num_clients}")
        base = self._flatten(self.params)
        for _ in range(self.rounds_per_epoch):
            deltas = []
            for client, partition in enumerate(self.partitions):
                local = self._local_update(client, partition)
                deltas.append(self._flatten(local) - base)
                if client == 0:
                    flops = (6.0 * partition.num_instances
                             * self.dataset.num_features * self._density)
                    charge_model_compute(runtime.ledger, flops,
                                         tag="model.homo_nn.local")
            mean_delta = runtime.aggregator.average(
                deltas, tag="homo_nn.delta")
            base = base + mean_delta
            self.params = self._unflatten(base)
        return self.loss()

    def _local_update(self, client: int,
                      partition: HorizontalPartition) -> Dict[str, np.ndarray]:
        params = {name: value.copy() for name, value in self.params.items()}
        optimizers = self._optimizers[client]
        order = self.rng.permutation(partition.num_instances)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            X = partition.features[batch]
            y = partition.labels[batch]
            gradients = self._gradients(params, X, y)
            for name, gradient in gradients.items():
                params[name] = optimizers[name].step(params[name], gradient)
        return params

    def _gradients(self, params: Dict[str, np.ndarray], X: np.ndarray,
                   y: np.ndarray) -> Dict[str, np.ndarray]:
        m = len(y)
        hidden = np.tanh(X @ params["w1"] + params["b1"])
        logits = (hidden @ params["w2"]).ravel() + params["b2"][0]
        d_logits = (sigmoid(logits) - y)[:, None] / m
        grad_w2 = hidden.T @ d_logits + self.l2 * params["w2"]
        grad_b2 = d_logits.sum(axis=0)
        d_hidden = (d_logits @ params["w2"].T) * (1.0 - hidden ** 2)
        grad_w1 = X.T @ d_hidden + self.l2 * params["w1"]
        grad_b1 = d_hidden.sum(axis=0)
        return {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Logits for (possibly unseen) rows."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.dataset.num_features:
            raise ValueError("feature width does not match the model")
        hidden = np.tanh(features @ self.params["w1"] + self.params["b1"])
        return (hidden @ self.params["w2"]).ravel() + self.params["b2"][0]

    def loss(self) -> float:
        """Global training loss."""
        return logistic_loss(self.predict_scores(self.dataset.features),
                             self.dataset.labels)

    def accuracy(self) -> float:
        """Global training accuracy."""
        scores = self.predict_scores(self.dataset.features)
        return float(np.mean((scores > 0) == self.dataset.labels))
