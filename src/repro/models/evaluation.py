"""Evaluation metrics and model persistence.

Metrics beyond the paper's training loss (AUC, accuracy, log-loss at a
threshold sweep) plus JSON-round-trippable state for the four models, so
trained federated models can be shipped to serving.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np


def binary_accuracy(scores: np.ndarray, labels: np.ndarray,
                    threshold: float = 0.0) -> float:
    """Fraction of correct sign predictions at a score threshold."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must share a shape")
    return float(np.mean((scores > threshold) == labels))


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    AUC = (mean rank of positives - (P + 1) / 2) / N, the Mann-Whitney
    identity; ties get average ranks.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must share a shape")
    positives = int(labels.sum())
    negatives = len(labels) - positives
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    # Average ranks over ties.
    index = 0
    position = 1.0
    while index < len(sorted_scores):
        tie_end = index
        while tie_end + 1 < len(sorted_scores) and \
                sorted_scores[tie_end + 1] == sorted_scores[index]:
            tie_end += 1
        average_rank = (position + position + (tie_end - index)) / 2.0
        ranks[order[index:tie_end + 1]] = average_rank
        position += tie_end - index + 1
        index = tie_end + 1
    positive_rank_sum = float(ranks[labels == 1.0].sum())
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


# ----------------------------------------------------------------------
# Persistence.
# ----------------------------------------------------------------------

def _encode(value):
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    return value


def _decode(value):
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=value["dtype"])
    return value


def save_model_state(model, path: Union[str, Path]) -> None:
    """Persist a trained model's learnable state as JSON.

    Supports the four benchmark models; tree ensembles (SBT) persist
    their score vector and metadata (trees route through bin indices that
    depend on the training data, so serving uses the score snapshot).
    """
    state: Dict[str, object] = {"model": model.name}
    if model.name == "Homo LR":
        state["weights"] = _encode(model.weights)
    elif model.name == "Hetero LR":
        state["guest_weights"] = _encode(model.guest_weights)
        state["host_weights"] = [_encode(w) for w in model.host_weights]
    elif model.name == "Hetero NN":
        state["params"] = {name: _encode(value)
                           for name, value in model.params.items()}
    elif model.name == "Hetero SBT":
        state["scores"] = _encode(model.scores)
        state["num_trees"] = len(model.trees)
        state["learning_rate"] = model.learning_rate
    else:
        raise ValueError(f"unknown model {model.name!r}")
    Path(path).write_text(json.dumps(state))


def load_model_state(model, path: Union[str, Path]) -> None:
    """Restore state saved by :func:`save_model_state` (in place)."""
    state = json.loads(Path(path).read_text())
    if state.get("model") != model.name:
        raise ValueError(
            f"state is for {state.get('model')!r}, not {model.name!r}")
    if model.name == "Homo LR":
        model.weights = _decode(state["weights"])
    elif model.name == "Hetero LR":
        model.guest_weights = _decode(state["guest_weights"])
        model.host_weights = [_decode(w) for w in state["host_weights"]]
    elif model.name == "Hetero NN":
        model.params = {name: _decode(value)
                        for name, value in state["params"].items()}
    elif model.name == "Hetero SBT":
        model.scores = _decode(state["scores"])
