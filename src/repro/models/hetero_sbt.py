"""Heterogeneous SecureBoost (paper's Hetero SBT [17]).

Vertical gradient boosting: the guest holds the labels and some features,
the host holds the remaining features.  One training epoch builds one
boosting tree:

1. the guest computes first/second-order gradients ``(g, h)`` from the
   current scores and ships them through the encrypted pipeline to the
   host (the SecureBoost gradient broadcast);
2. level by level, the host builds per-feature, per-bin ``(G, H)``
   histograms over its candidate splits and ships the histogram tensor
   back through the encrypted pipeline (SecureBoost's aggregated split
   statistics; cipher compression applies here in SecureBoost+ [16]);
3. the guest evaluates the XGBoost split gain for every candidate (its
   own features in plaintext, the host's from the received histograms),
   picks the winner, and instructs the host with a tiny plaintext message
   which instances go left;
4. leaves get the Newton weight ``-G / (H + lambda)``, and scores update
   with shrinkage.

Gradients, histograms, split decisions and leaf weights are all real, so
quantization error shifts split choices exactly the way the paper's
convergence-bias experiment probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.partition import vertical_split
from repro.federation.channel import Message
from repro.federation.metrics import charge_model_compute
from repro.federation.runtime import FederationRuntime
from repro.models.base import FederatedModel
from repro.models.losses import gbdt_gradients, logistic_loss


@dataclass
class _TreeNode:
    """One node of a (vertical) boosting tree."""

    instances: np.ndarray
    depth: int
    party: Optional[str] = None          # "guest" or "host" once split
    feature: int = -1                    # feature index within the party
    threshold_bin: int = -1
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class _Tree:
    """A fitted boosting tree plus the bin edges needed for routing."""

    root: _TreeNode
    guest_edges: List[np.ndarray] = field(default_factory=list)
    host_edges: List[np.ndarray] = field(default_factory=list)


class HeteroSecureBoost(FederatedModel):
    """Vertical secure gradient boosting (one tree per epoch).

    Args:
        dataset: The full dataset (vertically split internally).
        max_depth: Tree depth (levels of splits).
        num_bins: Histogram bins per feature.
        learning_rate: Shrinkage applied to leaf weights.
        reg_lambda: L2 regularization on leaf weights.
        min_child_instances: Minimum instances to keep splitting.
        seed: Determinism seed.
    """

    name = "Hetero SBT"

    def __init__(self, dataset: Dataset, max_depth: int = 3,
                 num_bins: int = 8, learning_rate: float = 0.3,
                 reg_lambda: float = 1.0, min_child_instances: int = 8,
                 seed: int = 0):
        super().__init__(dataset, seed=seed)
        self.max_depth = max_depth
        self.num_bins = num_bins
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_instances = min_child_instances
        guest, host = vertical_split(dataset, num_parties=2, seed=seed)
        self.guest = guest
        self.host = host
        self._density = max(dataset.density, 1e-6)
        self.scores = np.zeros(dataset.num_instances)
        self.trees: List[_Tree] = []
        self._guest_bins, self._guest_edges = self._bin_features(
            guest.features)
        self._host_bins, self._host_edges = self._bin_features(host.features)

    # ------------------------------------------------------------------
    # Epoch = one boosting round.
    # ------------------------------------------------------------------

    def run_epoch(self, runtime: FederationRuntime) -> float:
        """Build one tree from securely exchanged gradients."""
        g, h = gbdt_gradients(self.scores, self.guest.labels)
        charge_model_compute(runtime.ledger, 6.0 * len(g),
                             tag="model.sbt.gradients")

        # (1) Gradient broadcast guest -> host through the HE pipeline.
        transferred = self.secure_transfer(
            runtime, np.concatenate([g, h]), sender="guest",
            receiver="host", tag="sbt.gradients")
        host_g = transferred[:len(g)]
        host_h = transferred[len(g):]

        root = _TreeNode(instances=np.arange(self.dataset.num_instances),
                         depth=0)
        level = [root]
        for _ in range(self.max_depth):
            next_level: List[_TreeNode] = []
            splittable = [node for node in level
                          if len(node.instances) >= 2 * self.min_child_instances]
            if not splittable:
                break
            # (2) Host histograms for this whole level, one transfer.
            host_histograms = self._host_level_histograms(
                runtime, splittable, host_g, host_h)
            for node_index, node in enumerate(splittable):
                children = self._split_node(
                    runtime, node, g, h, host_histograms[node_index])
                next_level.extend(children)
            level = next_level
            if not level:
                break

        self._finalize_leaves(root, g, h)
        tree = _Tree(root=root, guest_edges=self._guest_edges,
                     host_edges=self._host_edges)
        self.trees.append(tree)
        self.scores = self.scores + self.learning_rate * \
            self._predict_tree(tree)
        return self.loss()

    # ------------------------------------------------------------------
    # Histogram machinery.
    # ------------------------------------------------------------------

    def _bin_features(self, features: np.ndarray):
        """Quantile binning; returns (bin indices, edges per feature)."""
        bins = np.zeros_like(features, dtype=np.int32)
        edges: List[np.ndarray] = []
        quantiles = np.linspace(0, 1, self.num_bins + 1)[1:-1]
        for column in range(features.shape[1]):
            cuts = np.unique(np.quantile(features[:, column], quantiles))
            edges.append(cuts)
            bins[:, column] = np.searchsorted(cuts, features[:, column],
                                              side="right")
        return bins, edges

    def _histograms(self, bins: np.ndarray, instances: np.ndarray,
                    g: np.ndarray, h: np.ndarray) -> np.ndarray:
        """(features, bins, 2) tensor of G/H sums over ``instances``."""
        node_bins = bins[instances]
        num_features = bins.shape[1]
        out = np.zeros((num_features, self.num_bins, 2))
        g_node = g[instances]
        h_node = h[instances]
        for feature in range(num_features):
            idx = node_bins[:, feature]
            out[feature, :, 0] = np.bincount(
                idx, weights=g_node, minlength=self.num_bins)[:self.num_bins]
            out[feature, :, 1] = np.bincount(
                idx, weights=h_node, minlength=self.num_bins)[:self.num_bins]
        return out

    def _host_level_histograms(self, runtime: FederationRuntime,
                               nodes: List[_TreeNode], host_g: np.ndarray,
                               host_h: np.ndarray) -> List[np.ndarray]:
        """Host builds and securely returns histograms for a tree level."""
        tensors = []
        total_values = 0
        for node in nodes:
            tensor = self._histograms(self._host_bins, node.instances,
                                      host_g, host_h)
            tensors.append(tensor)
            total_values += tensor.size
        charge_model_compute(
            runtime.ledger,
            2.0 * sum(len(n.instances) for n in nodes)
            * self._host_bins.shape[1] * self._density,
            tag="model.sbt.host_histograms")
        flat = np.concatenate([t.ravel() for t in tensors])
        # Histogram sums scale with the node size; normalize into the
        # quantization range and restore at the guest.
        scale = max(float(np.max(np.abs(flat))), 1.0)
        received = self.secure_transfer(
            runtime, flat, sender="host", receiver="guest",
            tag="sbt.histograms", scale=scale)
        out: List[np.ndarray] = []
        cursor = 0
        for tensor in tensors:
            out.append(received[cursor:cursor + tensor.size]
                       .reshape(tensor.shape))
            cursor += tensor.size
        return out

    # ------------------------------------------------------------------
    # Split search.
    # ------------------------------------------------------------------

    def _gain(self, g_left: float, h_left: float, g_total: float,
              h_total: float) -> float:
        """XGBoost split gain (up to the constant gamma)."""
        g_right = g_total - g_left
        h_right = h_total - h_left
        lam = self.reg_lambda

        def score(g_sum: float, h_sum: float) -> float:
            return g_sum * g_sum / (h_sum + lam)

        return 0.5 * (score(g_left, h_left) + score(g_right, h_right)
                      - score(g_total, h_total))

    def _best_split(self, histogram: np.ndarray):
        """Best (feature, bin, gain) over one party's histogram tensor."""
        g_totals = histogram[:, :, 0].sum(axis=1)
        h_totals = histogram[:, :, 1].sum(axis=1)
        best = (-np.inf, -1, -1)
        for feature in range(histogram.shape[0]):
            g_cum = np.cumsum(histogram[feature, :-1, 0])
            h_cum = np.cumsum(histogram[feature, :-1, 1])
            for bin_index in range(len(g_cum)):
                gain = self._gain(float(g_cum[bin_index]),
                                  float(h_cum[bin_index]),
                                  float(g_totals[feature]),
                                  float(h_totals[feature]))
                if gain > best[0]:
                    best = (gain, feature, bin_index)
        return best

    def _split_node(self, runtime: FederationRuntime, node: _TreeNode,
                    g: np.ndarray, h: np.ndarray,
                    host_histogram: np.ndarray) -> List[_TreeNode]:
        """Choose guest-vs-host split for one node; returns children."""
        guest_histogram = self._histograms(self._guest_bins, node.instances,
                                           g, h)
        charge_model_compute(
            runtime.ledger,
            2.0 * len(node.instances) * self._guest_bins.shape[1]
            * self._density,
            tag="model.sbt.guest_histograms")
        guest_gain, guest_feature, guest_bin = self._best_split(
            guest_histogram)
        host_gain, host_feature, host_bin = self._best_split(host_histogram)

        if max(guest_gain, host_gain) <= 1e-12:
            return []
        if guest_gain >= host_gain:
            node.party = "guest"
            node.feature = guest_feature
            node.threshold_bin = guest_bin
            go_left = self._guest_bins[node.instances, guest_feature] \
                <= guest_bin
        else:
            node.party = "host"
            node.feature = host_feature
            node.threshold_bin = host_bin
            # The guest tells the host which (feature, bin) won; the host
            # answers with the membership bitmap: a tiny plaintext
            # exchange (SecureBoost's split-info message).
            runtime.channel.send(Message(
                sender="guest", receiver="host", tag="sbt.split_info",
                payload=(host_feature, host_bin),
                plaintext_bytes=16 + len(node.instances) // 8))
            go_left = self._host_bins[node.instances, host_feature] \
                <= host_bin

        left_idx = node.instances[go_left]
        right_idx = node.instances[~go_left]
        if len(left_idx) < self.min_child_instances or \
                len(right_idx) < self.min_child_instances:
            node.party = None
            node.feature = -1
            node.threshold_bin = -1
            return []
        node.left = _TreeNode(instances=left_idx, depth=node.depth + 1)
        node.right = _TreeNode(instances=right_idx, depth=node.depth + 1)
        return [node.left, node.right]

    # ------------------------------------------------------------------
    # Leaves, prediction, loss.
    # ------------------------------------------------------------------

    def _finalize_leaves(self, root: _TreeNode, g: np.ndarray,
                         h: np.ndarray) -> None:
        """Assign Newton weights ``-G / (H + lambda)`` to every leaf."""
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                g_sum = float(g[node.instances].sum())
                h_sum = float(h[node.instances].sum())
                node.weight = -g_sum / (h_sum + self.reg_lambda)
            else:
                stack.extend([node.left, node.right])

    def _predict_tree(self, tree: _Tree) -> np.ndarray:
        """Route every instance to its leaf weight."""
        predictions = np.zeros(self.dataset.num_instances)
        stack = [(tree.root, np.arange(self.dataset.num_instances))]
        while stack:
            node, instances = stack.pop()
            if node.is_leaf:
                predictions[instances] = node.weight
                continue
            bins = (self._guest_bins if node.party == "guest"
                    else self._host_bins)
            go_left = bins[instances, node.feature] <= node.threshold_bin
            stack.append((node.left, instances[go_left]))
            stack.append((node.right, instances[~go_left]))
        return predictions

    def loss(self) -> float:
        """Training loss of the current ensemble."""
        return logistic_loss(self.scores, self.guest.labels)

    def accuracy(self) -> float:
        """Training accuracy of the current ensemble."""
        predictions = (self.scores > 0).astype(np.float64)
        return float(np.mean(predictions == self.guest.labels))

    # ------------------------------------------------------------------
    # Inference on unseen data.
    # ------------------------------------------------------------------

    def predict_scores(self, guest_features: np.ndarray,
                       host_features: np.ndarray) -> np.ndarray:
        """Ensemble scores for unseen instances.

        Args:
            guest_features: New rows over the guest's feature block
                (columns in the guest partition's order).
            host_features: Matching rows over the host's block.
        """
        guest_features = np.asarray(guest_features, dtype=np.float64)
        host_features = np.asarray(host_features, dtype=np.float64)
        if guest_features.shape[0] != host_features.shape[0]:
            raise ValueError("guest and host rows must align")
        if guest_features.shape[1] != self.guest.num_features or \
                host_features.shape[1] != self.host.num_features:
            raise ValueError("feature blocks do not match the partitions")
        count = guest_features.shape[0]
        scores = np.zeros(count)
        for tree in self.trees:
            scores += self.learning_rate * self._route(
                tree, guest_features, host_features)
        return scores

    def _route(self, tree: _Tree, guest_features: np.ndarray,
               host_features: np.ndarray) -> np.ndarray:
        """Route unseen rows through one tree's threshold splits."""
        count = guest_features.shape[0]
        out = np.zeros(count)
        stack = [(tree.root, np.arange(count))]
        while stack:
            node, rows = stack.pop()
            if not len(rows):
                continue
            if node.is_leaf:
                out[rows] = node.weight
                continue
            if node.party == "guest":
                edges = tree.guest_edges[node.feature]
                values = guest_features[rows, node.feature]
            else:
                edges = tree.host_edges[node.feature]
                values = host_features[rows, node.feature]
            if node.threshold_bin < len(edges):
                go_left = values <= edges[node.threshold_bin]
            else:
                # Degenerate feature: every bin is <= the threshold.
                go_left = np.ones(len(rows), dtype=bool)
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out

    def predict(self, guest_features: np.ndarray,
                host_features: np.ndarray) -> np.ndarray:
        """Binary predictions for unseen instances."""
        return (self.predict_scores(guest_features, host_features) > 0) \
            .astype(np.float64)
