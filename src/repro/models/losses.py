"""Loss functions and gradients shared by the FL models.

Binary logistic regression throughout, with the Taylor-linearized residual
``d = 0.25 z - 0.5 (2y - 1)`` the vertical protocols use (Hardy et al.
[28]): the quadratic Taylor expansion of the logistic loss around 0 makes
the residual *linear* in the forward sum, which is what lets vertical
parties combine encrypted forward fragments additively.
"""

from __future__ import annotations

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def logistic_loss(z: np.ndarray, y: np.ndarray,
                  weights: np.ndarray | None = None,
                  l2: float = 0.0) -> float:
    """Mean binary cross-entropy of logits ``z`` against labels ``y``.

    Args:
        z: Logits, shape (m,).
        y: Labels in {0, 1}, shape (m,).
        weights: Model weights for the L2 term (optional).
        l2: L2 penalty coefficient (the paper uses 0.01).
    """
    # log(1 + exp(-s)) computed stably via logaddexp.
    signs = 2.0 * y - 1.0
    loss = float(np.mean(np.logaddexp(0.0, -signs * z)))
    if weights is not None and l2 > 0.0:
        loss += 0.5 * l2 * float(np.dot(weights, weights))
    return loss


def logistic_gradient(X: np.ndarray, z: np.ndarray, y: np.ndarray,
                      weights: np.ndarray | None = None,
                      l2: float = 0.0) -> np.ndarray:
    """Exact mean gradient of the logistic loss w.r.t. the weights."""
    residual = sigmoid(z) - y
    gradient = X.T @ residual / len(y)
    if weights is not None and l2 > 0.0:
        gradient = gradient + l2 * weights
    return gradient


def taylor_residual(z: np.ndarray, y: np.ndarray) -> np.ndarray:
    """The linearized residual ``d = 0.25 z - 0.5 (2y - 1)``.

    This is the ``fore_gradient`` of FATE's Hetero LR: the gradient of the
    second-order Taylor approximation of the logistic loss, linear in the
    forward sum ``z`` so encrypted forward fragments combine additively.
    """
    return 0.25 * z - 0.5 * (2.0 * y - 1.0)


def taylor_gradient(X: np.ndarray, d: np.ndarray,
                    weights: np.ndarray | None = None,
                    l2: float = 0.0) -> np.ndarray:
    """Gradient from a (possibly received) Taylor residual ``d``."""
    gradient = X.T @ d / len(d)
    if weights is not None and l2 > 0.0:
        gradient = gradient + l2 * weights
    return gradient


def gbdt_gradients(z: np.ndarray, y: np.ndarray) -> tuple:
    """First and second order gradients for logistic GBDT (SecureBoost).

    Returns ``(g, h)`` with ``g = sigmoid(z) - y`` and
    ``h = sigmoid(z) (1 - sigmoid(z))``.
    """
    probabilities = sigmoid(z)
    g = probabilities - y
    h = probabilities * (1.0 - probabilities)
    return g, h
