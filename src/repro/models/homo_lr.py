"""Homogeneous logistic regression (paper's Homo LR [28]).

Horizontal federation: every client holds the full feature space over its
own instances.  Each epoch the clients run local mini-batch updates and
the resulting *model deltas* are securely averaged through the
encode -> pack -> encrypt -> aggregate -> decrypt pipeline (paper Fig. 2),
several aggregation rounds per epoch.

The quantized global model the clients decode is what they continue from,
so quantization error feeds back into training exactly as in the real
system (measured by the convergence-bias experiment, Table VII).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.partition import HorizontalPartition, horizontal_split
from repro.federation.metrics import charge_model_compute
from repro.federation.runtime import FederationRuntime
from repro.models.base import FederatedModel
from repro.models.losses import logistic_gradient, logistic_loss
from repro.models.optim import AdamOptimizer, Optimizer


class HomoLogisticRegression(FederatedModel):
    """FedAvg-style logistic regression over horizontal shards.

    Args:
        dataset: The full dataset (split internally).
        num_clients: Participant count.
        batch_size: Local mini-batch size (paper default 1024).
        learning_rate: Local optimizer step size.
        l2: L2 penalty (paper default 0.01).
        rounds_per_epoch: Secure aggregation rounds per epoch.
        seed: Determinism seed.
    """

    name = "Homo LR"

    def __init__(self, dataset: Dataset, num_clients: int = 4,
                 batch_size: int = 256, learning_rate: float = 0.1,
                 l2: float = 0.01, rounds_per_epoch: int = 2, seed: int = 0):
        super().__init__(dataset, seed=seed)
        if rounds_per_epoch < 1:
            raise ValueError("need at least one aggregation round per epoch")
        self.num_clients = num_clients
        self.batch_size = batch_size
        self.l2 = l2
        self.rounds_per_epoch = rounds_per_epoch
        self.partitions: List[HorizontalPartition] = horizontal_split(
            dataset, num_clients, seed=seed)
        self.weights = np.zeros(dataset.num_features)
        self._optimizers: List[Optimizer] = [
            AdamOptimizer(learning_rate=learning_rate)
            for _ in range(num_clients)
        ]

    def run_epoch(self, runtime: FederationRuntime) -> float:
        """One epoch: local updates + secure delta averaging per round."""
        if runtime.num_clients != self.num_clients:
            raise ValueError(
                f"runtime built for {runtime.num_clients} clients, model "
                f"has {self.num_clients}")
        for round_index in range(self.rounds_per_epoch):
            deltas = []
            for client, partition in enumerate(self.partitions):
                local = self._local_update(client, partition, round_index)
                deltas.append(local - self.weights)
                if client == 0:
                    # Sparse-aware: gradient passes touch nnz cells only.
                    flops = (4.0 * partition.num_instances
                             * self.dataset.num_features
                             * max(self.dataset.density, 1e-6))
                    charge_model_compute(runtime.ledger, flops,
                                         tag="model.homo_lr.local")
            mean_delta = runtime.aggregator.average(
                deltas, tag="homo_lr.delta")
            self.weights = self.weights + mean_delta
        return self.loss()

    def _local_update(self, client: int, partition: HorizontalPartition,
                      round_index: int) -> np.ndarray:
        """Run one local pass of mini-batch steps from the global model."""
        weights = self.weights.copy()
        order = self.rng.permutation(partition.num_instances)
        optimizer = self._optimizers[client]
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            X = partition.features[batch]
            y = partition.labels[batch]
            gradient = logistic_gradient(X, X @ weights, y,
                                         weights=weights, l2=self.l2)
            weights = optimizer.step(weights, gradient)
        return weights

    def loss(self) -> float:
        """Global training loss of the current model."""
        z = self.dataset.features @ self.weights
        return logistic_loss(z, self.dataset.labels,
                             weights=self.weights, l2=self.l2)

    def accuracy(self) -> float:
        """Global training accuracy of the current model."""
        z = self.dataset.features @ self.weights
        predictions = (z > 0).astype(np.float64)
        return float(np.mean(predictions == self.dataset.labels))
