"""Heterogeneous (vertical) logistic regression (paper's Hetero LR [11]).

Two parties share the sample space and split the features: the *guest*
holds the labels, the *host* holds only features.  Training uses the
Taylor-linearized protocol of Hardy et al.:

1. the host computes its forward fragment ``u_h = X_h w_h`` and sends
   ``0.25 u_h`` through the encrypted pipeline to the guest;
2. the guest forms the linearized residual
   ``d = 0.25 (u_g + u_h) - 0.5 (2y - 1)`` and sends it back through the
   encrypted pipeline;
3. each party computes its local gradient ``X^T d / m`` and updates.

Both cross-party tensors (forward fragments, residuals) travel encrypted
and quantized, so batch compression and GPU HE accelerate exactly these
legs.  DESIGN.md records the protocol simplification relative to FATE
(the host receives the decrypted residual instead of computing its
gradient in the ciphertext domain; operation and transfer counts per
batch are identical, per-element ciphertext scalar products are not
modelled).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.partition import vertical_split
from repro.federation.metrics import charge_model_compute
from repro.federation.runtime import FederationRuntime
from repro.models.base import FederatedModel
from repro.models.losses import logistic_loss, taylor_gradient
from repro.models.optim import AdamOptimizer


class HeteroLogisticRegression(FederatedModel):
    """Vertical logistic regression between a guest and >= 1 hosts.

    Args:
        dataset: The full dataset (vertically split internally).
        batch_size: Mini-batch size (paper default 1024).
        learning_rate: Optimizer step size.
        l2: L2 penalty (paper default 0.01).
        num_hosts: Feature-holding parties besides the guest (FATE's
            multi-host vertical setting).
        seed: Determinism seed.
    """

    name = "Hetero LR"

    def __init__(self, dataset: Dataset, batch_size: int = 256,
                 learning_rate: float = 0.15, l2: float = 0.01,
                 num_hosts: int = 1, seed: int = 0):
        super().__init__(dataset, seed=seed)
        if num_hosts < 1:
            raise ValueError("need at least one host")
        self.batch_size = batch_size
        self.l2 = l2
        self._density = max(dataset.density, 1e-6)
        parties = vertical_split(dataset, num_parties=1 + num_hosts,
                                 seed=seed)
        self.guest = parties[0]
        self.hosts = parties[1:]
        self.guest_weights = np.zeros(self.guest.num_features)
        self.host_weights = [np.zeros(host.num_features)
                             for host in self.hosts]
        self._guest_optimizer = AdamOptimizer(learning_rate=learning_rate)
        self._host_optimizers = [AdamOptimizer(learning_rate=learning_rate)
                                 for _ in self.hosts]

    @property
    def host(self):
        """The first host's partition (two-party convenience)."""
        return self.hosts[0]

    def run_epoch(self, runtime: FederationRuntime) -> float:
        """One epoch of mini-batch vertical updates."""
        order = self.rng.permutation(self.dataset.num_instances)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            self._run_batch(runtime, batch)
        return self.loss()

    def _run_batch(self, runtime: FederationRuntime,
                   batch: np.ndarray) -> None:
        X_g = self.guest.features[batch]
        y = self.guest.labels[batch]

        # (1) Each host's forward fragment, pre-scaled by the Taylor 0.25
        # so the guest-side combination stays purely additive.
        u_hosts_received = []
        for index, host in enumerate(self.hosts):
            X_h = host.features[batch]
            u_host = X_h @ self.host_weights[index]
            charge_model_compute(
                runtime.ledger, 2.0 * X_h.size * self._density,
                tag="model.hetero_lr.host_fwd")
            u_hosts_received.append(self.secure_transfer(
                runtime, 0.25 * u_host, sender=f"host-{index}",
                receiver="guest", tag="hetero_lr.forward"))

        # (2) Guest residual (Taylor-linearized fore-gradient).
        u_guest = X_g @ self.guest_weights
        charge_model_compute(
            runtime.ledger, 2.0 * X_g.size * self._density,
            tag="model.hetero_lr.guest_fwd")
        residual = (np.sum(u_hosts_received, axis=0)
                    + 0.25 * u_guest - 0.5 * (2.0 * y - 1.0))

        # (3) The residual returns to every host; gradients are local.
        guest_gradient = taylor_gradient(X_g, residual,
                                         weights=self.guest_weights,
                                         l2=self.l2)
        self.guest_weights = self._guest_optimizer.step(
            self.guest_weights, guest_gradient)
        for index, host in enumerate(self.hosts):
            residual_received = self.secure_transfer(
                runtime, residual, sender="guest",
                receiver=f"host-{index}", tag="hetero_lr.residual")
            X_h = host.features[batch]
            host_gradient = taylor_gradient(X_h, residual_received,
                                            weights=self.host_weights[index],
                                            l2=self.l2)
            charge_model_compute(
                runtime.ledger, 2.0 * X_h.size * self._density,
                tag="model.hetero_lr.gradients")
            self.host_weights[index] = self._host_optimizers[index].step(
                self.host_weights[index], host_gradient)
        charge_model_compute(runtime.ledger,
                             2.0 * X_g.size * self._density,
                             tag="model.hetero_lr.gradients")

    def forward(self) -> np.ndarray:
        """Joint logits over the full dataset (evaluation only)."""
        logits = self.guest.features @ self.guest_weights
        for host, weights in zip(self.hosts, self.host_weights):
            logits = logits + host.features @ weights
        return logits

    def predict_scores(self, guest_features: np.ndarray,
                       *host_features: np.ndarray) -> np.ndarray:
        """Joint logits for unseen rows (one block per party)."""
        guest_features = np.asarray(guest_features, dtype=np.float64)
        if len(host_features) != len(self.hosts):
            raise ValueError(
                f"expected {len(self.hosts)} host blocks, "
                f"got {len(host_features)}")
        if guest_features.shape[1] != self.guest.num_features:
            raise ValueError("guest block does not match the partition")
        logits = guest_features @ self.guest_weights
        for block, host, weights in zip(host_features, self.hosts,
                                        self.host_weights):
            block = np.asarray(block, dtype=np.float64)
            if block.shape[0] != guest_features.shape[0]:
                raise ValueError("party blocks must align on rows")
            if block.shape[1] != host.num_features:
                raise ValueError("host block does not match the partition")
            logits = logits + block @ weights
        return logits

    def predict(self, guest_features: np.ndarray,
                *host_features: np.ndarray) -> np.ndarray:
        """Binary predictions for unseen rows."""
        return (self.predict_scores(guest_features, *host_features) > 0) \
            .astype(np.float64)

    def loss(self) -> float:
        """Global training loss of the joint model."""
        joint_weights = np.concatenate([self.guest_weights,
                                        *self.host_weights])
        return logistic_loss(self.forward(), self.guest.labels,
                             weights=joint_weights, l2=self.l2)

    def accuracy(self) -> float:
        """Global training accuracy of the joint model."""
        predictions = (self.forward() > 0).astype(np.float64)
        return float(np.mean(predictions == self.guest.labels))
