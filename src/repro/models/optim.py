"""Optimizers for plaintext model updates (paper Sec. III-A, Eq. 1).

After the secure pipeline delivers decrypted aggregated gradients, the
local update ``W_{t+1} = W_t - alpha_t * grad`` runs in plaintext.  The
paper trains with Adam [33]; plain SGD is provided for the Eq. 1 baseline
and for tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Optimizer(ABC):
    """Stateful first-order optimizer over a flat parameter array."""

    @abstractmethod
    def step(self, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated weights; must not mutate the inputs."""


class SgdOptimizer(Optimizer):
    """Plain SGD (Eq. 1), optionally with momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def step(self, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One SGD step."""
        if self.momentum == 0.0:
            return weights - self.learning_rate * gradient
        if self._velocity is None:
            self._velocity = np.zeros_like(weights)
        self._velocity = self.momentum * self._velocity - \
            self.learning_rate * gradient
        return weights + self._velocity


class AdamOptimizer(Optimizer):
    """Adam [33] with the paper's default hyperparameters."""

    def __init__(self, learning_rate: float = 0.1, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One Adam step with bias correction."""
        if self._m is None:
            self._m = np.zeros_like(weights)
            self._v = np.zeros_like(weights)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1 - self.beta2) * gradient ** 2
        m_hat = self._m / (1 - self.beta1 ** self._t)
        v_hat = self._v / (1 - self.beta2 ** self._t)
        return weights - self.learning_rate * m_hat / \
            (np.sqrt(v_hat) + self.epsilon)
