"""Common machinery for the four benchmark FL models.

Every model implements :meth:`FederatedModel.run_epoch` against a
:class:`~repro.federation.runtime.FederationRuntime`; the shared pieces
here are the secure point-to-point transfer (the vertical protocols'
workhorse), the convergence-driven training loop of Sec. VI-B ("if the
loss difference between two successive epochs is less than 1e-6, the model
reaches convergence"), and the loss/time trace the convergence figures
read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.generators import Dataset
from repro.federation.metrics import EpochReport
from repro.federation.runtime import FederationRuntime
from repro.rng import np_rng

#: The paper's convergence tolerance.
CONVERGENCE_TOLERANCE = 1e-6


@dataclass
class TrainingTrace:
    """Loss-versus-modelled-time trace of one training run (Fig. 8)."""

    system: str
    model: str
    dataset: str
    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    reports: List[EpochReport] = field(default_factory=list)

    @property
    def cumulative_seconds(self) -> List[float]:
        """Modelled wall-clock at the end of each epoch."""
        out: List[float] = []
        total = 0.0
        for seconds in self.epoch_seconds:
            total += seconds
            out.append(total)
        return out

    @property
    def final_loss(self) -> float:
        """Loss after the last epoch."""
        return self.losses[-1] if self.losses else float("nan")

    def converged_at(self, tolerance: float = CONVERGENCE_TOLERANCE) -> Optional[int]:
        """First epoch index where successive losses differ < tolerance."""
        for index in range(1, len(self.losses)):
            if abs(self.losses[index] - self.losses[index - 1]) < tolerance:
                return index
        return None


class FederatedModel(ABC):
    """A federated model bound to a dataset, trained through a runtime.

    Subclasses hold all party state (weights, partitions) and implement
    one epoch of the federated protocol, charging every HE operation and
    transfer to the runtime's ledger.
    """

    name: str = "abstract"

    def __init__(self, dataset: Dataset, seed: int = 0):
        self.dataset = dataset
        self.seed = seed
        self.rng = np_rng(seed)

    @abstractmethod
    def run_epoch(self, runtime: FederationRuntime) -> float:
        """Run one training epoch; returns the training loss after it."""

    @abstractmethod
    def loss(self) -> float:
        """Current global training loss."""

    # ------------------------------------------------------------------
    # Checkpointable state (fault-tolerant training).
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the aggregated model state as name -> float array.

        Covers the two shapes the horizontal models use -- a flat
        ``weights`` vector (Homo LR) or a ``params`` dict of arrays
        (Homo NN).  Models with other state override this pair.
        Optimizer slots and local shards are deliberately *not*
        checkpointed: they are re-derived on resume, matching a real
        deployment where a restarted client warm-starts from the global
        model.
        """
        if hasattr(self, "weights"):
            return {"weights": np.asarray(self.weights, dtype=np.float64)}
        if hasattr(self, "params"):
            return {name: np.asarray(value, dtype=np.float64)
                    for name, value in self.params.items()}
        raise NotImplementedError(
            f"{type(self).__name__} does not expose checkpointable state")

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if hasattr(self, "weights"):
            self.weights = np.asarray(state["weights"], dtype=np.float64)
            return
        if hasattr(self, "params"):
            self.params = {name: np.asarray(value, dtype=np.float64)
                           for name, value in state.items()}
            return
        raise NotImplementedError(
            f"{type(self).__name__} does not expose checkpointable state")

    # ------------------------------------------------------------------
    # Shared secure primitives.
    # ------------------------------------------------------------------

    @staticmethod
    def secure_transfer(runtime: FederationRuntime, values: np.ndarray,
                        sender: str, receiver: str, tag: str,
                        scale: float = 1.0) -> np.ndarray:
        """Send a real-valued vector through the encrypted pipeline.

        Encode -> pack -> encrypt at the sender, transfer, decrypt ->
        unpack -> decode at the receiver.  Returns the (quantized) values
        as the receiver sees them, so quantization error propagates into
        training exactly as it would in the real system.

        Args:
            scale: Values are divided by ``scale`` before encoding and
                multiplied back after decoding, so tensors whose range
                exceeds the scheme's ``[-alpha, alpha]`` bound (e.g.
                histogram sums, pre-activations) transfer without
                clipping, at proportionally coarser resolution.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        aggregator = runtime.aggregator
        scaled = np.asarray(values, dtype=np.float64) / scale
        # The tensor remembers the logical shape, so the receiver's
        # decode reshapes without protocol-level bookkeeping.
        tensor = aggregator.encrypt_tensor(scaled, charged=True)
        payload = aggregator.send_tensor(
            tensor, sender=sender, receiver=receiver, tag=tag,
            packed=(runtime.config.packed_serialization
                    and runtime.config.batch_compression))
        return aggregator.decrypt_tensor(payload, charged=True) * scale

    # ------------------------------------------------------------------
    # Training loop.
    # ------------------------------------------------------------------

    def train(self, runtime: FederationRuntime, max_epochs: int,
              tolerance: float = CONVERGENCE_TOLERANCE,
              key_bits: Optional[int] = None) -> TrainingTrace:
        """Train until convergence or ``max_epochs`` (paper Sec. VI-B).

        Each epoch gets a fresh ledger; the trace records per-epoch loss,
        modelled seconds, and full reports.
        """
        trace = TrainingTrace(system=runtime.config.name, model=self.name,
                              dataset=self.dataset.name)
        previous_loss: Optional[float] = None
        for _ in range(max_epochs):
            ledger = runtime.begin_epoch()
            loss = self.run_epoch(runtime)
            trace.losses.append(loss)
            trace.epoch_seconds.append(ledger.total_seconds)
            trace.reports.append(EpochReport.from_ledger(
                ledger, system=runtime.config.name, model=self.name,
                dataset=self.dataset.name,
                key_bits=key_bits if key_bits is not None else runtime.key_bits,
                loss=loss))
            if previous_loss is not None and \
                    abs(previous_loss - loss) < tolerance:
                break
            previous_loss = loss
        return trace
