"""Measurement harness for the paper's evaluation (Sec. VI).

The paper's testbed runs hours-long epochs on four servers; this harness
runs the same protocols on scaled-down data with full work counting (see
DESIGN.md, "Timing methodology").  Two fidelity knobs:

- dataset scale: :data:`SCALED_DATASET_SPECS` shrinks each dataset while
  preserving its shape; reports carry the paper-scale extrapolation
  factor.
- key scale: the mathematics runs at ``physical_key_bits`` while the cost
  model charges the experiment's nominal key size.  The default scaling
  (:func:`physical_key_for`: a quarter of nominal, floored at 256) always
  hosts the nominal packing capacity, so ciphertext counts are exact at
  every nominal size.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.datasets.generators import (
    Dataset,
    avazu_like,
    rcv1_like,
    synthetic_like,
)
from repro.federation.channel import ChannelError
from repro.federation.faults import FaultPlan, QuorumError, RetryPolicy
from repro.federation.metrics import EpochReport, FaultReport
from repro.federation.runtime import FederationRuntime, SystemConfig
from repro.gpu.resource_manager import ResourceManager
from repro.models import (
    HeteroLogisticRegression,
    HeteroNeuralNetwork,
    HeteroSecureBoost,
    HomoLogisticRegression,
    HomoNeuralNetwork,
)
from repro.models.base import (
    CONVERGENCE_TOLERANCE,
    FederatedModel,
    TrainingTrace,
)

#: Largest physical key the scaled sweeps use (the nominal-4096 case);
#: hosts 128 packing slots with usable precision.
DEFAULT_PHYSICAL_KEY_BITS = 1024


def _fsync_directory(directory: Path) -> None:
    """Fsync a directory entry so a just-renamed file survives a crash.

    Some filesystems (and all of Windows) refuse ``O_RDONLY`` opens or
    fsync on directories; the rename is already atomic there, so the
    extra durability step is best-effort.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def physical_key_for(nominal_bits: int) -> int:
    """Physical key size for a nominal key in scaled mode.

    A quarter of the nominal size (floored at 256 bits) always hosts the
    nominal packing capacity at >= 5 value bits per slot, so ciphertext
    counts and compression ratios are exact while the Python arithmetic
    stays fast.
    """
    return max(256, nominal_bits // 4)

#: Participant count in every experiment (the paper's four servers).
DEFAULT_NUM_CLIENTS = 4

#: Scaled dimensions preserving each dataset's character: RCV1 mid-sparse
#: mid-dimensional, Avazu highest-dimensional and sparsest, Synthetic
#: dense and lowest-dimensional.
SCALED_DATASET_SPECS = {
    "RCV1": dict(instances=320, features=384),
    "Avazu": dict(instances=320, features=640),
    "Synthetic": dict(instances=320, features=96),
}

_DATASET_CACHE: Dict[tuple, Dataset] = {}


def scaled_dataset(name: str, seed: int = 0) -> Dataset:
    """Build (and cache) the scaled replica of a paper dataset."""
    spec = SCALED_DATASET_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; choose from "
                       f"{sorted(SCALED_DATASET_SPECS)}")
    cache_key = (name, seed)
    if cache_key not in _DATASET_CACHE:
        if name == "RCV1":
            dataset = rcv1_like(seed=seed, **spec)
        elif name == "Avazu":
            dataset = avazu_like(seed=seed, **spec)
        else:
            dataset = synthetic_like(seed=seed, **spec)
        _DATASET_CACHE[cache_key] = dataset
    return _DATASET_CACHE[cache_key]


def build_model(model_name: str, dataset: Dataset,
                num_clients: int = DEFAULT_NUM_CLIENTS,
                seed: int = 0) -> FederatedModel:
    """Instantiate a registry model (the paper's four plus Homo NN)."""
    if model_name == "Homo LR":
        return HomoLogisticRegression(dataset, num_clients=num_clients,
                                      batch_size=128, seed=seed)
    if model_name == "Hetero LR":
        return HeteroLogisticRegression(dataset, batch_size=128, seed=seed)
    if model_name == "Hetero SBT":
        return HeteroSecureBoost(dataset, max_depth=2, num_bins=4,
                                 seed=seed)
    if model_name == "Hetero NN":
        return HeteroNeuralNetwork(dataset, batch_size=128, seed=seed)
    if model_name == "Homo NN":
        return HomoNeuralNetwork(dataset, num_clients=num_clients,
                                 batch_size=128, seed=seed)
    raise KeyError(f"unknown model {model_name!r}")


#: Memoized epoch reports: benchmark files share many (system, model,
#: dataset, key) cells and all runs are deterministic given the seed.
_EPOCH_CACHE: Dict[tuple, EpochReport] = {}


def run_epoch_experiment(config: SystemConfig, model_name: str,
                         dataset_name: str, key_bits: int,
                         physical_key_bits: Optional[int] = None,
                         num_clients: int = DEFAULT_NUM_CLIENTS,
                         seed: int = 0,
                         use_cache: bool = True) -> EpochReport:
    """Measure one training epoch of (system, model, dataset, key size).

    The model trains for real on the scaled dataset; the report carries
    the modelled epoch time and component split at the nominal key size.
    Reports are memoized across calls (deterministic given the seed);
    pass ``use_cache=False`` to force a fresh run.
    """
    if physical_key_bits is None:
        physical_key_bits = physical_key_for(key_bits)
    cache_key = (config.name, model_name, dataset_name, key_bits,
                 physical_key_bits, num_clients, seed)
    if use_cache and cache_key in _EPOCH_CACHE:
        return _EPOCH_CACHE[cache_key]
    dataset = scaled_dataset(dataset_name, seed=seed)
    model = build_model(model_name, dataset, num_clients=num_clients,
                        seed=seed)
    runtime = FederationRuntime(config, num_clients=num_clients,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed)
    ledger = runtime.begin_epoch()
    loss = model.run_epoch(runtime)
    report = EpochReport.from_ledger(ledger, system=config.name,
                                     model=model_name, dataset=dataset_name,
                                     key_bits=key_bits, loss=loss)
    if use_cache:
        _EPOCH_CACHE[cache_key] = report
    return report


def run_training(config: SystemConfig, model_name: str, dataset_name: str,
                 key_bits: int, max_epochs: int,
                 physical_key_bits: Optional[int] = None,
                 num_clients: int = DEFAULT_NUM_CLIENTS,
                 seed: int = 0, bc_capacity: str = "nominal") -> TrainingTrace:
    """Train to convergence (or ``max_epochs``); returns the full trace.

    Convergence experiments default to full fidelity
    (``physical == nominal``) so quantization effects are the real ones;
    pass a smaller ``physical_key_bits`` with ``bc_capacity="physical"``
    to keep full quantization precision at reduced key cost.
    """
    if physical_key_bits is None:
        physical_key_bits = key_bits
    dataset = scaled_dataset(dataset_name, seed=seed)
    model = build_model(model_name, dataset, num_clients=num_clients,
                        seed=seed)
    runtime = FederationRuntime(config, num_clients=num_clients,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed, bc_capacity=bc_capacity)
    return model.train(runtime, max_epochs=max_epochs, key_bits=key_bits)


#: Checkpoint format version, bumped on layout changes.
CHECKPOINT_VERSION = 1


@dataclass
class TrainingCheckpoint:
    """Resumable snapshot of a federated training run.

    Serialized as JSON (no pickle): model arrays go through
    ``ndarray.tolist()``, which preserves shape and float64 values
    exactly, so resume is bit-identical.

    Attributes:
        system / model / dataset / key_bits / seed: Run identity; a
            checkpoint refuses to resume a different run.
        epoch: Epochs fully completed (the next epoch to run).
        rounds_completed: Global aggregation-round cursor, restored into
            the aggregator so scheduled fault events stay aligned.
        losses / epoch_seconds: Per-epoch trace so far.
        model_state: ``state_dict()`` arrays as nested lists.
        restarts: Resume cycles performed so far (the next runtime's
            fault incarnation).
    """

    system: str
    model: str
    dataset: str
    key_bits: int
    seed: int
    epoch: int
    rounds_completed: int
    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    model_state: Dict[str, list] = field(default_factory=dict)
    restarts: int = 0
    version: int = CHECKPOINT_VERSION

    @classmethod
    def capture(cls, model: FederatedModel, runtime: FederationRuntime,
                trace: TrainingTrace, key_bits: int, seed: int,
                epoch: int, restarts: int) -> "TrainingCheckpoint":
        """Snapshot a run at an epoch boundary."""
        return cls(
            system=runtime.config.name, model=model.name,
            dataset=model.dataset.name, key_bits=key_bits, seed=seed,
            epoch=epoch,
            rounds_completed=runtime.aggregator.round_cursor,
            losses=list(trace.losses),
            epoch_seconds=list(trace.epoch_seconds),
            model_state={name: np.asarray(value).tolist()
                         for name, value in model.state_dict().items()},
            restarts=restarts,
        )

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The model state as float64 arrays, ready for
        ``load_state_dict``."""
        return {name: np.asarray(value, dtype=np.float64)
                for name, value in self.model_state.items()}

    def save(self, path: Union[str, Path]) -> None:
        """Write the checkpoint atomically and durably.

        The payload goes to a temp file that is flushed and fsynced
        *before* the rename, and the directory entry is fsynced after
        it, so a crash at any point leaves either the old complete
        checkpoint or the new complete checkpoint -- never a torn one.
        A stale ``.tmp`` from an earlier crashed save is overwritten.
        """
        target = Path(path)
        payload = {
            "version": self.version, "system": self.system,
            "model": self.model, "dataset": self.dataset,
            "key_bits": self.key_bits, "seed": self.seed,
            "epoch": self.epoch,
            "rounds_completed": self.rounds_completed,
            "losses": self.losses, "epoch_seconds": self.epoch_seconds,
            "model_state": self.model_state, "restarts": self.restarts,
        }
        temporary = target.with_suffix(target.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        temporary.replace(target)
        _fsync_directory(target.parent)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrainingCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        version = payload.pop("version", 0)
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} unsupported "
                f"(expected {CHECKPOINT_VERSION})")
        return cls(version=version, **payload)

    def matches(self, system: str, model: str, dataset: str,
                key_bits: int, seed: int) -> bool:
        """Whether this checkpoint belongs to the given run."""
        return (self.system == system and self.model == model
                and self.dataset == dataset
                and self.key_bits == key_bits and self.seed == seed)


@dataclass
class RecoveryResult:
    """Outcome of a fault-tolerant training run.

    Attributes:
        trace: The completed training trace (losses restored from
            checkpoints carry no per-epoch reports).
        restarts: Checkpoint/resume cycles the run needed.
        resumed_epochs: Epoch index each resume restarted from.
        failures: Human-readable description of each abort.
        checkpoint: The final checkpoint (state at the last epoch).
        fault_report: Merged ``fault.*`` summary across every epoch,
            including aborted ones.
    """

    trace: TrainingTrace
    restarts: int
    resumed_epochs: List[int]
    failures: List[str]
    checkpoint: Optional[TrainingCheckpoint]
    fault_report: FaultReport


def run_training_with_recovery(
        config: SystemConfig, model_name: str, dataset_name: str,
        key_bits: int, max_epochs: int,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        min_quorum: Optional[int] = None,
        round_deadline_seconds: Optional[float] = None,
        physical_key_bits: Optional[int] = None,
        num_clients: int = DEFAULT_NUM_CLIENTS, seed: int = 0,
        bc_capacity: str = "nominal",
        checkpoint_path: Optional[Union[str, Path]] = None,
        max_restarts: int = 5,
        tolerance: float = CONVERGENCE_TOLERANCE) -> RecoveryResult:
    """Train under faults with checkpoint/resume instead of restarting.

    The training loop snapshots model weights, the epoch index, the
    aggregation-round cursor and the loss trace at every epoch boundary.
    When a fault aborts an epoch (``ChannelError`` from an exhausted
    transfer, or ``QuorumError`` from a round below quorum), the run
    resumes from the last checkpoint with a fresh runtime whose fault
    *incarnation* is bumped -- deterministic for a fixed seed, but not a
    verbatim replay of the failure.  Transient dropout events do not
    outlive a restart (see :mod:`repro.federation.faults`).

    Args:
        checkpoint_path: Persist checkpoints here (JSON); an existing,
            matching checkpoint at this path is resumed.  ``None`` keeps
            checkpoints in memory only.
        max_restarts: Abandon the run (re-raising the last failure) after
            this many resume cycles.

    Returns:
        A :class:`RecoveryResult`; its trace is directly comparable to
        :func:`run_training` output.
    """
    if physical_key_bits is None:
        physical_key_bits = key_bits
    dataset = scaled_dataset(dataset_name, seed=seed)

    checkpoint: Optional[TrainingCheckpoint] = None
    if checkpoint_path is not None:
        target = Path(checkpoint_path)
        # A .tmp next to the checkpoint is a save that died before its
        # rename; the checkpoint itself is still the last complete one.
        stale = target.with_suffix(target.suffix + ".tmp")
        if stale.exists():
            stale.unlink()
        if target.exists():
            candidate = TrainingCheckpoint.load(target)
            if candidate.matches(config.name, model_name, dataset_name,
                                 key_bits, seed):
                checkpoint = candidate

    restarts = checkpoint.restarts if checkpoint is not None else 0
    resumed_epochs: List[int] = []
    failures: List[str] = []
    fault_total = FaultReport()

    while True:
        model = build_model(model_name, dataset, num_clients=num_clients,
                            seed=seed)
        runtime = FederationRuntime(
            config, num_clients=num_clients, key_bits=key_bits,
            physical_key_bits=physical_key_bits, seed=seed,
            bc_capacity=bc_capacity, fault_plan=fault_plan,
            retry_policy=retry_policy, min_quorum=min_quorum,
            round_deadline_seconds=round_deadline_seconds,
            incarnation=restarts)
        trace = TrainingTrace(system=config.name, model=model.name,
                              dataset=dataset.name)
        start_epoch = 0
        if checkpoint is not None:
            model.load_state_dict(checkpoint.state_arrays())
            runtime.aggregator.round_cursor = checkpoint.rounds_completed
            trace.losses = list(checkpoint.losses)
            trace.epoch_seconds = list(checkpoint.epoch_seconds)
            start_epoch = checkpoint.epoch
        previous_loss = trace.losses[-1] if trace.losses else None

        epoch = start_epoch
        try:
            for epoch in range(start_epoch, max_epochs):
                ledger = runtime.begin_epoch()
                loss = model.run_epoch(runtime)
                fault_total = fault_total.merge(
                    FaultReport.from_ledger(ledger))
                trace.losses.append(loss)
                trace.epoch_seconds.append(ledger.total_seconds)
                trace.reports.append(EpochReport.from_ledger(
                    ledger, system=config.name, model=model.name,
                    dataset=dataset.name, key_bits=key_bits, loss=loss))
                checkpoint = TrainingCheckpoint.capture(
                    model, runtime, trace, key_bits=key_bits, seed=seed,
                    epoch=epoch + 1, restarts=restarts)
                if checkpoint_path is not None:
                    checkpoint.save(checkpoint_path)
                if previous_loss is not None and \
                        abs(previous_loss - loss) < tolerance:
                    break
                previous_loss = loss
            return RecoveryResult(
                trace=trace, restarts=restarts,
                resumed_epochs=resumed_epochs, failures=failures,
                checkpoint=checkpoint, fault_report=fault_total)
        except (ChannelError, QuorumError) as failure:
            # Count the aborted epoch's partial work before discarding it.
            fault_total = fault_total.merge(
                FaultReport.from_ledger(runtime.ledger))
            failures.append(f"epoch {epoch}: {failure}")
            restarts += 1
            if restarts > max_restarts:
                raise
            resumed_epochs.append(epoch)
            if checkpoint is not None:
                checkpoint.restarts = restarts
                if checkpoint_path is not None:
                    checkpoint.save(checkpoint_path)


def he_throughput(config: SystemConfig, key_bits: int,
                  batch_size: int = 4096,
                  physical_key_bits: Optional[int] = None,
                  operation: str = "encrypt",
                  seed: int = 0) -> float:
    """HE-operation throughput in instances/second (Table IV).

    Runs one real batch through the configured engine and divides the
    batch size by the modelled seconds.  ``operation`` is one of
    ``encrypt``, ``decrypt``, ``add``.
    """
    if physical_key_bits is None:
        physical_key_bits = physical_key_for(key_bits)
    runtime = FederationRuntime(config, num_clients=DEFAULT_NUM_CLIENTS,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed)
    engine = runtime.client_engine
    ledger = runtime.begin_epoch()
    plaintexts = [(i * 2654435761) % (1 << 20) for i in range(batch_size)]
    ciphertexts = engine.encrypt_batch(plaintexts)
    if operation == "encrypt":
        seconds = ledger.seconds("he.encrypt")
    elif operation == "decrypt":
        before = ledger.seconds("he.decrypt")
        engine.decrypt_batch(ciphertexts)
        seconds = ledger.seconds("he.decrypt") - before
    elif operation == "add":
        before = ledger.seconds("he.add")
        engine.add_batch(ciphertexts, ciphertexts)
        seconds = ledger.seconds("he.add") - before
    else:
        raise KeyError(f"unknown operation {operation!r}")
    if seconds <= 0:
        raise RuntimeError("no modelled time charged for the batch")
    return batch_size / seconds


def sm_utilization(config: SystemConfig, key_bits: int) -> float:
    """SM utilization for ciphertext-sized operands (Fig. 6)."""
    manager = ResourceManager(managed=config.managed_gpu)
    return manager.utilization_for_key_size(key_bits)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table (the benchmark printers' output)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(width)
                             for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)
