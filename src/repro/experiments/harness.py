"""Measurement harness for the paper's evaluation (Sec. VI).

The paper's testbed runs hours-long epochs on four servers; this harness
runs the same protocols on scaled-down data with full work counting (see
DESIGN.md, "Timing methodology").  Two fidelity knobs:

- dataset scale: :data:`SCALED_DATASET_SPECS` shrinks each dataset while
  preserving its shape; reports carry the paper-scale extrapolation
  factor.
- key scale: the mathematics runs at ``physical_key_bits`` while the cost
  model charges the experiment's nominal key size.  The default scaling
  (:func:`physical_key_for`: a quarter of nominal, floored at 256) always
  hosts the nominal packing capacity, so ciphertext counts are exact at
  every nominal size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.generators import (
    Dataset,
    avazu_like,
    rcv1_like,
    synthetic_like,
)
from repro.federation.metrics import EpochReport
from repro.federation.runtime import FederationRuntime, SystemConfig
from repro.gpu.resource_manager import ResourceManager
from repro.models import (
    HeteroLogisticRegression,
    HeteroNeuralNetwork,
    HeteroSecureBoost,
    HomoLogisticRegression,
    HomoNeuralNetwork,
)
from repro.models.base import FederatedModel, TrainingTrace

#: Largest physical key the scaled sweeps use (the nominal-4096 case);
#: hosts 128 packing slots with usable precision.
DEFAULT_PHYSICAL_KEY_BITS = 1024


def physical_key_for(nominal_bits: int) -> int:
    """Physical key size for a nominal key in scaled mode.

    A quarter of the nominal size (floored at 256 bits) always hosts the
    nominal packing capacity at >= 5 value bits per slot, so ciphertext
    counts and compression ratios are exact while the Python arithmetic
    stays fast.
    """
    return max(256, nominal_bits // 4)

#: Participant count in every experiment (the paper's four servers).
DEFAULT_NUM_CLIENTS = 4

#: Scaled dimensions preserving each dataset's character: RCV1 mid-sparse
#: mid-dimensional, Avazu highest-dimensional and sparsest, Synthetic
#: dense and lowest-dimensional.
SCALED_DATASET_SPECS = {
    "RCV1": dict(instances=320, features=384),
    "Avazu": dict(instances=320, features=640),
    "Synthetic": dict(instances=320, features=96),
}

_DATASET_CACHE: Dict[tuple, Dataset] = {}


def scaled_dataset(name: str, seed: int = 0) -> Dataset:
    """Build (and cache) the scaled replica of a paper dataset."""
    spec = SCALED_DATASET_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; choose from "
                       f"{sorted(SCALED_DATASET_SPECS)}")
    cache_key = (name, seed)
    if cache_key not in _DATASET_CACHE:
        if name == "RCV1":
            dataset = rcv1_like(seed=seed, **spec)
        elif name == "Avazu":
            dataset = avazu_like(seed=seed, **spec)
        else:
            dataset = synthetic_like(seed=seed, **spec)
        _DATASET_CACHE[cache_key] = dataset
    return _DATASET_CACHE[cache_key]


def build_model(model_name: str, dataset: Dataset,
                num_clients: int = DEFAULT_NUM_CLIENTS,
                seed: int = 0) -> FederatedModel:
    """Instantiate a registry model (the paper's four plus Homo NN)."""
    if model_name == "Homo LR":
        return HomoLogisticRegression(dataset, num_clients=num_clients,
                                      batch_size=128, seed=seed)
    if model_name == "Hetero LR":
        return HeteroLogisticRegression(dataset, batch_size=128, seed=seed)
    if model_name == "Hetero SBT":
        return HeteroSecureBoost(dataset, max_depth=2, num_bins=4,
                                 seed=seed)
    if model_name == "Hetero NN":
        return HeteroNeuralNetwork(dataset, batch_size=128, seed=seed)
    if model_name == "Homo NN":
        return HomoNeuralNetwork(dataset, num_clients=num_clients,
                                 batch_size=128, seed=seed)
    raise KeyError(f"unknown model {model_name!r}")


#: Memoized epoch reports: benchmark files share many (system, model,
#: dataset, key) cells and all runs are deterministic given the seed.
_EPOCH_CACHE: Dict[tuple, EpochReport] = {}


def run_epoch_experiment(config: SystemConfig, model_name: str,
                         dataset_name: str, key_bits: int,
                         physical_key_bits: Optional[int] = None,
                         num_clients: int = DEFAULT_NUM_CLIENTS,
                         seed: int = 0,
                         use_cache: bool = True) -> EpochReport:
    """Measure one training epoch of (system, model, dataset, key size).

    The model trains for real on the scaled dataset; the report carries
    the modelled epoch time and component split at the nominal key size.
    Reports are memoized across calls (deterministic given the seed);
    pass ``use_cache=False`` to force a fresh run.
    """
    if physical_key_bits is None:
        physical_key_bits = physical_key_for(key_bits)
    cache_key = (config.name, model_name, dataset_name, key_bits,
                 physical_key_bits, num_clients, seed)
    if use_cache and cache_key in _EPOCH_CACHE:
        return _EPOCH_CACHE[cache_key]
    dataset = scaled_dataset(dataset_name, seed=seed)
    model = build_model(model_name, dataset, num_clients=num_clients,
                        seed=seed)
    runtime = FederationRuntime(config, num_clients=num_clients,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed)
    ledger = runtime.begin_epoch()
    loss = model.run_epoch(runtime)
    report = EpochReport.from_ledger(ledger, system=config.name,
                                     model=model_name, dataset=dataset_name,
                                     key_bits=key_bits, loss=loss)
    if use_cache:
        _EPOCH_CACHE[cache_key] = report
    return report


def run_training(config: SystemConfig, model_name: str, dataset_name: str,
                 key_bits: int, max_epochs: int,
                 physical_key_bits: Optional[int] = None,
                 num_clients: int = DEFAULT_NUM_CLIENTS,
                 seed: int = 0, bc_capacity: str = "nominal") -> TrainingTrace:
    """Train to convergence (or ``max_epochs``); returns the full trace.

    Convergence experiments default to full fidelity
    (``physical == nominal``) so quantization effects are the real ones;
    pass a smaller ``physical_key_bits`` with ``bc_capacity="physical"``
    to keep full quantization precision at reduced key cost.
    """
    if physical_key_bits is None:
        physical_key_bits = key_bits
    dataset = scaled_dataset(dataset_name, seed=seed)
    model = build_model(model_name, dataset, num_clients=num_clients,
                        seed=seed)
    runtime = FederationRuntime(config, num_clients=num_clients,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed, bc_capacity=bc_capacity)
    return model.train(runtime, max_epochs=max_epochs, key_bits=key_bits)


def he_throughput(config: SystemConfig, key_bits: int,
                  batch_size: int = 4096,
                  physical_key_bits: Optional[int] = None,
                  operation: str = "encrypt",
                  seed: int = 0) -> float:
    """HE-operation throughput in instances/second (Table IV).

    Runs one real batch through the configured engine and divides the
    batch size by the modelled seconds.  ``operation`` is one of
    ``encrypt``, ``decrypt``, ``add``.
    """
    if physical_key_bits is None:
        physical_key_bits = physical_key_for(key_bits)
    runtime = FederationRuntime(config, num_clients=DEFAULT_NUM_CLIENTS,
                                key_bits=key_bits,
                                physical_key_bits=physical_key_bits,
                                seed=seed)
    engine = runtime.client_engine
    ledger = runtime.begin_epoch()
    plaintexts = [(i * 2654435761) % (1 << 20) for i in range(batch_size)]
    ciphertexts = engine.encrypt_batch(plaintexts)
    if operation == "encrypt":
        seconds = ledger.seconds("he.encrypt")
    elif operation == "decrypt":
        before = ledger.seconds("he.decrypt")
        engine.decrypt_batch(ciphertexts)
        seconds = ledger.seconds("he.decrypt") - before
    elif operation == "add":
        before = ledger.seconds("he.add")
        engine.add_batch(ciphertexts, ciphertexts)
        seconds = ledger.seconds("he.add") - before
    else:
        raise KeyError(f"unknown operation {operation!r}")
    if seconds <= 0:
        raise RuntimeError("no modelled time charged for the batch")
    return batch_size / seconds


def sm_utilization(config: SystemConfig, key_bits: int) -> float:
    """SM utilization for ciphertext-sized operands (Fig. 6)."""
    manager = ResourceManager(managed=config.managed_gpu)
    return manager.utilization_for_key_size(key_bits)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table (the benchmark printers' output)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(width)
                             for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)
