"""Aggregate benchmark results into one report document.

``python -m repro report`` (or :func:`build_report`) collects every
table the benchmarks wrote under ``benchmarks/results/`` into a single
markdown file, ordered to follow the paper's evaluation section -- the
artifact to attach to a reproduction writeup.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

#: Presentation order: the paper's artifacts first, extensions after.
SECTION_ORDER = [
    ("fig1_fate_breakdown", "Fig. 1 — FATE epoch breakdown"),
    ("table3_running_time", "Table III — running time per epoch"),
    ("table4_throughput", "Table IV — HE throughput"),
    ("fig6_sm_utilization", "Fig. 6 — SM utilization"),
    ("fig6_sm_utilization_chart", None),
    ("table5_ablation", "Table V — ablation study"),
    ("fig7_compression_ratio", "Fig. 7 — compression ratio"),
    ("table6_component_time", "Table VI — component running time"),
    ("fig8_convergence", "Fig. 8 — convergence"),
    ("fig8_convergence_chart", None),
    ("table7_convergence_bias", "Table VII — convergence bias"),
    ("table7_bias_sensitivity", None),
    ("theory_acceleration", "Eqs. 10–14 — theory vs measured"),
    ("fig4_pipeline_stages", "Fig. 4 companion — pipeline stages"),
    ("ablation_resource_manager", "Ablation — resource manager"),
    ("ablation_pipeline_depth", "Ablation — pipeline depth"),
    ("ablation_reduction", "Ablation — reduction strategy"),
    ("scaling_participants", "Beyond the paper — participant scaling"),
    ("related_work_symmetric", "Related work — symmetric HE"),
]


def build_report(results_dir: Path,
                 output_path: Optional[Path] = None) -> str:
    """Assemble the report; optionally write it to ``output_path``.

    Raises ``FileNotFoundError`` when the results directory is missing
    (run the benchmarks first).
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} not found -- run "
            f"`pytest benchmarks/ --benchmark-only` first")

    lines: List[str] = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/`.  See EXPERIMENTS.md for "
        "the paper-versus-measured reading guide and caveats.",
        "",
    ]
    seen = set()
    for stem, heading in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        seen.add(path.name)
        if heading:
            lines.append(f"## {heading}")
            lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip("\n"))
        lines.append("```")
        lines.append("")
    # Anything the order list doesn't know about still gets included.
    for path in sorted(results_dir.glob("*.txt")):
        if path.name in seen:
            continue
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip("\n"))
        lines.append("```")
        lines.append("")
    report = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(report)
    return report
