"""Paper-scale extrapolation of scaled epoch measurements.

The scaled datasets preserve each paper dataset's *shape* but not its
size, so modelled epoch seconds are proportionally small.  Each model's
dominant cost drivers scale with known dataset dimensions:

- **Homo LR** -- HE ops and transfers carry the *gradient vector*
  (proportional to the feature count); plaintext compute is
  instances x features.
- **Hetero LR / Hetero NN** -- HE ops and transfers carry *per-instance
  tensors* each epoch (forward fragments, residuals, activations);
  compute is instances x features.
- **Hetero SBT** -- transfers carry per-instance gradients plus
  per-(feature, bin) histograms per level; compute is instances x
  features.

``extrapolate_report`` applies the per-component factor to a scaled
:class:`~repro.federation.metrics.EpochReport`.  The result is an order-
of-magnitude estimate for comparing against the paper's Table III, not a
measurement -- EXPERIMENTS.md carries the caveats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generators import Dataset
from repro.federation.metrics import EpochReport

#: Histogram geometry used by the scaled SBT (harness defaults).
SBT_BINS = 4
SBT_LEVELS = 2


@dataclass(frozen=True)
class ExtrapolationFactors:
    """Per-component multipliers from scaled to paper scale."""

    he_comm: float
    compute: float

    def apply(self, report: EpochReport) -> float:
        """Estimated paper-scale epoch seconds for a scaled report."""
        return (self.he_comm * (report.he_seconds + report.comm_seconds)
                + self.compute * report.other_seconds)


def extrapolation_factors(model_name: str,
                          dataset: Dataset) -> ExtrapolationFactors:
    """Scaling factors for one (model, dataset) pair."""
    instances_ratio = dataset.paper_instances / dataset.num_instances
    features_ratio = dataset.paper_features / dataset.num_features
    compute = instances_ratio * features_ratio

    if model_name == "Homo LR":
        he_comm = features_ratio
    elif model_name in ("Hetero LR", "Hetero NN"):
        he_comm = instances_ratio
    elif model_name == "Hetero SBT":
        scaled = (2 * dataset.num_instances
                  + dataset.num_features // 2 * SBT_BINS * SBT_LEVELS)
        paper = (2 * dataset.paper_instances
                 + dataset.paper_features // 2 * SBT_BINS * SBT_LEVELS)
        he_comm = paper / scaled
    else:
        raise KeyError(f"unknown model {model_name!r}")
    return ExtrapolationFactors(he_comm=he_comm, compute=compute)


def extrapolate_report(report: EpochReport,
                       dataset: Dataset) -> float:
    """Paper-scale epoch-seconds estimate for a scaled report."""
    return extrapolation_factors(report.model, dataset).apply(report)
