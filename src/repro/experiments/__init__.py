"""Experiment harness (paper Sec. VI).

Shared machinery behind ``benchmarks/``: scaled dataset construction,
model factories, per-epoch measurement under a system configuration, HE
throughput microbenchmarks and SM-utilization sweeps.  Every table and
figure benchmark is a thin formatter over these functions.
"""

from repro.experiments.harness import (
    physical_key_for,
    DEFAULT_PHYSICAL_KEY_BITS,
    SCALED_DATASET_SPECS,
    scaled_dataset,
    build_model,
    run_epoch_experiment,
    run_training,
    run_training_with_recovery,
    RecoveryResult,
    TrainingCheckpoint,
    he_throughput,
    sm_utilization,
    format_table,
)

__all__ = [
    "DEFAULT_PHYSICAL_KEY_BITS",
    "SCALED_DATASET_SPECS",
    "physical_key_for",
    "scaled_dataset",
    "build_model",
    "run_epoch_experiment",
    "run_training",
    "run_training_with_recovery",
    "RecoveryResult",
    "TrainingCheckpoint",
    "he_throughput",
    "sm_utilization",
    "format_table",
]
