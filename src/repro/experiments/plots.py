"""ASCII chart rendering for the figure benchmarks.

The environment has no plotting stack, so the figure benchmarks render
their curves as monospace charts: good enough to *see* the Fig. 6/7/8
shapes in a terminal or a results file.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Series markers, assigned in insertion order.
MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 60, height: int = 16,
                title: str = "", x_label: str = "", y_label: str = "",
                log_x: bool = False) -> str:
    """Render named (x, y) series as a monospace scatter/line chart.

    Args:
        series: Name -> list of points.  Markers follow insertion order.
        width / height: Plot-area size in characters.
        title / x_label / y_label: Annotations.
        log_x: Place x positions on a log10 scale (throughput sweeps).

    Returns:
        The chart as a multi-line string, with a legend.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")

    def x_of(value: float) -> float:
        if not log_x:
            return value
        if value <= 0:
            raise ValueError("log_x requires positive x values")
        return math.log10(value)

    points_flat = [(x_of(x), y) for points in series.values()
                   for x, y in points]
    xs = [p[0] for p in points_flat]
    ys = [p[1] for p in points_flat]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in points:
            column = round((x_of(x) - x_low) / x_span * (width - 1))
            row = round((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top_tick = _format_tick(y_high)
    bottom_tick = _format_tick(y_low)
    margin = max(len(top_tick), len(bottom_tick))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = top_tick.rjust(margin)
        elif row_index == height - 1:
            tick = bottom_tick.rjust(margin)
        else:
            tick = " " * margin
        lines.append(f"{tick} |{''.join(row)}")
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    left = _format_tick(x_low if not log_x else 10 ** x_low)
    right = _format_tick(x_high if not log_x else 10 ** x_high)
    label_line = " " * (margin + 2) + left + \
        " " * max(1, width - len(left) - len(right)) + right
    lines.append(label_line)
    if x_label:
        lines.append(" " * (margin + 2) + x_label)
    legend = "   ".join(f"{MARKERS[i % len(MARKERS)]} {name}"
                        for i, name in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)
