"""Two-level sharded aggregation: leaf shards, a root, and failover.

The flat :class:`~repro.federation.aggregator.SecureAggregator` and even
the durable coordinator of PR 4 funnel every client upload through one
process -- the topology the paper evaluates at a handful of parties and
the ROADMAP's million-client north star cannot share.  This module adds
the hierarchical tier in between:

- :func:`plan_shards` / :func:`cohort_sample` -- deterministic cohort
  selection per round (master-seed RNG streams) and capacity-aware shard
  sizing: no shard's cohort may exceed the packer's safe summand count,
  because the :class:`~repro.tensor.meta.TensorMeta` algebra accumulates
  summands additively and ``decode_sum`` overflows past
  ``2**overflow_bits``.
- :class:`ShardAggregator` -- a *leaf* coordinator: write-ahead-logs its
  shard's uploads exactly like the durable coordinator, but instead of
  decrypting it commits the homomorphically combined ciphertext
  (``partial_committed``) -- leaves never hold the key.
- :class:`RootCoordinator` -- accepts leaf partials as its uploads,
  journals them, and decrypts in *capacity-bounded segments*: partials
  are greedily grouped so each segment's summand total fits the packer's
  capacity, each segment is decrypted separately, and the decoded sums
  are added in plaintext.  The Eq. 6 offset correction rides the
  metadata per segment, so the segmented result is exactly the flat sum.
- :class:`HierarchicalStandby` -- the PR 4 hot-standby protocol,
  parameterized over the coordinator class so *every leaf* and the root
  each get their own WAL + standby; failover composes hierarchically and
  the crash-consistency sweep holds at both layers.
- :class:`ShardedAggregationService` -- the orchestrator: samples the
  cohort, plans shards, pushes encrypted uploads through the event
  loop's admission control (:mod:`repro.federation.eventloop`), runs the
  leaf rounds (catching kills and failing over per shard), forwards
  partials to the root over the charged channel, and runs the root round
  (same kill handling).  Overload, shedding, and circuit-breaker fencing
  all degrade the round into quorum + Eq. 6 partial aggregation; nothing
  is ever lost silently.

Capacity invariant (property-tested): for any cohort the reduction tree
never combines more summands than ``packer.max_safe_summands()`` in one
ciphertext, and within one segment the sharded sum is bit-identical to
the flat aggregator's sum -- Paillier addition is exact modular
arithmetic, so regrouping cannot change the decoded plaintext.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.federation.aggregator import AggregationRound, SecureAggregator
from repro.federation.channel import ChannelError, Message
from repro.federation.coordinator import (
    CoordinatorError,
    CoordinatorKilled,
    DurableCoordinator,
    LeaseManager,
)
from repro.federation.eventloop import (
    REJECT_OVERLOAD,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    AdmissionRejected,
    AsyncChannel,
    VirtualClock,
)
from repro.federation.faults import (
    COORDINATOR_KINDS,
    SHARD_CRASH,
    QuorumError,
)
from repro.federation.serialization import deserialize_tensor, serialize_tensor
from repro.federation.tenancy import TenantRegistry
from repro.federation.wal import (
    DECRYPT_COMMITTED,
    PARTIAL_COMMITTED,
    QUORUM_REACHED,
    ROUND_CLOSE,
    ROUND_OPEN,
    SHARD_MERGE,
    SHARD_SPLIT,
    WalRecord,
    WriteAheadLog,
)
from repro.ledger import CostLedger, fault_category
from repro.rng import STREAM_MULTIPLIER
from repro.tensor.cipher import CipherTensor

#: Default shard count: ``ceil(sqrt(P))`` balances leaf fan-in against
#: root fan-in, making the root's per-round work grow as ``sqrt(P)``.
def default_num_shards(num_parties: int) -> int:
    """The square-root shard count for ``num_parties`` participants."""
    if num_parties < 1:
        raise ValueError("num_parties must be positive")
    return int(math.ceil(math.sqrt(num_parties)))


def cohort_sample(num_parties: int, cohort_size: int, seed: int,
                  round_index: int) -> List[int]:
    """Sample one round's cohort, deterministically per (seed, round).

    The stream is derived exactly like every other per-round stream in
    the repo (``seed * STREAM_MULTIPLIER + round_index``), so cohorts
    reproduce bit-for-bit across runs and across recovered coordinators.
    Returns sorted party indices.
    """
    if not 1 <= cohort_size <= num_parties:
        raise ValueError(
            f"cohort of {cohort_size} impossible with {num_parties} parties")
    rng = np.random.default_rng(seed * STREAM_MULTIPLIER + round_index)
    chosen = rng.choice(num_parties, size=cohort_size, replace=False)
    return sorted(int(i) for i in chosen)


def plan_shards(cohort: Sequence[int], num_shards: Optional[int] = None,
                max_summands: Optional[int] = None) -> List[List[int]]:
    """Partition a cohort into capacity-respecting shard groups.

    Contiguous, near-equal groups (deterministic: no hashing).  When
    ``max_summands`` is given, the shard count is raised until every
    group fits the ciphertext summand capacity -- the "split the
    reduction" rule the TensorMeta algebra demands.
    """
    parties = list(cohort)
    if not parties:
        raise ValueError("cannot shard an empty cohort")
    count = num_shards if num_shards is not None \
        else default_num_shards(len(parties))
    if count < 1:
        raise ValueError("num_shards must be positive")
    count = min(count, len(parties))
    if max_summands is not None:
        if max_summands < 1:
            raise ValueError("max_summands must be positive")
        needed = int(math.ceil(len(parties) / max_summands))
        count = max(count, needed)
    base, extra = divmod(len(parties), count)
    groups: List[List[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        groups.append(parties[start:start + size])
        start += size
    return [group for group in groups if group]


def segment_partials(partials: Sequence[CipherTensor],
                     max_summands: int) -> List[List[CipherTensor]]:
    """Greedily group partials so each segment fits the summand capacity.

    Every partial must fit on its own (leaf planning guarantees it);
    segments preserve input order so the reduction stays deterministic.
    """
    if max_summands < 1:
        raise ValueError("max_summands must be positive")
    segments: List[List[CipherTensor]] = []
    current: List[CipherTensor] = []
    current_summands = 0
    for tensor in partials:
        summands = tensor.meta.summands
        if summands > max_summands:
            raise OverflowError(
                f"one partial already carries {summands} summands, over "
                f"the {max_summands} capacity -- the leaf plan is broken")
        if current and current_summands + summands > max_summands:
            segments.append(current)
            current = []
            current_summands = 0
        current.append(tensor)
        current_summands += summands
    if current:
        segments.append(current)
    return segments


class ShardAggregator(DurableCoordinator):
    """A leaf shard's coordinator: combines ciphertexts, never decrypts.

    Shares the durable coordinator's whole journaling stack -- WAL,
    state machine, digest trail, incarnation fencing, ``kill_after_lsn``
    -- and replaces the decrypting round with :meth:`combine_round`,
    which commits the homomorphically combined ciphertext frame
    (``partial_committed``) instead of a plaintext result.  A leaf
    killed at any record boundary is recovered (or failed over) with the
    exact accepted ciphertexts replayed from its own log.
    """

    def combine_round(self, uploads: Sequence[Tuple[str, CipherTensor]],
                      round_index: int, tag: str = "gradients",
                      quorum: int = 1) -> CipherTensor:
        """One write-ahead-logged leaf round; returns the partial.

        Args:
            uploads: ``(client, tensor)`` pairs the event loop delivered
                to this shard, in delivery order.
            quorum: Minimum accepted uploads for the shard to produce a
                partial (1 by default -- overall quorum is the service's
                concern, per Eq. 6 partial-aggregation semantics).
        """
        agg = self.aggregator
        if quorum < 1:
            raise ValueError("quorum must be at least 1")

        state = self.machine.round
        if state is not None and state.closed \
                and state.round_index == round_index:
            if state.aborted == "quorum":
                raise QuorumError(round_index, state.survivors, quorum,
                                  state.num_clients)
            return self._partial_tensor(state.partial_frame)
        resuming = (state is not None and not state.closed
                    and state.round_index == round_index)
        if not resuming:
            self._log(ROUND_OPEN, round_index, tag=f"shard.{tag}",
                      num_clients=len(uploads), quorum=quorum)
        state = self.machine.round

        if not state.quorum_logged:
            for client, tensor in uploads:
                if self.machine.has_upload(round_index, client):
                    continue  # journaled before a crash: reuse verbatim
                agg.validate_ciphertexts(tensor)
                self.accept_upload(round_index, client, tensor)
            if len(state.survivors) < quorum:
                self._log(ROUND_CLOSE, round_index, aborted="quorum")
                raise QuorumError(round_index, state.survivors, quorum,
                                  len(uploads))
            accepted = self.machine.upload_tensors()
            summands = sum(t.meta.summands for t in accepted)
            # Honor the *uploads'* codec: an interleaved layout affords
            # more summands than the dense default, a fact the tensors
            # themselves carry via their TensorMeta codec identity.
            capacity = (accepted[0].meta.summand_capacity() if accepted
                        else agg.packer.max_safe_summands())
            if summands > capacity:
                raise OverflowError(
                    f"shard cohort carries {summands} summands, over the "
                    f"{capacity} capacity -- plan_shards must split it")
            self._log(QUORUM_REACHED, round_index,
                      survivors=list(state.survivors), summands=summands)

        if state.partial_frame is None:
            tensors = self.machine.upload_tensors(
                engine=agg.server_engine)
            partial = agg._server_sum(tensors)
            self._log(PARTIAL_COMMITTED, round_index,
                      frame=serialize_tensor(partial.materialize()).hex())
        if not state.closed:
            self._log(ROUND_CLOSE, round_index)
        return self._partial_tensor(state.partial_frame)

    def _partial_tensor(self, frame: Optional[str]) -> CipherTensor:
        """The committed partial, rebound to the server engine.

        Always rebuilt from the journaled frame, so an uninterrupted
        run and a recovered one return byte-identical partials.
        """
        if frame is None:
            raise CoordinatorError(
                "round closed without a committed partial")
        tensor = deserialize_tensor(bytes.fromhex(frame))
        return CipherTensor(tensor.meta, words=list(tensor.words),
                            engine=self.aggregator.server_engine)


class RootCoordinator(DurableCoordinator):
    """The root of the reduction tree: combines and decrypts partials.

    Leaf partials are its uploads (dedupe key ``r{round}:{shard}``, same
    exactly-once machinery).  Decryption is *segmented*: partials are
    grouped under the summand capacity, each segment homomorphically
    summed and decrypted separately, and the decoded sums added in
    plaintext -- the only way a cohort larger than one ciphertext's
    capacity can be reduced at all.
    """

    def reduce_round(self, partials: Sequence[Tuple[str, CipherTensor]],
                     round_index: int, tag: str = "gradients",
                     quorum: int = 1) -> np.ndarray:
        """One write-ahead-logged root round; returns the decoded sum."""
        agg = self.aggregator
        if quorum < 1:
            raise ValueError("quorum must be at least 1")

        state = self.machine.round
        if state is not None and state.closed \
                and state.round_index == round_index:
            if state.aborted == "quorum":
                raise QuorumError(round_index, state.survivors, quorum,
                                  state.num_clients)
            return np.asarray(state.result, dtype=np.float64)
        resuming = (state is not None and not state.closed
                    and state.round_index == round_index)
        if not resuming:
            self._log(ROUND_OPEN, round_index, tag=f"root.{tag}",
                      num_clients=len(partials), quorum=quorum)
        state = self.machine.round

        if not state.quorum_logged:
            for shard, tensor in partials:
                if self.machine.has_upload(round_index, shard):
                    continue
                agg.validate_ciphertexts(tensor)
                self.accept_upload(round_index, shard, tensor)
            if len(state.survivors) < quorum:
                self._log(ROUND_CLOSE, round_index, aborted="quorum")
                raise QuorumError(round_index, state.survivors, quorum,
                                  len(partials))
            accepted = self.machine.upload_tensors()
            summands = sum(t.meta.summands for t in accepted)
            self._log(QUORUM_REACHED, round_index,
                      survivors=list(state.survivors), summands=summands)

        if state.result is None:
            tensors = self.machine.upload_tensors(
                engine=agg.server_engine)
            decoded = self._segmented_decrypt(tensors)
            # Journaling the decoded aggregate is the WAL's purpose: a
            # successor serves the round without re-decrypting.
            self._log(DECRYPT_COMMITTED, round_index,  # flcheck: allow[plaintext-wire]
                      result=list(np.asarray(decoded).ravel()),
                      summands=state.summands)
        if not state.closed:
            self._log(ROUND_CLOSE, round_index)
        return np.asarray(state.result, dtype=np.float64)

    def _segmented_decrypt(self,
                           tensors: Sequence[CipherTensor]) -> np.ndarray:
        """Capacity-bounded reduction: sum within segments, add decoded."""
        agg = self.aggregator
        # Per-codec capacity from the partials themselves (guard-banded
        # layouts segment less often than the dense default would).
        capacity = (tensors[0].meta.summand_capacity() if tensors
                    else agg.packer.max_safe_summands())
        segments = segment_partials(tensors, capacity)
        total: Optional[np.ndarray] = None
        for segment in segments:
            combined = agg._server_sum(list(segment))
            decoded = agg.decrypt_tensor(combined, charged=True)
            total = decoded if total is None else total + decoded
        if total is None:
            raise CoordinatorError("no partials to decrypt")
        return total


class HierarchicalStandby:
    """A hot standby for one node of the reduction tree (leaf or root).

    The PR 4 standby protocol, parameterized over the coordinator class:
    tails the node's WAL into a shadow state machine and, once the lease
    lapses, acquires a bumped incarnation and resumes from the log.
    Takeover asserts the shadow digest matches a fresh replay -- the
    standby really was hot.

    Args:
        aggregator: The data path the successor will drive.
        lease_manager: Arbitration shared with the node's primary.
        name: Standby identity.
        coordinator_cls: :class:`ShardAggregator` for a leaf,
            :class:`RootCoordinator` for the root.
    """

    def __init__(self, aggregator: SecureAggregator,
                 lease_manager: LeaseManager, name: str,
                 coordinator_cls: Type[DurableCoordinator]):
        from repro.federation.coordinator import RoundStateMachine

        self.aggregator = aggregator
        self.lease_manager = lease_manager
        self.name = name
        self.coordinator_cls = coordinator_cls
        self.machine = RoundStateMachine()
        self._tail_lsn = 0

    def tail(self, image: bytes) -> int:
        """Apply records appended since the last tail; returns how many."""
        log = WriteAheadLog.from_bytes(image)
        fresh = log.records_since(self._tail_lsn)
        for record in fresh:
            self.machine.apply(record)
        self._tail_lsn += len(fresh)
        return len(fresh)

    def take_over(self, image: bytes) -> DurableCoordinator:
        """Acquire the lapsed lease and resume from the log."""
        self.tail(image)
        lease = self.lease_manager.acquire(self.name)
        wal = WriteAheadLog.from_bytes(image)
        successor = self.coordinator_cls(
            self.aggregator, wal=wal, name=self.name,
            incarnation=lease.incarnation,
            lease_manager=self.lease_manager)
        if successor.machine.digest() != self.machine.digest():
            raise CoordinatorError(
                "standby shadow state diverged from the log at takeover")
        return successor


@dataclass
class FailoverRecord:
    """One node death the service failed over.

    Attributes:
        node: ``shard-<i>`` for a leaf, ``root`` for the root.
        round_index: Round in flight when the kill fired.
        lsn: Last WAL record the dead node durably appended.
        incarnation: The successor's fencing incarnation.
        recovered_digest: The successor's state digest right after
            replaying the dead node's log -- compared against the
            uninterrupted run's digest at the same ``lsn`` by the
            sharded crash-consistency sweep.
    """

    node: str
    round_index: int
    lsn: int
    incarnation: int
    recovered_digest: int


class ShardPool:
    """WAL-journaled elastic shard topology: splits, merges, recovery.

    The pool owns *which* shard queues exist.  Every topology change is
    a ``shard_split`` or ``shard_merge`` record appended to the pool's
    own topology journal **before** any queued entry moves, so a pool
    killed at any record boundary recovers to the exact same topology
    by replaying its log, then re-routes orphaned entries with
    :meth:`migrate_orphans` -- the same journal-then-act discipline the
    round coordinators follow, composed with the PR 6 standby failover.

    Shard names are ``shard-<ordinal>`` with a monotonically increasing
    ordinal: a retired name is never reused, so a stale reference to a
    pre-split shard can always be resolved through the journaled
    successor map instead of silently aliasing a new queue.

    Determinism contract (asserted by the rebalance crash sweep): for a
    fixed sequence of :meth:`rebalance` targets, the final topology,
    the successor map, and the routing of every queued entry are
    byte-identical whether or not the pool died and recovered at any
    journal record along the way.
    """

    def __init__(self, initial_shards: int = 1,
                 wal: Optional[WriteAheadLog] = None,
                 incarnation: int = 0):
        if initial_shards < 1:
            raise ValueError("initial_shards must be at least 1")
        self.initial_shards = initial_shards
        self.wal = wal if wal is not None else WriteAheadLog()
        self.incarnation = incarnation
        #: Fault hook: raise :class:`CoordinatorKilled` once a journal
        #: append reaches this LSN (the crash sweep's knife).
        self.kill_after_lsn: Optional[int] = None
        #: Active shard names, in deterministic service order.
        self.active: List[str] = [f"shard-{i}"
                                  for i in range(initial_shards)]
        self._next_ordinal = initial_shards
        #: Retired shard -> immediate successors (split children or the
        #: merge target); resolved transitively by :meth:`resolve`.
        self._successors: Dict[str, List[str]] = {}
        for record in self.wal.records:
            self._apply(record)

    @classmethod
    def from_bytes(cls, blob: bytes, initial_shards: int = 1,
                   incarnation: int = 0) -> "ShardPool":
        """Recover a pool from a dead pool's journal image."""
        return cls(initial_shards=initial_shards,
                   wal=WriteAheadLog.from_bytes(blob),
                   incarnation=incarnation)

    def digest(self) -> int:
        """CRC32 over the canonical topology (the sweep's comparator)."""
        blob = json.dumps(
            {"active": self.active, "next_ordinal": self._next_ordinal,
             "successors": self._successors},
            sort_keys=True, separators=(",", ":")).encode("utf-8")
        return zlib.crc32(blob)

    def _ordinal(self, shard: str) -> int:
        return int(shard.rsplit("-", 1)[1])

    def _apply(self, record: WalRecord) -> None:
        """Replay one topology record (append-time and recovery path)."""
        if record.kind == SHARD_SPLIT:
            parent = record.payload["parent"]
            children = list(record.payload["children"])
            index = self.active.index(parent)
            self.active[index:index + 1] = children
            self._successors[parent] = children
            top = max(self._ordinal(c) for c in children)
        elif record.kind == SHARD_MERGE:
            sources = list(record.payload["sources"])
            target = record.payload["target"]
            index = min(self.active.index(s) for s in sources)
            for source in sources:
                self.active.remove(source)
                self._successors[source] = [target]
            self.active.insert(index, target)
            top = self._ordinal(target)
        else:
            raise ValueError(
                f"{record.kind!r} is not a shard-pool topology record")
        self._next_ordinal = max(self._next_ordinal, top + 1)

    def _log(self, kind: str, round_index: int, **payload) -> int:
        record = WalRecord(kind=kind, round_index=round_index,
                           incarnation=self.incarnation, payload=payload)
        lsn = self.wal.append(record)
        self._apply(record)
        if self.kill_after_lsn is not None and lsn >= self.kill_after_lsn:
            raise CoordinatorKilled(lsn)
        return lsn

    # ------------------------------------------------------------------
    # Topology changes (journal first, move entries second).
    # ------------------------------------------------------------------

    def split(self, parent: str, round_index: int,
              channel: Optional[AsyncChannel] = None) -> List[str]:
        """Split one shard into two children; returns the child names.

        The handoff record journals the parent and both children before
        any queued entry moves; queued entries then alternate between
        the children (even index -> first child), the deterministic
        assignment recovery reproduces via :meth:`migrate_orphans`.
        """
        if parent not in self.active:
            raise ValueError(f"cannot split inactive shard {parent!r}")
        children = [f"shard-{self._next_ordinal}",
                    f"shard-{self._next_ordinal + 1}"]
        self._log(SHARD_SPLIT, round_index, parent=parent,
                  children=children)
        if channel is not None:
            self.migrate_orphans(channel)
        return children

    def merge(self, first: str, second: str, round_index: int,
              channel: Optional[AsyncChannel] = None) -> str:
        """Merge two shards into a fresh target; returns the target."""
        for source in (first, second):
            if source not in self.active:
                raise ValueError(
                    f"cannot merge inactive shard {source!r}")
        if first == second:
            raise ValueError("merge needs two distinct shards")
        target = f"shard-{self._next_ordinal}"
        self._log(SHARD_MERGE, round_index, sources=[first, second],
                  target=target)
        if channel is not None:
            self.migrate_orphans(channel)
        return target

    def rebalance(self, target_count: int, round_index: int,
                  channel: Optional[AsyncChannel] = None) -> int:
        """Split/merge toward ``target_count`` active shards.

        Deterministic and idempotent: splits always take the head of
        the active list, merges always fold the tail pair, and a pool
        killed mid-rebalance reaches the same topology once recovered
        and re-asked for the same target.  Returns operations applied.
        """
        if target_count < 1:
            raise ValueError("target_count must be at least 1")
        operations = 0
        while len(self.active) < target_count:
            self.split(self.active[0], round_index, channel=channel)
            operations += 1
        while len(self.active) > target_count:
            self.merge(self.active[-2], self.active[-1], round_index,
                       channel=channel)
            operations += 1
        return operations

    # ------------------------------------------------------------------
    # Orphan routing.
    # ------------------------------------------------------------------

    def resolve(self, shard: str) -> List[str]:
        """The active shards a (possibly retired) name resolves to."""
        frontier = [shard]
        resolved: List[str] = []
        while frontier:
            name = frontier.pop(0)
            if name in self._successors:
                frontier.extend(self._successors[name])
            else:
                resolved.append(name)
        return resolved

    def migrate_orphans(self, channel: AsyncChannel) -> int:
        """Re-route entries queued on retired shards; returns the count.

        Split children take alternating entries (even index -> first
        child); a merge target takes everything.  Routing depends only
        on the journaled successor map and each entry's queue position,
        so recovery reproduces the exact assignment an uninterrupted
        handoff would have made.
        """
        moved = 0
        for retired in list(self._successors):
            if channel.queue_depth(retired) == 0:
                continue
            targets = self.resolve(retired)

            def route(index: int, sender: str,
                      targets: List[str] = targets) -> str:
                return targets[index % len(targets)]

            counts = channel.migrate(retired, route)
            moved += sum(counts.values())
        return moved


@dataclass
class ShardRoundReport:
    """Outcome of one sharded aggregation round.

    Every party in the cohort lands in exactly one bucket: a shard's
    survivor list, or :attr:`dropped` with a reason (``offline``,
    ``deadline``, ``fenced``, ``rejected``, ``quota``, ``shed``,
    ``lost``) -- the no-silent-loss invariant, asserted by the
    overload tests.
    """

    round_index: int
    cohort: List[str] = field(default_factory=list)
    shard_groups: Dict[str, List[str]] = field(default_factory=dict)
    shard_survivors: Dict[str, List[str]] = field(default_factory=dict)
    dropped: List[Tuple[str, str]] = field(default_factory=list)
    fenced_shards: List[str] = field(default_factory=list)
    summands: int = 0
    leaf_failovers: int = 0
    root_failovers: int = 0

    @property
    def survivors(self) -> List[str]:
        """Every party whose update reached the root, in shard order."""
        names: List[str] = []
        for shard in sorted(self.shard_survivors):
            names.extend(self.shard_survivors[shard])
        return names

    @property
    def partial(self) -> bool:
        """Whether any cohort member missed the round."""
        return bool(self.dropped)


class ShardedAggregationService:
    """The two-level service: event loop, leaf shards, root, failover.

    Args:
        aggregator: The flat data path (engines, packer, channel, fault
            injector, quorum defaults) every node shares in-process.
        clock: The virtual clock driving admission, deadlines and
            leases; a fresh one by default.
        num_shards: Fixed shard count; default ``ceil(sqrt(cohort))``
            per round, always raised to respect summand capacity.
        queue_capacity: Per-shard ingress bound (the memory guarantee).
        seed: Master seed for cohort sampling streams.
        lease_timeout_seconds: Leaf/root lease duration; failover
            advances the clock past it.
        breaker_failure_threshold / breaker_cooldown_seconds: Per-shard
            circuit-breaker tuning.
        async_channel: A *shared* ingress (multi-tenant deployments);
            the service builds its own private one when omitted.
        tenant: Tenant id every submit/drain/breaker interaction is
            scoped to; requires ``async_channel`` built over a
            :class:`~repro.federation.tenancy.TenantRegistry`.
        pool: The elastic :class:`ShardPool` naming the shard queues;
            fixed ``shard-<i>`` names per round when omitted.
        node_prefix: Prefix for leaf/root WAL, lease, and standby names
            (``"tenant-a/"`` keeps tenants' node identities disjoint on
            a shared pool).
    """

    def __init__(self, aggregator: SecureAggregator,
                 clock: Optional[VirtualClock] = None,
                 num_shards: Optional[int] = None,
                 queue_capacity: int = 64, seed: int = 7,
                 lease_timeout_seconds: float = 30.0,
                 breaker_failure_threshold: int = 3,
                 breaker_cooldown_seconds: float = 60.0,
                 async_channel: Optional[AsyncChannel] = None,
                 tenant: Optional[str] = None,
                 pool: Optional["ShardPool"] = None,
                 node_prefix: str = ""):
        self.aggregator = aggregator
        self.clock = clock if clock is not None else VirtualClock()
        self.num_shards = num_shards
        self.queue_capacity = queue_capacity
        self.seed = seed
        self.lease_timeout_seconds = lease_timeout_seconds
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self._current_round = 0
        self.tenant = tenant
        self.pool = pool
        self.node_prefix = node_prefix
        if async_channel is not None:
            if tenant is not None and async_channel.tenants is None:
                raise ValueError(
                    "a tenant-scoped service needs an AsyncChannel "
                    "built over a TenantRegistry")
            self.async_channel = async_channel
            if tenant is not None:
                self.async_channel.register_tenant(
                    tenant, aggregator.channel)
        else:
            if tenant is not None:
                raise ValueError(
                    "a tenant-scoped service needs the shared "
                    "async_channel the tenants multiplex")
            self.async_channel = AsyncChannel(
                aggregator.channel, self.clock,
                queue_capacity=queue_capacity,
                overloaded=self._overloaded)
        self.leaves: Dict[str, ShardAggregator] = {}
        self._leaf_standbys: Dict[str, HierarchicalStandby] = {}
        self._leaf_leases: Dict[str, LeaseManager] = {}
        self.root_name = f"{node_prefix}root"
        self._root_lease = LeaseManager(
            timeout_seconds=lease_timeout_seconds, clock=self._now)
        self._root_lease.acquire(self.root_name)
        self.root: RootCoordinator = RootCoordinator(
            aggregator, wal=WriteAheadLog(), name=self.root_name,
            lease_manager=self._root_lease)
        self._root_standby = HierarchicalStandby(
            aggregator, self._root_lease, name=f"{self.root_name}-standby",
            coordinator_cls=RootCoordinator)
        self.last_round: Optional[ShardRoundReport] = None
        #: Every failover the service performed, for the crash sweeps.
        self.failover_log: List[FailoverRecord] = []

    def _now(self) -> float:
        return self.clock.now

    def _overloaded(self, shard: str) -> bool:
        injector = self.aggregator.injector
        return (injector is not None
                and injector.queue_overloaded(shard, self._current_round))

    def _breaker(self, shard: str):
        """The breaker admission consults: tenant-scoped when tenanted.

        Fault containment hinges here -- a tenanted service only ever
        reads and trips *its own* per-(shard, tenant) breaker, so one
        tenant's failures can never fence another tenant off a shared
        shard.
        """
        if self.tenant is not None:
            return self.async_channel.tenant_breaker(
                shard, self.tenant,
                failure_threshold=self.breaker_failure_threshold,
                cooldown_seconds=self.breaker_cooldown_seconds)
        return self.async_channel.register_shard(
            shard,
            failure_threshold=self.breaker_failure_threshold,
            cooldown_seconds=self.breaker_cooldown_seconds)

    # ------------------------------------------------------------------
    # Node registry.
    # ------------------------------------------------------------------

    def leaf(self, shard: str) -> ShardAggregator:
        """The shard's leaf coordinator (created with WAL + standby)."""
        if shard not in self.leaves:
            node = f"{self.node_prefix}{shard}"
            lease = LeaseManager(
                timeout_seconds=self.lease_timeout_seconds,
                clock=self._now)
            lease.acquire(f"{node}-primary")
            self._leaf_leases[shard] = lease
            self.leaves[shard] = ShardAggregator(
                self.aggregator, wal=WriteAheadLog(),
                name=f"{node}-primary", lease_manager=lease)
            self._leaf_standbys[shard] = HierarchicalStandby(
                self.aggregator, lease, name=f"{node}-standby",
                coordinator_cls=ShardAggregator)
        return self.leaves[shard]

    def leaf_standby(self, shard: str) -> HierarchicalStandby:
        """The shard's hot standby (tails the leaf WAL)."""
        self.leaf(shard)
        return self._leaf_standbys[shard]

    @property
    def root_standby(self) -> HierarchicalStandby:
        return self._root_standby

    # ------------------------------------------------------------------
    # Failover plumbing.
    # ------------------------------------------------------------------

    def _charge_fault(self, kind: str, party: str,
                      round_index: int) -> None:
        injector = self.aggregator.injector
        if injector is not None:
            injector._record(kind, party, round_index)
        else:
            self.aggregator.channel.ledger.charge(
                fault_category(kind), 0.0, count=1)

    def _fail_over_leaf(self, shard: str, round_index: int,
                        lsn: int) -> ShardAggregator:
        """Promote the shard's standby over the dead primary's log."""
        dead = self.leaves[shard]
        image = dead.wal.image()
        standby = self._leaf_standbys[shard]
        standby.tail(image)
        lease = self._leaf_leases[shard]
        if not lease.expired():
            self.clock.advance(lease.timeout_seconds)
        successor = standby.take_over(image)
        assert isinstance(successor, ShardAggregator)
        self.leaves[shard] = successor
        self._leaf_standbys[shard] = HierarchicalStandby(
            self.aggregator, lease,
            name=f"{self.node_prefix}{shard}-standby-"
                 f"{successor.incarnation}",
            coordinator_cls=ShardAggregator)
        self._charge_fault(SHARD_CRASH, shard, round_index)
        self.failover_log.append(FailoverRecord(
            node=shard, round_index=round_index, lsn=lsn,
            incarnation=successor.incarnation,
            recovered_digest=successor.machine.digest()))
        return successor

    def _fail_over_root(self, round_index: int,
                        lsn: int) -> RootCoordinator:
        """Promote the root standby over the dead root's log."""
        image = self.root.wal.image()
        self._root_standby.tail(image)
        if not self._root_lease.expired():
            self.clock.advance(self._root_lease.timeout_seconds)
        successor = self._root_standby.take_over(image)
        assert isinstance(successor, RootCoordinator)
        self.root = successor
        self._root_standby = HierarchicalStandby(
            self.aggregator, self._root_lease,
            name=f"{self.root_name}-standby-{successor.incarnation}",
            coordinator_cls=RootCoordinator)
        self._charge_fault("failover", self.root_name, round_index)
        self.failover_log.append(FailoverRecord(
            node=self.root_name, round_index=round_index, lsn=lsn,
            incarnation=successor.incarnation,
            recovered_digest=successor.machine.digest()))
        return successor

    def _scheduled_kill(self, party: str, round_index: int,
                        kinds: Tuple[str, ...]) -> Optional[int]:
        injector = self.aggregator.injector
        if injector is None:
            return None
        for event in injector.plan.events:
            if event.kind in kinds and event.party == party \
                    and event.round_index == round_index:
                return event.after_record
        return None

    # ------------------------------------------------------------------
    # The sharded round.
    # ------------------------------------------------------------------

    def run_round(self, client_vectors: Sequence[np.ndarray],
                  tag: str = "gradients",
                  round_index: Optional[int] = None,
                  cohort_size: Optional[int] = None,
                  min_quorum: Optional[int] = None,
                  flood_intensity: int = 0) -> np.ndarray:
        """One sharded aggregation round; returns the slot-wise sum.

        Cohort sampling, shard planning, admission control, deadline
        shedding, leaf combination, root reduction -- with per-shard and
        root failover handled in place.  Parties lost anywhere along the
        path degrade the round into Eq. 6 partial aggregation; the round
        only fails (``QuorumError``) below ``min_quorum`` survivors.

        ``flood_intensity`` models a ``tenant_flood`` retry storm: each
        admitted upload is re-submitted that many extra times.  The
        duplicates spend *this* tenant's quota tokens and slice slots
        and are absorbed by the leaf's exactly-once dedupe -- the blast
        radius the isolation tests pin to the flooding tenant alone.
        """
        agg = self.aggregator
        vectors = [np.asarray(v, dtype=np.float64)
                   for v in client_vectors]
        if not vectors:
            raise ValueError("run_round needs at least one client vector")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError("client vectors must share a length")
        if round_index is None:
            round_index = agg.round_cursor
        self._current_round = round_index

        if cohort_size is not None and cohort_size < len(vectors):
            cohort = cohort_sample(len(vectors), cohort_size, self.seed,
                                   round_index)
        else:
            cohort = list(range(len(vectors)))
        required = min_quorum if min_quorum is not None else agg.min_quorum
        if required is None:
            required = len(cohort)
        if not 1 <= required <= len(cohort):
            raise ValueError(
                f"quorum {required} impossible with a cohort of "
                f"{len(cohort)}")

        if self.pool is not None:
            groups = plan_shards(cohort, len(self.pool.active),
                                 max_summands=agg.packer
                                 .max_safe_summands())
            if len(groups) > len(self.pool.active):
                raise ValueError(
                    f"cohort needs {len(groups)} shards but the pool "
                    f"has {len(self.pool.active)}; rebalance first")
            shard_names = list(self.pool.active[:len(groups)])
        else:
            groups = plan_shards(cohort, self.num_shards,
                                 max_summands=agg.packer
                                 .max_safe_summands())
            shard_names = [f"shard-{s}" for s in range(len(groups))]
        report = ShardRoundReport(
            round_index=round_index,
            cohort=[f"client-{i}" for i in cohort])
        report.shard_groups = {
            shard_names[s]: [f"client-{i}" for i in group]
            for s, group in enumerate(groups)}
        deadline = (self.clock.now + agg.round_deadline_seconds
                    if agg.round_deadline_seconds is not None else None)
        injector = agg.injector

        # Phase 1: admission -- encrypt and submit through the event loop.
        shard_uploads: Dict[str, List[Tuple[str, CipherTensor]]] = {}
        representative_charged = False
        active_shards: List[str] = []
        for s_index, group in enumerate(groups):
            shard = shard_names[s_index]
            self.async_channel.register_shard(
                shard,
                failure_threshold=self.breaker_failure_threshold,
                cooldown_seconds=self.breaker_cooldown_seconds)
            breaker = self._breaker(shard)
            if not breaker.allow():
                report.fenced_shards.append(shard)
                for i in group:
                    report.dropped.append((f"client-{i}", "fenced"))
                continue
            active_shards.append(shard)
            overload_charged = False
            for i in group:
                name = f"client-{i}"
                delay = 0.0
                if injector is not None:
                    if not injector.is_alive(name, round_index):
                        report.dropped.append((name, "offline"))
                        continue
                    delay = injector.straggler_delay(name, round_index)
                    if delay > 0:
                        if agg.round_deadline_seconds is not None and \
                                delay > agg.round_deadline_seconds:
                            injector.charge_deadline_miss(
                                name, round_index,
                                agg.round_deadline_seconds)
                            report.dropped.append((name, "deadline"))
                            continue
                        injector.charge_straggler(name, round_index, delay)
                charged = not representative_charged
                representative_charged = True
                tensor = agg.encrypt_tensor(vectors[i], charged=charged)
                message = Message.for_tensor(
                    tensor.materialize(), sender=name, receiver=shard,
                    tag=f"upload.{tag}",
                    ciphertext_bytes=agg.client_engine
                    .nominal_ciphertext_bytes(),
                    packed=agg.packed_serialization)
                admitted = False
                try:
                    self.async_channel.submit(shard, message,
                                              arrival_delay=delay,
                                              tenant=self.tenant)
                    admitted = True
                except AdmissionRejected as rejection:
                    if rejection.reason == REJECT_QUOTA:
                        # This tenant's own token bucket ran dry (the
                        # typed retryable QuotaExceeded, already charged
                        # to the tenant's ledger) -- its blast radius
                        # stays within the tenant by construction.
                        report.dropped.append((name, "quota"))
                    elif rejection.reason == REJECT_OVERLOAD:
                        if injector is not None and not overload_charged:
                            injector.charge_queue_overload(shard,
                                                           round_index)
                            overload_charged = True
                        report.dropped.append((name, "rejected"))
                    elif rejection.reason == REJECT_QUEUE_FULL:
                        # Backpressure: drain the backlog (delivering the
                        # accepted entries) and retry exactly once.
                        self._drain_shard(shard, deadline, shard_uploads,
                                          report, round_index)
                        try:
                            self.async_channel.submit(
                                shard, message, arrival_delay=delay,
                                tenant=self.tenant)
                            admitted = True
                        except AdmissionRejected:
                            report.dropped.append((name, "rejected"))
                    else:
                        report.dropped.append((name, "rejected"))
                if admitted and flood_intensity > 0:
                    self._flood(shard, message, delay, flood_intensity)

        # Phase 2: drain every active shard's backlog before its leaf
        # round (entries past the deadline are shed, never lost).
        for shard in active_shards:
            self._drain_shard(shard, deadline, shard_uploads, report,
                              round_index)

        # Phase 3: leaf rounds -- combine per shard, failing over kills.
        partials: List[Tuple[str, CipherTensor]] = []
        for shard in active_shards:
            uploads = shard_uploads.get(shard, [])
            if not uploads:
                continue
            leaf = self.leaf(shard)
            kill_at = self._scheduled_kill(shard, round_index,
                                           (SHARD_CRASH,))
            if kill_at is not None:
                leaf.kill_after_lsn = kill_at
            try:
                partial = leaf.combine_round(uploads, round_index, tag=tag)
            except CoordinatorKilled as killed:
                successor = self._fail_over_leaf(shard, round_index,
                                                 killed.lsn)
                report.leaf_failovers += 1
                partial = successor.combine_round(uploads, round_index,
                                                  tag=tag)
            finally:
                self.leaves[shard].kill_after_lsn = None
            breaker = self._breaker(shard)
            breaker.record_success()
            report.shard_survivors[shard] = list(
                self.leaves[shard].machine.round.survivors)
            try:
                sent = agg.send_tensor(partial, sender=shard,
                                       receiver=self.root_name,
                                       tag=f"partial.{tag}")
            except ChannelError as error:
                breaker.record_failure()
                if injector is None:
                    raise
                injector.charge_lost_update(
                    shard, round_index, wasted_bytes=error.wasted_bytes)
                for name, _ in uploads:
                    report.dropped.append((name, "lost"))
                report.shard_survivors.pop(shard, None)
                continue
            partials.append((shard, sent))

        survivors = report.survivors
        report.summands = sum(t.meta.summands for _, t in partials)
        if report.summands < required:
            self.last_round = report
            agg.round_cursor = round_index + 1
            raise QuorumError(round_index, survivors, required,
                              len(cohort))

        # Phase 4: root reduction, with its own kill handling.
        kill_at = self._scheduled_kill(self.root_name, round_index,
                                       COORDINATOR_KINDS)
        if kill_at is not None:
            self.root.kill_after_lsn = kill_at
        try:
            result = self.root.reduce_round(partials, round_index, tag=tag)
        except CoordinatorKilled as killed:
            successor = self._fail_over_root(round_index, killed.lsn)
            report.root_failovers += 1
            result = successor.reduce_round(partials, round_index, tag=tag)
        finally:
            self.root.kill_after_lsn = None

        agg.round_cursor = round_index + 1
        agg.last_round = AggregationRound(
            round_index=round_index, survivors=survivors,
            dropped=list(report.dropped), summands=report.summands)
        self.last_round = report
        return result

    def _drain_shard(self, shard: str, deadline: Optional[float],
                     shard_uploads: Dict[str, List[Tuple[str,
                                                         CipherTensor]]],
                     report: ShardRoundReport,
                     round_index: int) -> None:
        """Deliver one shard's backlog into its upload buffer.

        Tenanted services drain only their own entries -- other
        tenants' uploads stay queued untouched, so a noisy neighbour's
        backlog neither delays nor consumes this drain.
        """
        injector = self.aggregator.injector
        breaker = self._breaker(shard)
        outcome = self.async_channel.drain(shard, deadline=deadline,
                                           tenant=self.tenant)
        buffer = shard_uploads.setdefault(shard, [])
        for sender, payload in outcome.delivered:
            buffer.append((sender, payload))
        for sender, _reason in outcome.shed:
            report.dropped.append((sender, "shed"))
        for sender, error in outcome.failed:
            breaker.record_failure()
            if injector is not None:
                injector.charge_lost_update(
                    sender, round_index, wasted_bytes=error.wasted_bytes)
            report.dropped.append((sender, "lost"))

    def _flood(self, shard: str, message: Message, delay: float,
               intensity: int) -> None:
        """Inject ``tenant_flood`` duplicates behind one admitted upload.

        Each duplicate runs the full admission gauntlet under *this*
        tenant's identity: it spends the tenant's quota tokens, fills
        the tenant's slice slots, and any rejection is charged to the
        tenant's own ledger.  Duplicates that do get through are
        deduplicated by the leaf's exactly-once machinery, so a flood
        can waste its own tenant's budget but never corrupt a sum.
        """
        for _ in range(intensity):
            try:
                self.async_channel.submit(shard, message,
                                          arrival_delay=delay,
                                          tenant=self.tenant)
            except AdmissionRejected:
                continue


@dataclass
class TenantRoundOutcome:
    """One tenant's slice of a multi-tenant round.

    Attributes:
        tenant_id: Which tenant the outcome belongs to.
        round_index: The shared round index.
        status: ``ok`` (result present), ``crashed`` (the tenant's
            federation was offline under an injected ``tenant_crash``),
            or ``quorum_failed`` (the tenant's own round aborted below
            quorum -- contained, the other tenants still ran).
        result: The decoded aggregate when ``status == "ok"``.
        report: The tenant service's :class:`ShardRoundReport`.
        detail: Human-readable failure detail (quorum message).
    """

    tenant_id: str
    round_index: int
    status: str
    result: Optional[np.ndarray] = None
    report: Optional[ShardRoundReport] = None
    detail: str = ""


@dataclass
class MultiTenantRoundReport:
    """Everything one shared round did across tenants."""

    round_index: int
    outcomes: Dict[str, TenantRoundOutcome] = field(default_factory=dict)
    active_shards: List[str] = field(default_factory=list)
    rebalance_ops: int = 0


class MultiTenantAggregationService:
    """Many federations multiplexed over one shard pool.

    The multi-tenant tier the ROADMAP's north star asks for: tenants
    share the virtual clock, the elastic :class:`ShardPool`, and one
    :class:`~repro.federation.eventloop.AsyncChannel` ingress -- and
    share *nothing else*.  Each tenant attaches its own
    :class:`~repro.federation.aggregator.SecureAggregator` (own keys,
    own fault injector, own ledger) and gets a tenant-scoped
    :class:`ShardedAggregationService` whose admission, breakers,
    deadlines, and quorum accounting are all partitioned by tenant id.

    Isolation contract (the headline invariant of the tenant tests):
    with tenant A under injected ``tenant_flood`` / ``tenant_crash``
    faults, tenant B's multi-round aggregates are *byte-identical* to a
    solo run of tenant B with the same seeds -- A's faults degrade A
    alone.

    Args:
        registry: The tenant table; iteration order fixes the
            deterministic order tenant rounds run in.
        clock: Shared virtual clock (fresh by default).
        queue_capacity: Shared per-shard ingress bound; each tenant's
            slice of it is its weighted share.
        initial_shards: Pool size before the first rebalance.
        elastic: Rebalance the pool toward ``ceil(sqrt(P))`` for the
            round's total client count ``P`` before each round.
        lease_timeout_seconds / breaker_failure_threshold /
        breaker_cooldown_seconds: Forwarded to each tenant's service.
    """

    def __init__(self, registry: TenantRegistry,
                 clock: Optional[VirtualClock] = None,
                 queue_capacity: int = 64,
                 initial_shards: int = 1,
                 elastic: bool = True,
                 lease_timeout_seconds: float = 30.0,
                 breaker_failure_threshold: int = 3,
                 breaker_cooldown_seconds: float = 60.0):
        if len(registry) == 0:
            raise ValueError("the registry must hold at least one tenant")
        self.registry = registry
        self.clock = clock if clock is not None else VirtualClock()
        self.queue_capacity = queue_capacity
        self.elastic = elastic
        self.lease_timeout_seconds = lease_timeout_seconds
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self.pool = ShardPool(initial_shards=initial_shards)
        #: Pool-level charges (rebalance failovers) land here, not on
        #: any tenant's ledger -- the platform pays for its own faults.
        self.platform_ledger = CostLedger()
        self.async_channel: Optional[AsyncChannel] = None
        self.services: Dict[str, ShardedAggregationService] = {}
        self._active_service: Optional[ShardedAggregationService] = None
        self.pool_failovers = 0
        self.round_reports: List[MultiTenantRoundReport] = []

    def _overloaded(self, shard: str) -> bool:
        """Dispatch the shared ingress' overload probe to the tenant
        whose round is in flight (overload faults are tenant-planned)."""
        service = self._active_service
        if service is None:
            return False
        return service._overloaded(shard)

    def attach(self, tenant_id: str, aggregator: SecureAggregator,
               seed: int = 7) -> ShardedAggregationService:
        """Bind one tenant's data path; returns its scoped service.

        When the registry pins a ``key_fingerprint``, the aggregator's
        client-engine fingerprint must match -- the guard that two
        tenants never mix ciphertexts under each other's keys.
        """
        tenant = self.registry.require(tenant_id)
        if tenant.key_fingerprint is not None:
            actual = aggregator.client_engine.fingerprint().hex()
            if actual != tenant.key_fingerprint:
                raise ValueError(
                    f"tenant {tenant_id!r} pins key fingerprint "
                    f"{tenant.key_fingerprint} but the attached "
                    f"aggregator's key fingerprints to {actual}")
        if self.async_channel is None:
            self.async_channel = AsyncChannel(
                aggregator.channel, self.clock,
                queue_capacity=self.queue_capacity,
                overloaded=self._overloaded, tenants=self.registry)
        service = ShardedAggregationService(
            aggregator, clock=self.clock,
            queue_capacity=self.queue_capacity, seed=seed,
            lease_timeout_seconds=self.lease_timeout_seconds,
            breaker_failure_threshold=self.breaker_failure_threshold,
            breaker_cooldown_seconds=self.breaker_cooldown_seconds,
            async_channel=self.async_channel, tenant=tenant_id,
            pool=self.pool, node_prefix=f"{tenant_id}/")
        self.services[tenant_id] = service
        return service

    # ------------------------------------------------------------------
    # Elastic rebalancing (with pool crash recovery).
    # ------------------------------------------------------------------

    def _rebalance_target(self, cohort_sizes: Mapping[str, int]) -> int:
        """Shard count for this round's total load.

        The square-root policy over the *combined* client count, raised
        so every tenant's cohort fits its own packer's summand capacity
        across the active shards.
        """
        total = sum(cohort_sizes.values())
        if total < 1:
            return len(self.pool.active)
        target = default_num_shards(total)
        for tenant_id, size in cohort_sizes.items():
            packer = self.services[tenant_id].aggregator.packer
            needed = int(math.ceil(size / packer.max_safe_summands()))
            target = max(target, needed)
        return target

    def rebalance(self, target_count: int, round_index: int) -> int:
        """Drive the pool toward ``target_count``, recovering kills.

        A pool killed at a journal record is recovered from its own log
        (replay + orphan migration, exactly like coordinator failover),
        then the same rebalance target is re-applied -- the crash sweep
        asserts the recovered topology and entry routing are
        byte-identical to the uninterrupted run's.
        """
        operations = 0
        for _attempt in range(2):
            try:
                operations += self.pool.rebalance(
                    target_count, round_index,
                    channel=self.async_channel)
                return operations
            except CoordinatorKilled:
                self._recover_pool()
        # Two kills in one rebalance would need a second scheduled
        # fault; the sweep schedules one, so this is unreachable there.
        operations += self.pool.rebalance(target_count, round_index,
                                          channel=self.async_channel)
        return operations

    def _recover_pool(self) -> None:
        """Replay the dead pool's topology journal and adopt the heir."""
        heir = ShardPool.from_bytes(
            self.pool.wal.image(),
            initial_shards=self.pool.initial_shards,
            incarnation=self.pool.incarnation + 1)
        if self.async_channel is not None:
            # Route entries orphaned between the journaled handoff and
            # the crash *before* any further topology change, so the
            # assignment matches the uninterrupted run's.
            heir.migrate_orphans(self.async_channel)
        self.pool = heir
        for service in self.services.values():
            service.pool = heir
        self.pool_failovers += 1
        self.platform_ledger.charge(fault_category("failover"), 0.0,
                                    count=1)

    # ------------------------------------------------------------------
    # The multi-tenant round.
    # ------------------------------------------------------------------

    def run_round(self,
                  tenant_vectors: Mapping[str, Sequence[np.ndarray]],
                  round_index: int, tag: str = "gradients",
                  cohort_sizes: Optional[Mapping[str, int]] = None,
                  ) -> MultiTenantRoundReport:
        """One shared round: rebalance once, then every tenant's round.

        Tenants run in registry order.  A tenant under an injected
        ``tenant_crash`` is skipped (and charged); a tenant under
        ``tenant_flood`` runs with the storm's intensity turned on; a
        tenant whose own round aborts below quorum is recorded as
        ``quorum_failed`` -- and in every case the remaining tenants'
        rounds proceed untouched.
        """
        for tenant_id in tenant_vectors:
            if tenant_id not in self.services:
                raise ValueError(
                    f"tenant {tenant_id!r} has no attached service")
        report = MultiTenantRoundReport(round_index=round_index)
        sizes = {tenant_id: ((cohort_sizes or {}).get(tenant_id)
                             or len(vectors))
                 for tenant_id, vectors in tenant_vectors.items()}
        if self.elastic and sizes:
            report.rebalance_ops = self.rebalance(
                self._rebalance_target(sizes), round_index)
        report.active_shards = list(self.pool.active)

        for tenant in self.registry:
            tenant_id = tenant.tenant_id
            if tenant_id not in tenant_vectors:
                continue
            service = self.services[tenant_id]
            injector = service.aggregator.injector
            if injector is not None \
                    and injector.tenant_crashed(tenant_id, round_index):
                injector.charge_tenant_crash(tenant_id, round_index)
                service.aggregator.round_cursor = round_index + 1
                report.outcomes[tenant_id] = TenantRoundOutcome(
                    tenant_id, round_index, "crashed",
                    detail="tenant offline under injected tenant_crash")
                continue
            flood = (injector.tenant_flood_intensity(tenant_id,
                                                     round_index)
                     if injector is not None else 0)
            if flood > 0:
                injector.charge_tenant_flood(tenant_id, round_index)
            self._active_service = service
            try:
                result = service.run_round(
                    tenant_vectors[tenant_id], tag=tag,
                    round_index=round_index,
                    cohort_size=(cohort_sizes or {}).get(tenant_id),
                    flood_intensity=flood)
            except QuorumError as error:
                report.outcomes[tenant_id] = TenantRoundOutcome(
                    tenant_id, round_index, "quorum_failed",
                    report=service.last_round, detail=str(error))
            else:
                report.outcomes[tenant_id] = TenantRoundOutcome(
                    tenant_id, round_index, "ok", result=result,
                    report=service.last_round)
            finally:
                self._active_service = None
        self.round_reports.append(report)
        return report
