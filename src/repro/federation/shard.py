"""Two-level sharded aggregation: leaf shards, a root, and failover.

The flat :class:`~repro.federation.aggregator.SecureAggregator` and even
the durable coordinator of PR 4 funnel every client upload through one
process -- the topology the paper evaluates at a handful of parties and
the ROADMAP's million-client north star cannot share.  This module adds
the hierarchical tier in between:

- :func:`plan_shards` / :func:`cohort_sample` -- deterministic cohort
  selection per round (master-seed RNG streams) and capacity-aware shard
  sizing: no shard's cohort may exceed the packer's safe summand count,
  because the :class:`~repro.tensor.meta.TensorMeta` algebra accumulates
  summands additively and ``decode_sum`` overflows past
  ``2**overflow_bits``.
- :class:`ShardAggregator` -- a *leaf* coordinator: write-ahead-logs its
  shard's uploads exactly like the durable coordinator, but instead of
  decrypting it commits the homomorphically combined ciphertext
  (``partial_committed``) -- leaves never hold the key.
- :class:`RootCoordinator` -- accepts leaf partials as its uploads,
  journals them, and decrypts in *capacity-bounded segments*: partials
  are greedily grouped so each segment's summand total fits the packer's
  capacity, each segment is decrypted separately, and the decoded sums
  are added in plaintext.  The Eq. 6 offset correction rides the
  metadata per segment, so the segmented result is exactly the flat sum.
- :class:`HierarchicalStandby` -- the PR 4 hot-standby protocol,
  parameterized over the coordinator class so *every leaf* and the root
  each get their own WAL + standby; failover composes hierarchically and
  the crash-consistency sweep holds at both layers.
- :class:`ShardedAggregationService` -- the orchestrator: samples the
  cohort, plans shards, pushes encrypted uploads through the event
  loop's admission control (:mod:`repro.federation.eventloop`), runs the
  leaf rounds (catching kills and failing over per shard), forwards
  partials to the root over the charged channel, and runs the root round
  (same kill handling).  Overload, shedding, and circuit-breaker fencing
  all degrade the round into quorum + Eq. 6 partial aggregation; nothing
  is ever lost silently.

Capacity invariant (property-tested): for any cohort the reduction tree
never combines more summands than ``packer.max_safe_summands()`` in one
ciphertext, and within one segment the sharded sum is bit-identical to
the flat aggregator's sum -- Paillier addition is exact modular
arithmetic, so regrouping cannot change the decoded plaintext.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.federation.aggregator import AggregationRound, SecureAggregator
from repro.federation.channel import ChannelError, Message
from repro.federation.coordinator import (
    CoordinatorError,
    CoordinatorKilled,
    DurableCoordinator,
    LeaseManager,
)
from repro.federation.eventloop import (
    REJECT_OVERLOAD,
    REJECT_QUEUE_FULL,
    AdmissionRejected,
    AsyncChannel,
    VirtualClock,
)
from repro.federation.faults import (
    COORDINATOR_KINDS,
    SHARD_CRASH,
    QuorumError,
)
from repro.federation.serialization import deserialize_tensor, serialize_tensor
from repro.federation.wal import (
    DECRYPT_COMMITTED,
    PARTIAL_COMMITTED,
    QUORUM_REACHED,
    ROUND_CLOSE,
    ROUND_OPEN,
    WriteAheadLog,
)
from repro.ledger import fault_category
from repro.rng import STREAM_MULTIPLIER
from repro.tensor.cipher import CipherTensor

#: Default shard count: ``ceil(sqrt(P))`` balances leaf fan-in against
#: root fan-in, making the root's per-round work grow as ``sqrt(P)``.
def default_num_shards(num_parties: int) -> int:
    """The square-root shard count for ``num_parties`` participants."""
    if num_parties < 1:
        raise ValueError("num_parties must be positive")
    return int(math.ceil(math.sqrt(num_parties)))


def cohort_sample(num_parties: int, cohort_size: int, seed: int,
                  round_index: int) -> List[int]:
    """Sample one round's cohort, deterministically per (seed, round).

    The stream is derived exactly like every other per-round stream in
    the repo (``seed * STREAM_MULTIPLIER + round_index``), so cohorts
    reproduce bit-for-bit across runs and across recovered coordinators.
    Returns sorted party indices.
    """
    if not 1 <= cohort_size <= num_parties:
        raise ValueError(
            f"cohort of {cohort_size} impossible with {num_parties} parties")
    rng = np.random.default_rng(seed * STREAM_MULTIPLIER + round_index)
    chosen = rng.choice(num_parties, size=cohort_size, replace=False)
    return sorted(int(i) for i in chosen)


def plan_shards(cohort: Sequence[int], num_shards: Optional[int] = None,
                max_summands: Optional[int] = None) -> List[List[int]]:
    """Partition a cohort into capacity-respecting shard groups.

    Contiguous, near-equal groups (deterministic: no hashing).  When
    ``max_summands`` is given, the shard count is raised until every
    group fits the ciphertext summand capacity -- the "split the
    reduction" rule the TensorMeta algebra demands.
    """
    parties = list(cohort)
    if not parties:
        raise ValueError("cannot shard an empty cohort")
    count = num_shards if num_shards is not None \
        else default_num_shards(len(parties))
    if count < 1:
        raise ValueError("num_shards must be positive")
    count = min(count, len(parties))
    if max_summands is not None:
        if max_summands < 1:
            raise ValueError("max_summands must be positive")
        needed = int(math.ceil(len(parties) / max_summands))
        count = max(count, needed)
    base, extra = divmod(len(parties), count)
    groups: List[List[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        groups.append(parties[start:start + size])
        start += size
    return [group for group in groups if group]


def segment_partials(partials: Sequence[CipherTensor],
                     max_summands: int) -> List[List[CipherTensor]]:
    """Greedily group partials so each segment fits the summand capacity.

    Every partial must fit on its own (leaf planning guarantees it);
    segments preserve input order so the reduction stays deterministic.
    """
    if max_summands < 1:
        raise ValueError("max_summands must be positive")
    segments: List[List[CipherTensor]] = []
    current: List[CipherTensor] = []
    current_summands = 0
    for tensor in partials:
        summands = tensor.meta.summands
        if summands > max_summands:
            raise OverflowError(
                f"one partial already carries {summands} summands, over "
                f"the {max_summands} capacity -- the leaf plan is broken")
        if current and current_summands + summands > max_summands:
            segments.append(current)
            current = []
            current_summands = 0
        current.append(tensor)
        current_summands += summands
    if current:
        segments.append(current)
    return segments


class ShardAggregator(DurableCoordinator):
    """A leaf shard's coordinator: combines ciphertexts, never decrypts.

    Shares the durable coordinator's whole journaling stack -- WAL,
    state machine, digest trail, incarnation fencing, ``kill_after_lsn``
    -- and replaces the decrypting round with :meth:`combine_round`,
    which commits the homomorphically combined ciphertext frame
    (``partial_committed``) instead of a plaintext result.  A leaf
    killed at any record boundary is recovered (or failed over) with the
    exact accepted ciphertexts replayed from its own log.
    """

    def combine_round(self, uploads: Sequence[Tuple[str, CipherTensor]],
                      round_index: int, tag: str = "gradients",
                      quorum: int = 1) -> CipherTensor:
        """One write-ahead-logged leaf round; returns the partial.

        Args:
            uploads: ``(client, tensor)`` pairs the event loop delivered
                to this shard, in delivery order.
            quorum: Minimum accepted uploads for the shard to produce a
                partial (1 by default -- overall quorum is the service's
                concern, per Eq. 6 partial-aggregation semantics).
        """
        agg = self.aggregator
        if quorum < 1:
            raise ValueError("quorum must be at least 1")

        state = self.machine.round
        if state is not None and state.closed \
                and state.round_index == round_index:
            if state.aborted == "quorum":
                raise QuorumError(round_index, state.survivors, quorum,
                                  state.num_clients)
            return self._partial_tensor(state.partial_frame)
        resuming = (state is not None and not state.closed
                    and state.round_index == round_index)
        if not resuming:
            self._log(ROUND_OPEN, round_index, tag=f"shard.{tag}",
                      num_clients=len(uploads), quorum=quorum)
        state = self.machine.round

        if not state.quorum_logged:
            for client, tensor in uploads:
                if self.machine.has_upload(round_index, client):
                    continue  # journaled before a crash: reuse verbatim
                agg.validate_ciphertexts(tensor)
                self.accept_upload(round_index, client, tensor)
            if len(state.survivors) < quorum:
                self._log(ROUND_CLOSE, round_index, aborted="quorum")
                raise QuorumError(round_index, state.survivors, quorum,
                                  len(uploads))
            accepted = self.machine.upload_tensors()
            summands = sum(t.meta.summands for t in accepted)
            # Honor the *uploads'* codec: an interleaved layout affords
            # more summands than the dense default, a fact the tensors
            # themselves carry via their TensorMeta codec identity.
            capacity = (accepted[0].meta.summand_capacity() if accepted
                        else agg.packer.max_safe_summands())
            if summands > capacity:
                raise OverflowError(
                    f"shard cohort carries {summands} summands, over the "
                    f"{capacity} capacity -- plan_shards must split it")
            self._log(QUORUM_REACHED, round_index,
                      survivors=list(state.survivors), summands=summands)

        if state.partial_frame is None:
            tensors = self.machine.upload_tensors(
                engine=agg.server_engine)
            partial = agg._server_sum(tensors)
            self._log(PARTIAL_COMMITTED, round_index,
                      frame=serialize_tensor(partial.materialize()).hex())
        if not state.closed:
            self._log(ROUND_CLOSE, round_index)
        return self._partial_tensor(state.partial_frame)

    def _partial_tensor(self, frame: Optional[str]) -> CipherTensor:
        """The committed partial, rebound to the server engine.

        Always rebuilt from the journaled frame, so an uninterrupted
        run and a recovered one return byte-identical partials.
        """
        if frame is None:
            raise CoordinatorError(
                "round closed without a committed partial")
        tensor = deserialize_tensor(bytes.fromhex(frame))
        return CipherTensor(tensor.meta, words=list(tensor.words),
                            engine=self.aggregator.server_engine)


class RootCoordinator(DurableCoordinator):
    """The root of the reduction tree: combines and decrypts partials.

    Leaf partials are its uploads (dedupe key ``r{round}:{shard}``, same
    exactly-once machinery).  Decryption is *segmented*: partials are
    grouped under the summand capacity, each segment homomorphically
    summed and decrypted separately, and the decoded sums added in
    plaintext -- the only way a cohort larger than one ciphertext's
    capacity can be reduced at all.
    """

    def reduce_round(self, partials: Sequence[Tuple[str, CipherTensor]],
                     round_index: int, tag: str = "gradients",
                     quorum: int = 1) -> np.ndarray:
        """One write-ahead-logged root round; returns the decoded sum."""
        agg = self.aggregator
        if quorum < 1:
            raise ValueError("quorum must be at least 1")

        state = self.machine.round
        if state is not None and state.closed \
                and state.round_index == round_index:
            if state.aborted == "quorum":
                raise QuorumError(round_index, state.survivors, quorum,
                                  state.num_clients)
            return np.asarray(state.result, dtype=np.float64)
        resuming = (state is not None and not state.closed
                    and state.round_index == round_index)
        if not resuming:
            self._log(ROUND_OPEN, round_index, tag=f"root.{tag}",
                      num_clients=len(partials), quorum=quorum)
        state = self.machine.round

        if not state.quorum_logged:
            for shard, tensor in partials:
                if self.machine.has_upload(round_index, shard):
                    continue
                agg.validate_ciphertexts(tensor)
                self.accept_upload(round_index, shard, tensor)
            if len(state.survivors) < quorum:
                self._log(ROUND_CLOSE, round_index, aborted="quorum")
                raise QuorumError(round_index, state.survivors, quorum,
                                  len(partials))
            accepted = self.machine.upload_tensors()
            summands = sum(t.meta.summands for t in accepted)
            self._log(QUORUM_REACHED, round_index,
                      survivors=list(state.survivors), summands=summands)

        if state.result is None:
            tensors = self.machine.upload_tensors(
                engine=agg.server_engine)
            decoded = self._segmented_decrypt(tensors)
            # Journaling the decoded aggregate is the WAL's purpose: a
            # successor serves the round without re-decrypting.
            self._log(DECRYPT_COMMITTED, round_index,  # flcheck: allow[plaintext-wire]
                      result=list(np.asarray(decoded).ravel()),
                      summands=state.summands)
        if not state.closed:
            self._log(ROUND_CLOSE, round_index)
        return np.asarray(state.result, dtype=np.float64)

    def _segmented_decrypt(self,
                           tensors: Sequence[CipherTensor]) -> np.ndarray:
        """Capacity-bounded reduction: sum within segments, add decoded."""
        agg = self.aggregator
        # Per-codec capacity from the partials themselves (guard-banded
        # layouts segment less often than the dense default would).
        capacity = (tensors[0].meta.summand_capacity() if tensors
                    else agg.packer.max_safe_summands())
        segments = segment_partials(tensors, capacity)
        total: Optional[np.ndarray] = None
        for segment in segments:
            combined = agg._server_sum(list(segment))
            decoded = agg.decrypt_tensor(combined, charged=True)
            total = decoded if total is None else total + decoded
        if total is None:
            raise CoordinatorError("no partials to decrypt")
        return total


class HierarchicalStandby:
    """A hot standby for one node of the reduction tree (leaf or root).

    The PR 4 standby protocol, parameterized over the coordinator class:
    tails the node's WAL into a shadow state machine and, once the lease
    lapses, acquires a bumped incarnation and resumes from the log.
    Takeover asserts the shadow digest matches a fresh replay -- the
    standby really was hot.

    Args:
        aggregator: The data path the successor will drive.
        lease_manager: Arbitration shared with the node's primary.
        name: Standby identity.
        coordinator_cls: :class:`ShardAggregator` for a leaf,
            :class:`RootCoordinator` for the root.
    """

    def __init__(self, aggregator: SecureAggregator,
                 lease_manager: LeaseManager, name: str,
                 coordinator_cls: Type[DurableCoordinator]):
        from repro.federation.coordinator import RoundStateMachine

        self.aggregator = aggregator
        self.lease_manager = lease_manager
        self.name = name
        self.coordinator_cls = coordinator_cls
        self.machine = RoundStateMachine()
        self._tail_lsn = 0

    def tail(self, image: bytes) -> int:
        """Apply records appended since the last tail; returns how many."""
        log = WriteAheadLog.from_bytes(image)
        fresh = log.records_since(self._tail_lsn)
        for record in fresh:
            self.machine.apply(record)
        self._tail_lsn += len(fresh)
        return len(fresh)

    def take_over(self, image: bytes) -> DurableCoordinator:
        """Acquire the lapsed lease and resume from the log."""
        self.tail(image)
        lease = self.lease_manager.acquire(self.name)
        wal = WriteAheadLog.from_bytes(image)
        successor = self.coordinator_cls(
            self.aggregator, wal=wal, name=self.name,
            incarnation=lease.incarnation,
            lease_manager=self.lease_manager)
        if successor.machine.digest() != self.machine.digest():
            raise CoordinatorError(
                "standby shadow state diverged from the log at takeover")
        return successor


@dataclass
class FailoverRecord:
    """One node death the service failed over.

    Attributes:
        node: ``shard-<i>`` for a leaf, ``root`` for the root.
        round_index: Round in flight when the kill fired.
        lsn: Last WAL record the dead node durably appended.
        incarnation: The successor's fencing incarnation.
        recovered_digest: The successor's state digest right after
            replaying the dead node's log -- compared against the
            uninterrupted run's digest at the same ``lsn`` by the
            sharded crash-consistency sweep.
    """

    node: str
    round_index: int
    lsn: int
    incarnation: int
    recovered_digest: int


@dataclass
class ShardRoundReport:
    """Outcome of one sharded aggregation round.

    Every party in the cohort lands in exactly one bucket: a shard's
    survivor list, or :attr:`dropped` with a reason (``offline``,
    ``deadline``, ``fenced``, ``rejected``, ``shed``, ``lost``) -- the
    no-silent-loss invariant, asserted by the overload tests.
    """

    round_index: int
    cohort: List[str] = field(default_factory=list)
    shard_groups: Dict[str, List[str]] = field(default_factory=dict)
    shard_survivors: Dict[str, List[str]] = field(default_factory=dict)
    dropped: List[Tuple[str, str]] = field(default_factory=list)
    fenced_shards: List[str] = field(default_factory=list)
    summands: int = 0
    leaf_failovers: int = 0
    root_failovers: int = 0

    @property
    def survivors(self) -> List[str]:
        """Every party whose update reached the root, in shard order."""
        names: List[str] = []
        for shard in sorted(self.shard_survivors):
            names.extend(self.shard_survivors[shard])
        return names

    @property
    def partial(self) -> bool:
        """Whether any cohort member missed the round."""
        return bool(self.dropped)


class ShardedAggregationService:
    """The two-level service: event loop, leaf shards, root, failover.

    Args:
        aggregator: The flat data path (engines, packer, channel, fault
            injector, quorum defaults) every node shares in-process.
        clock: The virtual clock driving admission, deadlines and
            leases; a fresh one by default.
        num_shards: Fixed shard count; default ``ceil(sqrt(cohort))``
            per round, always raised to respect summand capacity.
        queue_capacity: Per-shard ingress bound (the memory guarantee).
        seed: Master seed for cohort sampling streams.
        lease_timeout_seconds: Leaf/root lease duration; failover
            advances the clock past it.
        breaker_failure_threshold / breaker_cooldown_seconds: Per-shard
            circuit-breaker tuning.
    """

    def __init__(self, aggregator: SecureAggregator,
                 clock: Optional[VirtualClock] = None,
                 num_shards: Optional[int] = None,
                 queue_capacity: int = 64, seed: int = 7,
                 lease_timeout_seconds: float = 30.0,
                 breaker_failure_threshold: int = 3,
                 breaker_cooldown_seconds: float = 60.0):
        self.aggregator = aggregator
        self.clock = clock if clock is not None else VirtualClock()
        self.num_shards = num_shards
        self.queue_capacity = queue_capacity
        self.seed = seed
        self.lease_timeout_seconds = lease_timeout_seconds
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self._current_round = 0
        self.async_channel = AsyncChannel(
            aggregator.channel, self.clock,
            queue_capacity=queue_capacity, overloaded=self._overloaded)
        self.leaves: Dict[str, ShardAggregator] = {}
        self._leaf_standbys: Dict[str, HierarchicalStandby] = {}
        self._leaf_leases: Dict[str, LeaseManager] = {}
        self.root_name = "root"
        self._root_lease = LeaseManager(
            timeout_seconds=lease_timeout_seconds, clock=self._now)
        self._root_lease.acquire(self.root_name)
        self.root: RootCoordinator = RootCoordinator(
            aggregator, wal=WriteAheadLog(), name=self.root_name,
            lease_manager=self._root_lease)
        self._root_standby = HierarchicalStandby(
            aggregator, self._root_lease, name=f"{self.root_name}-standby",
            coordinator_cls=RootCoordinator)
        self.last_round: Optional[ShardRoundReport] = None
        #: Every failover the service performed, for the crash sweeps.
        self.failover_log: List[FailoverRecord] = []

    def _now(self) -> float:
        return self.clock.now

    def _overloaded(self, shard: str) -> bool:
        injector = self.aggregator.injector
        return (injector is not None
                and injector.queue_overloaded(shard, self._current_round))

    # ------------------------------------------------------------------
    # Node registry.
    # ------------------------------------------------------------------

    def leaf(self, shard: str) -> ShardAggregator:
        """The shard's leaf coordinator (created with WAL + standby)."""
        if shard not in self.leaves:
            lease = LeaseManager(
                timeout_seconds=self.lease_timeout_seconds,
                clock=self._now)
            lease.acquire(f"{shard}-primary")
            self._leaf_leases[shard] = lease
            self.leaves[shard] = ShardAggregator(
                self.aggregator, wal=WriteAheadLog(),
                name=f"{shard}-primary", lease_manager=lease)
            self._leaf_standbys[shard] = HierarchicalStandby(
                self.aggregator, lease, name=f"{shard}-standby",
                coordinator_cls=ShardAggregator)
        return self.leaves[shard]

    def leaf_standby(self, shard: str) -> HierarchicalStandby:
        """The shard's hot standby (tails the leaf WAL)."""
        self.leaf(shard)
        return self._leaf_standbys[shard]

    @property
    def root_standby(self) -> HierarchicalStandby:
        return self._root_standby

    # ------------------------------------------------------------------
    # Failover plumbing.
    # ------------------------------------------------------------------

    def _charge_fault(self, kind: str, party: str,
                      round_index: int) -> None:
        injector = self.aggregator.injector
        if injector is not None:
            injector._record(kind, party, round_index)
        else:
            self.aggregator.channel.ledger.charge(
                fault_category(kind), 0.0, count=1)

    def _fail_over_leaf(self, shard: str, round_index: int,
                        lsn: int) -> ShardAggregator:
        """Promote the shard's standby over the dead primary's log."""
        dead = self.leaves[shard]
        image = dead.wal.image()
        standby = self._leaf_standbys[shard]
        standby.tail(image)
        lease = self._leaf_leases[shard]
        if not lease.expired():
            self.clock.advance(lease.timeout_seconds)
        successor = standby.take_over(image)
        assert isinstance(successor, ShardAggregator)
        self.leaves[shard] = successor
        self._leaf_standbys[shard] = HierarchicalStandby(
            self.aggregator, lease,
            name=f"{shard}-standby-{successor.incarnation}",
            coordinator_cls=ShardAggregator)
        self._charge_fault(SHARD_CRASH, shard, round_index)
        self.failover_log.append(FailoverRecord(
            node=shard, round_index=round_index, lsn=lsn,
            incarnation=successor.incarnation,
            recovered_digest=successor.machine.digest()))
        return successor

    def _fail_over_root(self, round_index: int,
                        lsn: int) -> RootCoordinator:
        """Promote the root standby over the dead root's log."""
        image = self.root.wal.image()
        self._root_standby.tail(image)
        if not self._root_lease.expired():
            self.clock.advance(self._root_lease.timeout_seconds)
        successor = self._root_standby.take_over(image)
        assert isinstance(successor, RootCoordinator)
        self.root = successor
        self._root_standby = HierarchicalStandby(
            self.aggregator, self._root_lease,
            name=f"{self.root_name}-standby-{successor.incarnation}",
            coordinator_cls=RootCoordinator)
        self._charge_fault("failover", self.root_name, round_index)
        self.failover_log.append(FailoverRecord(
            node=self.root_name, round_index=round_index, lsn=lsn,
            incarnation=successor.incarnation,
            recovered_digest=successor.machine.digest()))
        return successor

    def _scheduled_kill(self, party: str, round_index: int,
                        kinds: Tuple[str, ...]) -> Optional[int]:
        injector = self.aggregator.injector
        if injector is None:
            return None
        for event in injector.plan.events:
            if event.kind in kinds and event.party == party \
                    and event.round_index == round_index:
                return event.after_record
        return None

    # ------------------------------------------------------------------
    # The sharded round.
    # ------------------------------------------------------------------

    def run_round(self, client_vectors: Sequence[np.ndarray],
                  tag: str = "gradients",
                  round_index: Optional[int] = None,
                  cohort_size: Optional[int] = None,
                  min_quorum: Optional[int] = None) -> np.ndarray:
        """One sharded aggregation round; returns the slot-wise sum.

        Cohort sampling, shard planning, admission control, deadline
        shedding, leaf combination, root reduction -- with per-shard and
        root failover handled in place.  Parties lost anywhere along the
        path degrade the round into Eq. 6 partial aggregation; the round
        only fails (``QuorumError``) below ``min_quorum`` survivors.
        """
        agg = self.aggregator
        vectors = [np.asarray(v, dtype=np.float64)
                   for v in client_vectors]
        if not vectors:
            raise ValueError("run_round needs at least one client vector")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError("client vectors must share a length")
        if round_index is None:
            round_index = agg.round_cursor
        self._current_round = round_index

        if cohort_size is not None and cohort_size < len(vectors):
            cohort = cohort_sample(len(vectors), cohort_size, self.seed,
                                   round_index)
        else:
            cohort = list(range(len(vectors)))
        required = min_quorum if min_quorum is not None else agg.min_quorum
        if required is None:
            required = len(cohort)
        if not 1 <= required <= len(cohort):
            raise ValueError(
                f"quorum {required} impossible with a cohort of "
                f"{len(cohort)}")

        groups = plan_shards(cohort, self.num_shards,
                             max_summands=agg.packer.max_safe_summands())
        report = ShardRoundReport(
            round_index=round_index,
            cohort=[f"client-{i}" for i in cohort])
        report.shard_groups = {
            f"shard-{s}": [f"client-{i}" for i in group]
            for s, group in enumerate(groups)}
        deadline = (self.clock.now + agg.round_deadline_seconds
                    if agg.round_deadline_seconds is not None else None)
        injector = agg.injector

        # Phase 1: admission -- encrypt and submit through the event loop.
        shard_uploads: Dict[str, List[Tuple[str, CipherTensor]]] = {}
        representative_charged = False
        active_shards: List[str] = []
        for s_index, group in enumerate(groups):
            shard = f"shard-{s_index}"
            breaker = self.async_channel.register_shard(
                shard,
                failure_threshold=self.breaker_failure_threshold,
                cooldown_seconds=self.breaker_cooldown_seconds)
            if not breaker.allow():
                report.fenced_shards.append(shard)
                for i in group:
                    report.dropped.append((f"client-{i}", "fenced"))
                continue
            active_shards.append(shard)
            overload_charged = False
            for i in group:
                name = f"client-{i}"
                delay = 0.0
                if injector is not None:
                    if not injector.is_alive(name, round_index):
                        report.dropped.append((name, "offline"))
                        continue
                    delay = injector.straggler_delay(name, round_index)
                    if delay > 0:
                        if agg.round_deadline_seconds is not None and \
                                delay > agg.round_deadline_seconds:
                            injector.charge_deadline_miss(
                                name, round_index,
                                agg.round_deadline_seconds)
                            report.dropped.append((name, "deadline"))
                            continue
                        injector.charge_straggler(name, round_index, delay)
                charged = not representative_charged
                representative_charged = True
                tensor = agg.encrypt_tensor(vectors[i], charged=charged)
                message = Message.for_tensor(
                    tensor.materialize(), sender=name, receiver=shard,
                    tag=f"upload.{tag}",
                    ciphertext_bytes=agg.client_engine
                    .nominal_ciphertext_bytes(),
                    packed=agg.packed_serialization)
                try:
                    self.async_channel.submit(shard, message,
                                              arrival_delay=delay)
                except AdmissionRejected as rejection:
                    if rejection.reason == REJECT_OVERLOAD:
                        if injector is not None and not overload_charged:
                            injector.charge_queue_overload(shard,
                                                           round_index)
                            overload_charged = True
                        report.dropped.append((name, "rejected"))
                        continue
                    if rejection.reason == REJECT_QUEUE_FULL:
                        # Backpressure: drain the backlog (delivering the
                        # accepted entries) and retry exactly once.
                        self._drain_shard(shard, deadline, shard_uploads,
                                          report, round_index)
                        try:
                            self.async_channel.submit(
                                shard, message, arrival_delay=delay)
                        except AdmissionRejected:
                            report.dropped.append((name, "rejected"))
                        continue
                    report.dropped.append((name, "rejected"))

        # Phase 2: drain every active shard's backlog before its leaf
        # round (entries past the deadline are shed, never lost).
        for shard in active_shards:
            self._drain_shard(shard, deadline, shard_uploads, report,
                              round_index)

        # Phase 3: leaf rounds -- combine per shard, failing over kills.
        partials: List[Tuple[str, CipherTensor]] = []
        for shard in active_shards:
            uploads = shard_uploads.get(shard, [])
            if not uploads:
                continue
            leaf = self.leaf(shard)
            kill_at = self._scheduled_kill(shard, round_index,
                                           (SHARD_CRASH,))
            if kill_at is not None:
                leaf.kill_after_lsn = kill_at
            try:
                partial = leaf.combine_round(uploads, round_index, tag=tag)
            except CoordinatorKilled as killed:
                successor = self._fail_over_leaf(shard, round_index,
                                                 killed.lsn)
                report.leaf_failovers += 1
                partial = successor.combine_round(uploads, round_index,
                                                  tag=tag)
            finally:
                self.leaves[shard].kill_after_lsn = None
            breaker = self.async_channel.breakers[shard]
            breaker.record_success()
            report.shard_survivors[shard] = list(
                self.leaves[shard].machine.round.survivors)
            try:
                sent = agg.send_tensor(partial, sender=shard,
                                       receiver=self.root_name,
                                       tag=f"partial.{tag}")
            except ChannelError as error:
                breaker.record_failure()
                if injector is None:
                    raise
                injector.charge_lost_update(
                    shard, round_index, wasted_bytes=error.wasted_bytes)
                for name, _ in uploads:
                    report.dropped.append((name, "lost"))
                report.shard_survivors.pop(shard, None)
                continue
            partials.append((shard, sent))

        survivors = report.survivors
        report.summands = sum(t.meta.summands for _, t in partials)
        if report.summands < required:
            self.last_round = report
            agg.round_cursor = round_index + 1
            raise QuorumError(round_index, survivors, required,
                              len(cohort))

        # Phase 4: root reduction, with its own kill handling.
        kill_at = self._scheduled_kill(self.root_name, round_index,
                                       COORDINATOR_KINDS)
        if kill_at is not None:
            self.root.kill_after_lsn = kill_at
        try:
            result = self.root.reduce_round(partials, round_index, tag=tag)
        except CoordinatorKilled as killed:
            successor = self._fail_over_root(round_index, killed.lsn)
            report.root_failovers += 1
            result = successor.reduce_round(partials, round_index, tag=tag)
        finally:
            self.root.kill_after_lsn = None

        agg.round_cursor = round_index + 1
        agg.last_round = AggregationRound(
            round_index=round_index, survivors=survivors,
            dropped=list(report.dropped), summands=report.summands)
        self.last_round = report
        return result

    def _drain_shard(self, shard: str, deadline: Optional[float],
                     shard_uploads: Dict[str, List[Tuple[str,
                                                         CipherTensor]]],
                     report: ShardRoundReport,
                     round_index: int) -> None:
        """Deliver one shard's backlog into its upload buffer."""
        injector = self.aggregator.injector
        breaker = self.async_channel.breakers[shard]
        outcome = self.async_channel.drain(shard, deadline=deadline)
        buffer = shard_uploads.setdefault(shard, [])
        for sender, payload in outcome.delivered:
            buffer.append((sender, payload))
        for sender, _reason in outcome.shed:
            report.dropped.append((sender, "shed"))
        for sender, error in outcome.failed:
            breaker.record_failure()
            if injector is not None:
                injector.charge_lost_update(
                    sender, round_index, wasted_bytes=error.wasted_bytes)
            report.dropped.append((sender, "lost"))
