"""Federated-learning substrate (paper Sec. III-A, Fig. 2).

A FATE-like in-process federation: parties exchange serialized messages
through a byte-counting channel, gradients travel encrypted through the
secure aggregation pipeline, and every operation charges the shared cost
ledger so the benchmark harness can read epoch times and component splits.

- :mod:`repro.federation.channel` -- the client<->server network model.
- :mod:`repro.federation.aggregator` -- encode -> pack -> encrypt ->
  aggregate -> decrypt -> decode secure federated averaging.
- :mod:`repro.federation.runtime` -- wires a system configuration
  (FATE / HAFLO / FLBooster / ablations) into engines, channel and packer.
- :mod:`repro.federation.metrics` -- ledger re-exports and epoch reports.
- :mod:`repro.federation.faults` -- seeded fault injection (crashes,
  dropouts, stragglers, loss, corruption, coordinator kills),
  retry/backoff policy and quorum semantics for fault-tolerant
  aggregation.
- :mod:`repro.federation.wal` -- the coordinator's CRC-framed
  write-ahead log with torn-tail detection on replay.
- :mod:`repro.federation.coordinator` -- the durable round state
  machine, exactly-once upload dedupe, lease-based hot-standby
  failover.
- :mod:`repro.federation.eventloop` -- the deterministic event loop:
  virtual clock, bounded per-shard ingress queues, admission control,
  deadline shedding, per-shard circuit breakers.
- :mod:`repro.federation.shard` -- two-level sharded aggregation (leaf
  shards combine ciphertexts, the root decrypts in capacity-bounded
  segments) with per-node WAL + standby failover, the WAL-journaled
  elastic :class:`~repro.federation.shard.ShardPool`, and the
  multi-tenant orchestrator multiplexing many federations over it.
- :mod:`repro.federation.tenancy` -- tenant registry, token-bucket
  quotas, and weighted-fair scheduling primitives.
"""

from repro.federation.channel import (
    Channel,
    ChannelError,
    Message,
    payload_checksum,
)
from repro.federation.aggregator import AggregationRound, SecureAggregator
from repro.federation.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    QuorumError,
    RetryPolicy,
)
from repro.federation.coordinator import (
    CoordinatorError,
    CoordinatorKilled,
    DurableCoordinator,
    InvalidTransitionError,
    Lease,
    LeaseError,
    LeaseManager,
    RoundStateMachine,
    StaleIncarnationError,
    StandbyCoordinator,
    recover_coordinator,
)
from repro.federation.eventloop import (
    AdmissionRejected,
    AsyncChannel,
    CircuitBreaker,
    DrainOutcome,
    QuotaExceeded,
    ShardQueueStats,
    TenantQueueStats,
    VirtualClock,
)
from repro.federation.shard import (
    FailoverRecord,
    HierarchicalStandby,
    MultiTenantAggregationService,
    MultiTenantRoundReport,
    RootCoordinator,
    ShardAggregator,
    ShardedAggregationService,
    ShardPool,
    ShardRoundReport,
    TenantRoundOutcome,
    cohort_sample,
    default_num_shards,
    plan_shards,
    segment_partials,
)
from repro.federation.tenancy import (
    Tenant,
    TenantRegistry,
    TokenBucket,
    UnknownTenantError,
    tenant_key_fingerprint,
    weighted_fair_order,
)
from repro.federation.runtime import FederationRuntime, SystemConfig
from repro.federation.wal import (
    WalError,
    WalRecord,
    WriteAheadLog,
    replay_wal,
)
from repro.federation.metrics import EpochReport, FaultReport, flop_seconds
from repro.federation.parties import (
    ClientParty,
    AggregatorParty,
    SecureAveragingJob,
)
from repro.federation.intersection import RsaIntersection
from repro.federation.topology import ClusterTopology, PAPER_TOPOLOGY
from repro.federation.privacy_audit import (
    audit_channel,
    assert_vertical_privacy,
    AuditReport,
)

__all__ = [
    "Channel",
    "ChannelError",
    "Message",
    "payload_checksum",
    "AggregationRound",
    "SecureAggregator",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "QuorumError",
    "RetryPolicy",
    "FederationRuntime",
    "SystemConfig",
    "CoordinatorError",
    "CoordinatorKilled",
    "DurableCoordinator",
    "InvalidTransitionError",
    "Lease",
    "LeaseError",
    "LeaseManager",
    "RoundStateMachine",
    "StaleIncarnationError",
    "StandbyCoordinator",
    "recover_coordinator",
    "AdmissionRejected",
    "AsyncChannel",
    "CircuitBreaker",
    "DrainOutcome",
    "QuotaExceeded",
    "ShardQueueStats",
    "TenantQueueStats",
    "VirtualClock",
    "FailoverRecord",
    "HierarchicalStandby",
    "MultiTenantAggregationService",
    "MultiTenantRoundReport",
    "RootCoordinator",
    "ShardAggregator",
    "ShardedAggregationService",
    "ShardPool",
    "ShardRoundReport",
    "TenantRoundOutcome",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "UnknownTenantError",
    "tenant_key_fingerprint",
    "weighted_fair_order",
    "cohort_sample",
    "default_num_shards",
    "plan_shards",
    "segment_partials",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
    "EpochReport",
    "flop_seconds",
    "ClientParty",
    "AggregatorParty",
    "SecureAveragingJob",
    "RsaIntersection",
    "ClusterTopology",
    "PAPER_TOPOLOGY",
    "audit_channel",
    "assert_vertical_privacy",
    "AuditReport",
]
