"""System configurations and runtime wiring (paper Sec. VI competitors).

:class:`SystemConfig` captures what distinguishes the compared systems --
where HE runs (CPU vs GPU), whether the GPU resource manager is active,
whether batch compression is applied, and the wire format -- and
:class:`FederationRuntime` turns a configuration into live engines, a
channel, a packing plan and a fresh-ledger-per-epoch lifecycle.

The five standard configurations (module constants) are the paper's:

- ``FATE_SYSTEM``      -- CPU HE, per-element objects, no compression.
- ``HAFLO_SYSTEM``     -- GPU HE without the resource manager, no
  compression (the strongest prior baseline).
- ``FLBOOSTER_SYSTEM`` -- GPU HE with the resource manager + batch
  compression (the paper's system).
- ``WITHOUT_GHE``      -- FLBooster minus the GPU (Table V ablation).
- ``WITHOUT_BC``       -- FLBooster minus compression (Table V ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.engine import HeEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.crypto.keys import PaillierKeypair, generate_paillier_keypair
from repro.federation.aggregator import SecureAggregator
from repro.federation.channel import Channel
from repro.federation.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.gpu.device import SimulatedGpu
from repro.gpu.kernels import GpuKernels
from repro.gpu.resource_manager import ResourceManager
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker, PackingPlan


@dataclass(frozen=True)
class SystemConfig:
    """One point in the paper's system-comparison space.

    Attributes:
        name: Display name.
        gpu_he: Run HE on the (simulated) GPU instead of the CPU.
        managed_gpu: Enable the resource manager (FLBooster) or not
            (HAFLO-style naive launches).
        batch_compression: Pack gradients per Eq. 9.
        packed_serialization: Ship binary packed arrays instead of
            per-element serialized objects.
        r_bits: Quantization value bits.  Compression configs use the
            paper's 30+2 layout; uncompressed configs encode at 52 bits
            (effectively lossless, matching FATE's float encoding
            fidelity).
    """

    name: str
    gpu_he: bool
    managed_gpu: bool
    batch_compression: bool
    packed_serialization: bool
    r_bits: int

    def with_name(self, name: str) -> "SystemConfig":
        """Copy under a different display name."""
        return replace(self, name=name)


FATE_SYSTEM = SystemConfig(
    name="FATE", gpu_he=False, managed_gpu=False,
    batch_compression=False, packed_serialization=False, r_bits=52)

HAFLO_SYSTEM = SystemConfig(
    name="HAFLO", gpu_he=True, managed_gpu=False,
    batch_compression=False, packed_serialization=False, r_bits=52)

FLBOOSTER_SYSTEM = SystemConfig(
    name="FLBooster", gpu_he=True, managed_gpu=True,
    batch_compression=True, packed_serialization=True, r_bits=30)

WITHOUT_GHE = SystemConfig(
    name="w/o GHE", gpu_he=False, managed_gpu=False,
    batch_compression=True, packed_serialization=True, r_bits=30)

WITHOUT_BC = SystemConfig(
    name="w/o BC", gpu_he=True, managed_gpu=True,
    batch_compression=False, packed_serialization=False, r_bits=52)

STANDARD_SYSTEMS = (FATE_SYSTEM, HAFLO_SYSTEM, FLBOOSTER_SYSTEM)
ABLATION_SYSTEMS = (FLBOOSTER_SYSTEM, WITHOUT_GHE, WITHOUT_BC)

#: Every named configuration, addressable by display name -- the handle
#: simulation traces and the CLI use to stay JSON-serializable.
SYSTEMS_BY_NAME: Dict[str, SystemConfig] = {
    config.name: config
    for config in (FATE_SYSTEM, HAFLO_SYSTEM, FLBOOSTER_SYSTEM,
                   WITHOUT_GHE, WITHOUT_BC)
}


def system_by_name(name: str) -> SystemConfig:
    """Look up a standard configuration by display name."""
    try:
        return SYSTEMS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown system {name!r}; choose from "
                       f"{sorted(SYSTEMS_BY_NAME)}") from None

#: Keypair cache: generation dominates small-run setup time and the keys
#: carry no state, so benchmark sweeps share them.
_KEYPAIR_CACHE: Dict[Tuple[int, int], PaillierKeypair] = {}


def cached_keypair(key_bits: int, seed: int = 7) -> PaillierKeypair:
    """Deterministic, cached Paillier keypair for experiments."""
    cache_key = (key_bits, seed)
    if cache_key not in _KEYPAIR_CACHE:
        _KEYPAIR_CACHE[cache_key] = generate_paillier_keypair(
            key_bits, rng=LimbRandom(seed=seed))
    return _KEYPAIR_CACHE[cache_key]


class FederationRuntime:
    """Live wiring of one system configuration.

    Args:
        config: The system being modelled.
        num_clients: Participant count ``p`` (fixes overflow bits).
        key_bits: Nominal key size charged by the cost model.
        physical_key_bits: Key size the mathematics actually runs at;
            defaults to ``key_bits`` (full fidelity).  Benchmarks pass a
            reduced size to keep wall-clock runs fast (DESIGN.md).
        profile: Hardware constants.
        seed: Determinism seed for keys and randomizers.
        alpha: Gradient bound for the quantization scheme.
        randomizer_pool_size: Engine speed knob (0 = fully fresh
            randomizers; charged costs are unaffected either way).
        bc_capacity: ``"nominal"`` (default) sizes packing by the nominal
            key so ciphertext counts and compression ratios are exact at
            paper key sizes, shrinking quantization bits when the
            physical key is smaller.  ``"physical"`` keeps the paper's
            full quantization precision and packs only what the physical
            plaintext holds -- the mode the convergence experiments use,
            where precision matters and time accounting is secondary.
        fault_plan: Optional fault schedule; builds a
            :class:`~repro.federation.faults.FaultInjector` shared by the
            channel and the aggregator.
        retry_policy: Channel retry/backoff configuration.  Defaults to
            zero-backoff retries (legacy behaviour) without a fault plan
            and to :data:`~repro.federation.faults.DEFAULT_RETRY_POLICY`
            with one.
        min_quorum: Minimum surviving clients per aggregation round;
            ``None`` requires all clients.
        round_deadline_seconds: Stragglers delayed beyond this miss the
            round instead of being waited for.
        incarnation: Checkpoint/resume generation; salts the fault seeds
            so a resumed run draws fresh (still deterministic) faults.
        fused: Flush server-side aggregation through the lazy tensor
            fusion planner (default); ``False`` keeps the eager per-pair
            path for launch-count comparison benchmarks.
        packing_codec: Session-wide packing layout: ``"dense"``
            (default, the paper's Eq. 9 packer) or ``"interleave"``
            (FedBit-style guard-banded layout with a higher summand
            capacity).  The sparse codec is per-tensor (it needs a
            support pattern), so it is not a session knob.
        he_backend: HE execution path: ``"auto"`` (default, follows
            ``config.gpu_he``), ``"cpu"`` (scalar CPU engine), ``"gpu"``
            (simulated GPU engine), or ``"vector"`` (batched limb-plane
            engine; requires numpy).  All paths are bit-identical under
            a shared seed, so this knob changes wall-clock only.
    """

    def __init__(self, config: SystemConfig, num_clients: int,
                 key_bits: int, physical_key_bits: Optional[int] = None,
                 profile: HardwareProfile = DEFAULT_PROFILE,
                 seed: int = 7, alpha: float = 1.0,
                 randomizer_pool_size: int = 32,
                 bc_capacity: str = "nominal",
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 min_quorum: Optional[int] = None,
                 round_deadline_seconds: Optional[float] = None,
                 incarnation: int = 0,
                 fused: bool = True,
                 packing_codec: str = "dense",
                 he_backend: str = "auto"):
        if bc_capacity not in ("nominal", "physical"):
            raise ValueError("bc_capacity must be 'nominal' or 'physical'")
        if he_backend not in ("auto", "cpu", "gpu", "vector"):
            raise ValueError(
                "he_backend must be 'auto', 'cpu', 'gpu', or 'vector'")
        if packing_codec not in ("dense", "interleave"):
            raise ValueError(
                "packing_codec must be 'dense' or 'interleave' (the "
                "sparse codec needs a per-tensor support pattern)")
        self.bc_capacity = bc_capacity
        self.packing_codec = packing_codec
        self.he_backend = he_backend
        if num_clients < 1:
            raise ValueError("need at least one client")
        if min_quorum is not None and not 1 <= min_quorum <= num_clients:
            raise ValueError(
                f"min_quorum {min_quorum} impossible with "
                f"{num_clients} clients")
        self.config = config
        self.num_clients = num_clients
        self.key_bits = key_bits
        self.physical_key_bits = (physical_key_bits
                                  if physical_key_bits is not None
                                  else key_bits)
        self.profile = profile
        self.seed = seed
        self.alpha = alpha
        self.randomizer_pool_size = randomizer_pool_size
        self.keypair = cached_keypair(self.physical_key_bits, seed=seed)
        self.ledger = CostLedger()
        self._silent_ledger = CostLedger()
        self._rng = LimbRandom(seed=seed + 1)

        self.fault_plan = fault_plan
        self.min_quorum = min_quorum
        self.round_deadline_seconds = round_deadline_seconds
        self.incarnation = incarnation
        self.injector = (FaultInjector(fault_plan, ledger=self.ledger,
                                       incarnation=incarnation)
                         if fault_plan is not None else None)
        if retry_policy is None and fault_plan is not None:
            # Fault-enabled runs default to real backoff; fault-free runs
            # keep the zero-backoff policy so modelled times are
            # unchanged.
            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy

        self.client_engine = self._build_engine(self.ledger)
        self.server_engine = self._build_engine(self.ledger)
        self.silent_engine = self._build_engine(self._silent_ledger)
        self.channel = Channel(profile=profile, ledger=self.ledger,
                               retry_policy=retry_policy,
                               injector=self.injector,
                               seed=seed + incarnation)
        self.plan = self._build_plan()
        self.aggregator = SecureAggregator(
            client_engine=self.client_engine,
            silent_engine=self.silent_engine,
            server_engine=self.server_engine,
            packer=self.plan.packer,
            channel=self.channel,
            packed_serialization=config.packed_serialization,
            injector=self.injector,
            min_quorum=min_quorum,
            round_deadline_seconds=round_deadline_seconds,
            fused=fused,
        )

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    def _build_engine(self, ledger: CostLedger) -> HeEngine:
        backend = self.he_backend
        if backend == "auto":
            backend = "gpu" if self.config.gpu_he else "cpu"
        if backend == "vector":
            from repro.mpint.limb_plane import HAVE_NUMPY
            if not HAVE_NUMPY:
                raise RuntimeError(
                    "he_backend='vector' requires numpy; use 'cpu' or "
                    "'gpu' (or 'auto') on numpy-free installs")
            from repro.crypto.vector_engine import VectorPaillierEngine
            return VectorPaillierEngine(
                self.keypair, profile=self.profile,
                nominal_bits=self.key_bits, ledger=ledger, rng=self._rng,
                randomizer_pool_size=self.randomizer_pool_size)
        if backend == "gpu":
            manager = ResourceManager(managed=self.config.managed_gpu)
            kernels = GpuKernels(device=SimulatedGpu(),
                                 resource_manager=manager,
                                 profile=self.profile)
            return GpuPaillierEngine(
                self.keypair, kernels=kernels,
                nominal_bits=self.key_bits, ledger=ledger, rng=self._rng,
                randomizer_pool_size=self.randomizer_pool_size)
        return CpuPaillierEngine(
            self.keypair, profile=self.profile,
            nominal_bits=self.key_bits, ledger=ledger, rng=self._rng,
            randomizer_pool_size=self.randomizer_pool_size)

    def _build_plan(self) -> PackingPlan:
        plan = self._dense_plan()
        if self.packing_codec == "interleave":
            # Same scheme and physical plaintext, laid out with the
            # guard-banded interleaved codec; capacity derives from the
            # wider stride, summand capacity from the guard band.
            from repro.quantization.codecs import InterleavedCodec

            codec = InterleavedCodec(
                plan.scheme,
                plaintext_bits=self.client_engine.physical_plaintext_bits)
            plan = PackingPlan(scheme=plan.scheme, packer=codec,
                               nominal_key_bits=plan.nominal_key_bits)
        return plan

    def _dense_plan(self) -> PackingPlan:
        if self.config.batch_compression:
            if self.bc_capacity == "physical":
                scheme = QuantizationScheme(alpha=self.alpha,
                                            r_bits=self.config.r_bits,
                                            num_parties=self.num_clients)
                packer = BatchPacker(
                    scheme,
                    plaintext_bits=self.client_engine.physical_plaintext_bits)
                return PackingPlan(scheme=scheme, packer=packer,
                                   nominal_key_bits=self.key_bits)
            return PackingPlan.for_engine(
                self.client_engine, alpha=self.alpha,
                r_bits=self.config.r_bits, num_parties=self.num_clients)
        # No compression: one value per ciphertext at (near-)lossless
        # precision, exactly the FATE / HAFLO data path.
        scheme = QuantizationScheme(alpha=self.alpha,
                                    r_bits=self.config.r_bits,
                                    num_parties=self.num_clients)
        physical = self.client_engine.physical_plaintext_bits
        if scheme.slot_bits > physical:
            scheme = QuantizationScheme(
                alpha=self.alpha,
                r_bits=physical - scheme.overflow_bits,
                num_parties=self.num_clients)
        packer = BatchPacker(scheme, plaintext_bits=physical, capacity=1)
        return PackingPlan(scheme=scheme, packer=packer,
                           nominal_key_bits=self.key_bits)

    # ------------------------------------------------------------------
    # Durable-coordinator wiring (PR 4).
    # ------------------------------------------------------------------

    def durable_coordinator(self, wal=None, lease_manager=None,
                            name: str = "coordinator"):
        """A write-ahead-logged coordinator over this runtime's path.

        Args:
            wal: An existing :class:`~repro.federation.wal.WriteAheadLog`
                to recover from; a fresh in-memory log by default.
            lease_manager: Optional
                :class:`~repro.federation.coordinator.LeaseManager` for
                hot-standby arbitration.
        """
        from repro.federation.coordinator import DurableCoordinator

        return DurableCoordinator(self.aggregator, wal=wal, name=name,
                                  lease_manager=lease_manager)

    def standby_coordinator(self, lease_manager, name: str = "standby"):
        """A hot standby tailing this runtime's coordinator WAL."""
        from repro.federation.coordinator import StandbyCoordinator

        return StandbyCoordinator(self.aggregator,
                                  lease_manager=lease_manager, name=name)

    def sharded_service(self, clock=None, num_shards=None,
                        queue_capacity: int = 64,
                        seed: Optional[int] = None):
        """The two-level sharded aggregation service over this runtime.

        Args:
            clock: A :class:`~repro.federation.eventloop.VirtualClock`
                shared with the caller's timeline; fresh by default.
            num_shards: Fixed shard count; ``ceil(sqrt(cohort))`` per
                round by default.
            queue_capacity: Per-shard ingress queue bound.
            seed: Cohort-sampling master seed; the runtime's seed by
                default.
        """
        from repro.federation.shard import ShardedAggregationService

        return ShardedAggregationService(
            self.aggregator, clock=clock, num_shards=num_shards,
            queue_capacity=queue_capacity,
            seed=self.seed if seed is None else seed)

    # ------------------------------------------------------------------
    # Epoch lifecycle.
    # ------------------------------------------------------------------

    def begin_epoch(self) -> CostLedger:
        """Swap in a fresh ledger for the next epoch; returns it."""
        self.ledger = CostLedger()
        self.client_engine.ledger = self.ledger
        self.server_engine.ledger = self.ledger
        self.channel.ledger = self.ledger
        if self.injector is not None:
            self.injector.bind_ledger(self.ledger)
        return self.ledger

    def gpu_device(self) -> Optional[SimulatedGpu]:
        """The client engine's device, when HE runs on the GPU."""
        if isinstance(self.client_engine, GpuPaillierEngine):
            return self.client_engine.kernels.device
        return None
