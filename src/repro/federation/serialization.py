"""Wire serialization of ciphertext payloads.

The cost model charges communication from *nominal* ciphertext sizes and
a serialization bloat factor; this module provides the two concrete wire
formats those factors describe, so byte counts can be verified against
real encodings:

- ``objects`` -- per-element framed records, the FATE-style path: each
  ciphertext is wrapped with a type tag, a length header, a key
  fingerprint and a Python-object envelope.  Bloat ~2.5x raw.
- ``packed`` -- FLBooster's binary format: one header, then fixed-width
  big-endian ciphertext words back to back.  Bloat ~1.05x raw.
- ``tensor`` (v2) -- the packed body prefixed by a self-describing
  header carrying the full :class:`~repro.tensor.meta.TensorMeta`: key
  fingerprint, key geometry, quantization scheme, packing capacity,
  logical shape and summand count.  Decoding a v2 frame needs *no*
  caller-supplied metadata, and the decoder validates the key
  fingerprint so cross-key payloads fail loudly.
- ``tensor`` (v3, ``FLT3``) -- the v2 header (same fixed layout and
  offsets, new magic/version) followed by a *codec block*: the packing
  codec's registry id plus its integer wire parameters (guard width
  for the interleaved layout; value width and support pattern for the
  sparse layout).  v3 is the default emission; v2 frames remain
  readable (they imply the dense codec) and dense tensors can still be
  emitted as v2 for legacy receivers.

All formats round-trip exactly; the measured bloat factors match the
cost model's constants (asserted by the tests).
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Sequence, Tuple

from repro.quantization.encoding import QuantizationScheme
from repro.tensor.cipher import CipherTensor
from repro.tensor.meta import KeyMismatchError, TensorMeta


class FrameError(ValueError):
    """A wire frame failed validation (malformed, truncated, or lying).

    The *typed* rejection every decoder in this module must produce for
    hostile input -- the fuzzer asserts that no mutation ever escalates
    to a different exception class (a crash) or decodes silently into
    garbage.  Subclasses ``ValueError`` so existing callers keep
    working; :class:`~repro.tensor.meta.KeyMismatchError` stays separate
    (a well-formed frame under the wrong key is a routing error, not a
    framing one).
    """

#: Frame magic for the packed format.
PACKED_MAGIC = b"FLBP"
#: Frame magic + version for the self-describing tensor format.
TENSOR_MAGIC = b"FLT2"
#: Fixed-size part of the v2/v3 tensor header: magic, version, flags,
#: ndim, count, summands, capacity, word count, word width, nominal
#: bits, physical bits, r bits, participant count, alpha, key
#: fingerprint.  v3 reuses this struct byte for byte (only magic and
#: version differ), so field offsets -- and the fuzzer's hardcoded
#: mutation offsets -- are shared across both versions.
TENSOR_HEADER = struct.Struct(">4sBBBxIIIIIIIHHd16s")
#: v2 format version byte.
TENSOR_VERSION = 2
#: Frame magic for the self-describing v3 (codec-aware) tensor format.
TENSOR3_MAGIC = b"FLT3"
#: v3 format version byte.
TENSOR3_VERSION = 3
#: Longest codec id accepted off the wire (one length byte anyway).
MAX_CODEC_ID_LEN = 32
#: Per-object envelope overhead of the object format, bytes: type tag,
#: schema name, key fingerprint, exponent field, length headers -- the
#: accumulated framing of a serialized ciphertext *object*.
OBJECT_ENVELOPE = struct.Struct(">4sI16sqI")
OBJECT_MAGIC = b"FOBJ"


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _bytes_to_int(blob: bytes) -> int:
    return int.from_bytes(blob, "big")


def serialize_packed(ciphertexts: Sequence[int],
                     ciphertext_bytes: int) -> bytes:
    """FLBooster's packed binary wire format.

    Args:
        ciphertexts: Raw ciphertext integers.
        ciphertext_bytes: Fixed width of each ciphertext on the wire.
    """
    header = PACKED_MAGIC + struct.pack(">II", len(ciphertexts),
                                        ciphertext_bytes)
    body = b"".join(_int_to_bytes(value, ciphertext_bytes)
                    for value in ciphertexts)
    return header + body


def deserialize_packed(blob: bytes) -> List[int]:
    """Invert :func:`serialize_packed`.

    Validates the frame end to end before slicing: a short header, a
    zero word width with a non-zero count, or a body whose length does
    not match ``count * width`` all raise a clear ``ValueError`` instead
    of silently mis-slicing into garbage ciphertexts.
    """
    if len(blob) < 12:
        raise FrameError(
            f"truncated frame: packed header needs 12 bytes, got "
            f"{len(blob)}")
    if blob[:4] != PACKED_MAGIC:
        raise FrameError("not a packed ciphertext frame")
    count, width = struct.unpack(">II", blob[4:12])
    if count and width == 0:
        raise FrameError(
            f"corrupt frame: {count} ciphertexts declared with zero "
            f"word width")
    body = len(blob) - 12
    expected = count * width
    if body != expected:
        kind = "truncated" if body < expected else "oversized"
        raise FrameError(
            f"{kind} frame: {count} x {width}-byte words need "
            f"{expected} body bytes, got {body}")
    return [_bytes_to_int(blob[12 + i * width:12 + (i + 1) * width])
            for i in range(count)]


def serialize_objects(ciphertexts: Sequence[int], ciphertext_bytes: int,
                      key_fingerprint: bytes = b"\x00" * 16,
                      exponent: int = 0) -> bytes:
    """The per-element object wire format (FATE-style).

    Each element carries the envelope a serialized ciphertext object
    drags along: type tag, element length, the public-key fingerprint,
    the (plaintext!) exponent field of the legacy float encoding, and a
    value-length header.  Values are *variable length* (objects serialize
    the integer, not a fixed-width buffer), padded with framing
    overhead -- which is where the ~2.5x wire bloat comes from.
    """
    if len(key_fingerprint) != 16:
        raise ValueError("key fingerprint must be 16 bytes")
    frames = []
    for value in ciphertexts:
        payload = _int_to_bytes(value, ciphertext_bytes)
        envelope = OBJECT_ENVELOPE.pack(OBJECT_MAGIC, len(payload),
                                        key_fingerprint, exponent,
                                        len(payload))
        # Object formats also carry per-element schema/framing text; a
        # fixed descriptor mimics pickle/protobuf field names.  Repeat
        # enough to cover any ciphertext width, then cut exactly.
        descriptor_len = ciphertext_bytes * 3 // 2
        unit = b"repro.crypto.paillier.PaillierCiphertext\x00"
        descriptor = (unit * (descriptor_len // len(unit) + 1))
        frames.append(envelope + descriptor[:descriptor_len] + payload)
    return b"".join(frames)


def deserialize_objects(blob: bytes,
                        ciphertext_bytes: int) -> List[Tuple[int, int]]:
    """Invert :func:`serialize_objects`; returns (value, exponent) pairs."""
    descriptor_len = ciphertext_bytes * 3 // 2
    frame_len = OBJECT_ENVELOPE.size + descriptor_len + ciphertext_bytes
    if len(blob) % frame_len != 0:
        raise FrameError("corrupt object stream")
    out: List[Tuple[int, int]] = []
    for offset in range(0, len(blob), frame_len):
        magic, _length, _fp, exponent, _l2 = OBJECT_ENVELOPE.unpack(
            blob[offset:offset + OBJECT_ENVELOPE.size])
        if magic != OBJECT_MAGIC:
            raise FrameError("bad object frame magic")
        start = offset + OBJECT_ENVELOPE.size + descriptor_len
        value = _bytes_to_int(blob[start:start + ciphertext_bytes])
        out.append((value, exponent))
    return out


def _codec_block(meta: TensorMeta) -> bytes:
    """The v3 codec block: registry id + integer wire parameters."""
    codec_id = meta.codec.encode("ascii")
    if not 1 <= len(codec_id) <= MAX_CODEC_ID_LEN:
        raise ValueError(f"codec id {meta.codec!r} not serializable")
    return (struct.pack(">B", len(codec_id)) + codec_id
            + struct.pack(">I", len(meta.codec_params))
            + b"".join(struct.pack(">Q", param)
                       for param in meta.codec_params))


def serialize_tensor(tensor: CipherTensor,
                     ciphertext_bytes: Optional[int] = None,
                     version: int = TENSOR3_VERSION) -> bytes:
    """The packed wire frame: self-describing tensor header + body.

    Args:
        tensor: The (materialized or lazy) encrypted tensor; lazy
            expressions are flushed through their attached engine.
        ciphertext_bytes: Fixed word width on the wire; defaults to the
            width of ``n^2`` at the tensor's *physical* key size.
        version: ``3`` (default) emits the codec-aware FLT3 frame;
            ``2`` emits a legacy FLT2 frame, which can only describe
            the dense codec.
    """
    meta = tensor.meta
    if version not in (TENSOR_VERSION, TENSOR3_VERSION):
        raise ValueError(f"unknown tensor frame version {version}")
    if version == TENSOR_VERSION and (meta.codec != "dense"
                                      or meta.codec_params):
        raise ValueError(
            f"legacy FLT2 frames cannot describe the {meta.codec!r} "
            f"codec; emit version 3")
    width = (ciphertext_bytes if ciphertext_bytes is not None
             else max(1, 2 * meta.physical_bits // 8 + 1))
    words = tensor.words
    for word in words:
        if word.bit_length() > 8 * width:
            raise ValueError(
                f"ciphertext of {word.bit_length()} bits does not fit "
                f"the {width}-byte wire width")
    magic = TENSOR_MAGIC if version == TENSOR_VERSION else TENSOR3_MAGIC
    header = TENSOR_HEADER.pack(
        magic, version,
        1 if meta.packed else 0, len(meta.shape),
        meta.count, meta.summands, meta.capacity, len(words), width,
        meta.nominal_bits, meta.physical_bits,
        meta.scheme.r_bits, meta.scheme.num_parties,
        meta.scheme.alpha, meta.key_fingerprint)
    dims = struct.pack(f">{len(meta.shape)}I", *meta.shape)
    codec = b"" if version == TENSOR_VERSION else _codec_block(meta)
    body = b"".join(_int_to_bytes(word, width) for word in words)
    return header + dims + codec + body


def deserialize_tensor(blob: bytes,
                       expected_fingerprint: Optional[bytes] = None
                       ) -> CipherTensor:
    """Invert :func:`serialize_tensor`, validating the frame end to end.

    The returned :class:`CipherTensor` carries its full metadata, so no
    caller-supplied count / summands / scheme is needed to decode it.

    Args:
        expected_fingerprint: When given (e.g. the receiving engine's
            :meth:`~repro.crypto.engine.HeEngine.fingerprint`), a frame
            encrypted under any other key raises
            :class:`~repro.tensor.meta.KeyMismatchError`.
    """
    if len(blob) < TENSOR_HEADER.size:
        raise FrameError(
            f"truncated frame: tensor header needs {TENSOR_HEADER.size} "
            f"bytes, got {len(blob)}")
    (magic, version, flags, ndim, count, summands, capacity, num_words,
     width, nominal_bits, physical_bits, r_bits, num_parties, alpha,
     fingerprint) = TENSOR_HEADER.unpack(blob[:TENSOR_HEADER.size])
    if magic not in (TENSOR_MAGIC, TENSOR3_MAGIC):
        raise FrameError("not a tensor frame")
    expected_version = (TENSOR_VERSION if magic == TENSOR_MAGIC
                        else TENSOR3_VERSION)
    if version != expected_version:
        raise FrameError(
            f"unsupported tensor frame version {version} under "
            f"{magic.decode('ascii', 'replace')} magic")
    if flags & ~1:
        raise FrameError(f"corrupt frame: unknown flag bits 0x{flags:02x}")
    if blob[7] != 0:
        raise FrameError("corrupt frame: nonzero header padding")
    if num_words and width == 0:
        raise FrameError(
            f"corrupt frame: {num_words} words declared with zero width")
    dims_end = TENSOR_HEADER.size + 4 * ndim
    if len(blob) < dims_end:
        raise FrameError(
            f"truncated frame: {ndim} dims need {dims_end} bytes, got "
            f"{len(blob)}")
    # v2 frames imply the dense codec; v3 frames carry an explicit
    # codec block between the dims and the ciphertext body.
    codec_id, codec_params = "dense", ()
    body_start = dims_end
    if magic == TENSOR3_MAGIC:
        codec_id, codec_params, body_start = _parse_codec_block(
            blob, dims_end)
    expected = body_start + num_words * width
    if len(blob) != expected:
        kind = "truncated" if len(blob) < expected else "oversized"
        raise FrameError(
            f"{kind} frame: {num_words} x {width}-byte words and "
            f"{ndim} dims need {expected} bytes, got {len(blob)}")
    shape = struct.unpack(f">{ndim}I", blob[TENSOR_HEADER.size:dims_end])
    if not math.isfinite(alpha):
        raise FrameError(f"corrupt frame: non-finite alpha {alpha!r}")
    if expected_fingerprint is not None and \
            fingerprint != expected_fingerprint:
        raise KeyMismatchError(
            f"frame encrypted under key {fingerprint.hex()[:8]}, "
            f"receiver expects {expected_fingerprint.hex()[:8]}")
    # Header fields are attacker-controlled: any combination the
    # scheme, codec registry, or tensor constructors reject is a
    # framing lie, reported as such instead of leaking implementation
    # exceptions.  That covers codec-id lies (unknown registry name),
    # parameter corruption (implausible widths) and sparse-pattern lies
    # (out-of-range / duplicate / unsorted indices).
    try:
        meta = TensorMeta(
            key_fingerprint=fingerprint,
            nominal_bits=nominal_bits,
            physical_bits=physical_bits,
            scheme=QuantizationScheme(alpha=alpha, r_bits=r_bits,
                                      num_parties=num_parties),
            capacity=capacity,
            shape=tuple(shape),
            count=count,
            summands=summands,
            packed=bool(flags & 1),
            codec=codec_id,
            codec_params=codec_params,
        )
        words = [_bytes_to_int(blob[body_start + i * width:
                                    body_start + (i + 1) * width])
                 for i in range(num_words)]
        return CipherTensor(meta, words=words)
    except FrameError:
        raise
    except (ValueError, OverflowError) as error:
        raise FrameError(
            f"corrupt frame: header fields rejected "
            f"({type(error).__name__}: {error})") from error


def _parse_codec_block(blob: bytes, offset: int):
    """Parse the v3 codec block at ``offset``; returns (id, params, end).

    Every length is bounds-checked before slicing so a lying block is a
    typed :class:`FrameError`, never an index crash or a silent
    mis-slice into the ciphertext body.
    """
    if len(blob) < offset + 1:
        raise FrameError("truncated frame: missing codec block")
    id_len = blob[offset]
    if not 1 <= id_len <= MAX_CODEC_ID_LEN:
        raise FrameError(f"corrupt frame: codec id length {id_len}")
    if len(blob) < offset + 1 + id_len + 4:
        raise FrameError("truncated frame: codec block cut short")
    raw_id = blob[offset + 1:offset + 1 + id_len]
    try:
        codec_id = raw_id.decode("ascii")
    except UnicodeDecodeError:
        raise FrameError("corrupt frame: non-ascii codec id") from None
    params_at = offset + 1 + id_len
    (param_count,) = struct.unpack(">I", blob[params_at:params_at + 4])
    params_end = params_at + 4 + 8 * param_count
    if len(blob) < params_end:
        raise FrameError(
            f"truncated frame: {param_count} codec parameters need "
            f"{params_end - offset} codec-block bytes")
    params = (struct.unpack(f">{param_count}Q",
                            blob[params_at + 4:params_end])
              if param_count else ())
    return codec_id, tuple(params), params_end


def measured_bloat(ciphertexts: Sequence[int], ciphertext_bytes: int,
                   packed: bool) -> float:
    """Wire bytes per raw ciphertext byte for a batch (cf. cost model)."""
    raw = len(ciphertexts) * ciphertext_bytes
    if raw == 0:
        return 0.0
    if packed:
        wire = len(serialize_packed(ciphertexts, ciphertext_bytes))
    else:
        wire = len(serialize_objects(ciphertexts, ciphertext_bytes))
    return wire / raw
