"""Wire serialization of ciphertext payloads.

The cost model charges communication from *nominal* ciphertext sizes and
a serialization bloat factor; this module provides the two concrete wire
formats those factors describe, so byte counts can be verified against
real encodings:

- ``objects`` -- per-element framed records, the FATE-style path: each
  ciphertext is wrapped with a type tag, a length header, a key
  fingerprint and a Python-object envelope.  Bloat ~2.5x raw.
- ``packed`` -- FLBooster's binary format: one header, then fixed-width
  big-endian ciphertext words back to back.  Bloat ~1.05x raw.

Both formats round-trip exactly; the measured bloat factors match the
cost model's constants (asserted by the tests).
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

#: Frame magic for the packed format.
PACKED_MAGIC = b"FLBP"
#: Per-object envelope overhead of the object format, bytes: type tag,
#: schema name, key fingerprint, exponent field, length headers -- the
#: accumulated framing of a serialized ciphertext *object*.
OBJECT_ENVELOPE = struct.Struct(">4sI16sqI")
OBJECT_MAGIC = b"FOBJ"


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _bytes_to_int(blob: bytes) -> int:
    return int.from_bytes(blob, "big")


def serialize_packed(ciphertexts: Sequence[int],
                     ciphertext_bytes: int) -> bytes:
    """FLBooster's packed binary wire format.

    Args:
        ciphertexts: Raw ciphertext integers.
        ciphertext_bytes: Fixed width of each ciphertext on the wire.
    """
    header = PACKED_MAGIC + struct.pack(">II", len(ciphertexts),
                                        ciphertext_bytes)
    body = b"".join(_int_to_bytes(value, ciphertext_bytes)
                    for value in ciphertexts)
    return header + body


def deserialize_packed(blob: bytes) -> List[int]:
    """Invert :func:`serialize_packed`."""
    if blob[:4] != PACKED_MAGIC:
        raise ValueError("not a packed ciphertext frame")
    count, width = struct.unpack(">II", blob[4:12])
    expected = 12 + count * width
    if len(blob) != expected:
        raise ValueError(
            f"truncated frame: expected {expected} bytes, got {len(blob)}")
    return [_bytes_to_int(blob[12 + i * width:12 + (i + 1) * width])
            for i in range(count)]


def serialize_objects(ciphertexts: Sequence[int], ciphertext_bytes: int,
                      key_fingerprint: bytes = b"\x00" * 16,
                      exponent: int = 0) -> bytes:
    """The per-element object wire format (FATE-style).

    Each element carries the envelope a serialized ciphertext object
    drags along: type tag, element length, the public-key fingerprint,
    the (plaintext!) exponent field of the legacy float encoding, and a
    value-length header.  Values are *variable length* (objects serialize
    the integer, not a fixed-width buffer), padded with framing
    overhead -- which is where the ~2.5x wire bloat comes from.
    """
    if len(key_fingerprint) != 16:
        raise ValueError("key fingerprint must be 16 bytes")
    frames = []
    for value in ciphertexts:
        payload = _int_to_bytes(value, ciphertext_bytes)
        envelope = OBJECT_ENVELOPE.pack(OBJECT_MAGIC, len(payload),
                                        key_fingerprint, exponent,
                                        len(payload))
        # Object formats also carry per-element schema/framing text; a
        # fixed descriptor mimics pickle/protobuf field names.  Repeat
        # enough to cover any ciphertext width, then cut exactly.
        descriptor_len = ciphertext_bytes * 3 // 2
        unit = b"repro.crypto.paillier.PaillierCiphertext\x00"
        descriptor = (unit * (descriptor_len // len(unit) + 1))
        frames.append(envelope + descriptor[:descriptor_len] + payload)
    return b"".join(frames)


def deserialize_objects(blob: bytes,
                        ciphertext_bytes: int) -> List[Tuple[int, int]]:
    """Invert :func:`serialize_objects`; returns (value, exponent) pairs."""
    descriptor_len = ciphertext_bytes * 3 // 2
    frame_len = OBJECT_ENVELOPE.size + descriptor_len + ciphertext_bytes
    if len(blob) % frame_len != 0:
        raise ValueError("corrupt object stream")
    out: List[Tuple[int, int]] = []
    for offset in range(0, len(blob), frame_len):
        magic, _length, _fp, exponent, _l2 = OBJECT_ENVELOPE.unpack(
            blob[offset:offset + OBJECT_ENVELOPE.size])
        if magic != OBJECT_MAGIC:
            raise ValueError("bad object frame magic")
        start = offset + OBJECT_ENVELOPE.size + descriptor_len
        value = _bytes_to_int(blob[start:start + ciphertext_bytes])
        out.append((value, exponent))
    return out


def measured_bloat(ciphertexts: Sequence[int], ciphertext_bytes: int,
                   packed: bool) -> float:
    """Wire bytes per raw ciphertext byte for a batch (cf. cost model)."""
    raw = len(ciphertexts) * ciphertext_bytes
    if raw == 0:
        return 0.0
    if packed:
        wire = len(serialize_packed(ciphertexts, ciphertext_bytes))
    else:
        wire = len(serialize_objects(ciphertexts, ciphertext_bytes))
    return wire / raw
