"""Event-loop channel: bounded ingress queues, admission control,
deadline shedding, and per-shard circuit breaking.

The in-process mailbox loop the federation grew up with delivers every
upload synchronously and unconditionally -- fine for the paper's four
parties, fatal for the ROADMAP's millions: one slow or sick shard stalls
the whole round and queue memory grows without bound.  This module
replaces that loop for the sharded aggregation tier
(:mod:`repro.federation.shard`) with an explicitly *overload-safe*
ingress path, driven entirely by the deterministic
:class:`VirtualClock` (moved here from the simulator so the federation
layer owns its own time source; the simulator re-exports it):

- :class:`VirtualClock` -- monotonic modelled time, the only clock the
  event loop knows.
- :class:`AdmissionRejected` -- the *typed, retryable* rejection an
  overloaded or fenced shard returns instead of accepting an upload it
  cannot serve.  Every rejection is charged to the ledger
  (``comm.admission.reject``), so refused work is never invisible.
- :class:`CircuitBreaker` -- per-shard failure fencing: after
  ``failure_threshold`` consecutive delivery failures the breaker opens
  for ``cooldown_seconds`` of modelled time (charged once to
  ``fault.circuit_open``), the shard is excluded from cohorts instead of
  poisoning the root, and a half-open probe readmits it after the
  cooldown.
- :class:`AsyncChannel` -- bounded per-shard ingress queues in front of
  the byte-counting :class:`~repro.federation.channel.Channel`.
  ``submit`` applies admission control (accept / reject-full /
  reject-fenced); ``drain`` delivers the backlog in FIFO order, shedding
  entries whose modelled delivery time would blow the round deadline
  (charged to ``fault.shed``) so the round degrades into quorum + Eq. 6
  partial aggregation instead of stalling.

Multi-tenancy (PR 9): when an :class:`AsyncChannel` is built over a
:class:`~repro.federation.tenancy.TenantRegistry`, admission becomes
*tenant-scoped*.  Each tenant submits through its own registered
:class:`~repro.federation.channel.Channel` (so charges land in that
tenant's ledger, under tenant-prefixed ``comm.admission.*`` categories),
holds a weighted slice of every shard queue (``capacity * weight /
total_weight``, floored, at least one slot -- one tenant's flood can
never occupy another's slots), spends a token-bucket quota per upload
(:class:`QuotaExceeded`, a retryable :class:`AdmissionRejected` with
reason ``quota``), and fails against its *own* per-(shard, tenant)
circuit breaker -- a sick tenant fences only itself.

Accounting invariant (asserted by the overload and tenancy tests):
every submitted upload is exactly one of *accepted-and-delivered*,
*shed* (ledger ``fault.shed``), or *rejected* (ledger
``comm.admission.reject`` / ``comm.admission.quota``) -- no silent
loss, and queue memory never exceeds the configured bound.  Across an
elastic shard split or merge (:meth:`AsyncChannel.migrate`), migrated
in-flight entries carry their acceptance with them: per shard and per
tenant, ``accepted + migrated_in - migrated_out == delivered + shed +
failed + queued`` at every point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.federation.channel import Channel, ChannelError, Message
from repro.ledger import (
    CAT_COMM_ADMISSION_ACCEPT,
    CAT_COMM_ADMISSION_REJECT,
    CAT_FAULT_CIRCUIT_OPEN,
    CAT_FAULT_SHED,
    CostLedger,
    admission_category,
)

#: Wire size of one admission-control message (shard id, round, verdict,
#: retry hint) -- control plane, not ciphertext.
ADMISSION_BYTES = 48

#: Modelled per-message dequeue/dispatch overhead of the event loop.
DISPATCH_SECONDS = 1.0e-6

#: Admission verdict reasons carried by :class:`AdmissionRejected`.
REJECT_QUEUE_FULL = "queue_full"
REJECT_CIRCUIT_OPEN = "circuit_open"
REJECT_OVERLOAD = "overload"
REJECT_QUOTA = "quota"

_REJECT_REASONS = (REJECT_QUEUE_FULL, REJECT_CIRCUIT_OPEN,
                   REJECT_OVERLOAD, REJECT_QUOTA)


class VirtualClock:
    """Monotonic modelled time; the only clock the event loop knows."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds
        return self._now


class AdmissionRejected(RuntimeError):
    """A shard refused an upload; the sender may retry after a delay.

    This is *backpressure*, not failure: the payload was never accepted,
    so nothing is lost -- the client retries after
    :attr:`retry_after_seconds` (or gives up and the round proceeds
    without it under quorum semantics).  The rejection itself is already
    charged to ``comm.admission.reject`` when this is raised.

    Attributes:
        shard: Name of the rejecting shard.
        reason: ``queue_full`` (ingress bound hit), ``circuit_open``
            (shard fenced by its breaker), ``overload`` (an injected
            ``queue_overload`` fault), or ``quota`` (the submitting
            tenant's token bucket ran dry -- see :class:`QuotaExceeded`).
        retry_after_seconds: Modelled backoff hint for the sender.
    """

    def __init__(self, shard: str, reason: str,
                 retry_after_seconds: float = 0.0):
        if reason not in _REJECT_REASONS:
            raise ValueError(f"unknown rejection reason {reason!r}; "
                             f"choose from {_REJECT_REASONS}")
        self.shard = shard
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds
        super().__init__(
            f"shard {shard!r} rejected upload ({reason}); retry after "
            f"{retry_after_seconds:.3f}s")

    @property
    def retryable(self) -> bool:
        """Whether retrying can ever succeed (always, by design)."""
        return True


class QuotaExceeded(AdmissionRejected):
    """A tenant's token-bucket quota ran dry at admission.

    The tenant-scoped flavour of backpressure: the shard itself is
    healthy, this *tenant* is over its contracted rate.  Retrying after
    :attr:`retry_after_seconds` (the bucket's refill horizon) can
    succeed, so the exception stays retryable; the rejection is charged
    to the tenant-prefixed ``comm.admission.quota.<tenant>`` category
    against the tenant's own ledger before this is raised.

    Attributes:
        tenant: The tenant whose bucket ran dry.
    """

    def __init__(self, shard: str, tenant: str,
                 retry_after_seconds: float = 0.0):
        super().__init__(shard, REJECT_QUOTA,
                         retry_after_seconds=retry_after_seconds)
        self.tenant = tenant


#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-shard failure fencing with a modelled-time cooldown.

    Closed -> (``failure_threshold`` consecutive failures) -> open for
    ``cooldown_seconds`` -> half-open (one probe admitted) -> closed on
    success, straight back to open on failure.  A sick shard is fenced
    out of cohorts while open, so its failures cannot poison the root
    reduction round after round.

    Args:
        clock: The event loop's virtual clock.
        failure_threshold: Consecutive failures that open the breaker.
        cooldown_seconds: Modelled time the breaker stays open.
        charge_open: Called once per open transition -- the
            :class:`AsyncChannel` charges ``fault.circuit_open`` through
            it against its *current* ledger (epoch rollover swaps
            ledgers, so the breaker must not pin one).
    """

    def __init__(self, clock: VirtualClock, failure_threshold: int = 3,
                 cooldown_seconds: float = 60.0,
                 charge_open: Optional[Callable[[], None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_seconds <= 0:
            raise ValueError("cooldown_seconds must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.charge_open = charge_open
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.open_count = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return BREAKER_CLOSED
        if self.clock.now >= self.opened_at + self.cooldown_seconds:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def allow(self) -> bool:
        """Whether the shard may take traffic right now."""
        return self.state != BREAKER_OPEN

    def record_failure(self) -> bool:
        """Count one delivery failure; returns True when it opens.

        A failure during half-open re-opens immediately (the probe
        failed), restarting the cooldown.
        """
        self.consecutive_failures += 1
        was_open = self.opened_at is not None
        half_open_probe_failed = self.state == BREAKER_HALF_OPEN
        if (self.consecutive_failures >= self.failure_threshold
                and not was_open) or half_open_probe_failed:
            self.opened_at = self.clock.now
            self.open_count += 1
            if self.charge_open is not None:
                self.charge_open()
            return True
        return False

    def record_success(self) -> None:
        """A delivery succeeded; close the breaker and reset the count."""
        self.consecutive_failures = 0
        self.opened_at = None


@dataclass
class _QueueEntry:
    """One upload waiting in a shard's ingress queue."""

    message: Message
    sender: str
    submitted_at: float
    arrival_delay: float = 0.0
    tenant: Optional[str] = None

    @property
    def ready_at(self) -> float:
        """Earliest modelled time the entry can be dispatched."""
        return self.submitted_at + self.arrival_delay


@dataclass
class ShardQueueStats:
    """Admission/backpressure counters for one shard's ingress queue.

    ``migrated_in`` / ``migrated_out`` count in-flight entries handed
    between queues by an elastic shard split or merge
    (:meth:`AsyncChannel.migrate`); acceptance travels with the entry,
    so ``accepted + migrated_in - migrated_out == delivered + shed +
    failed + queued`` holds per shard through any rebalance.
    """

    accepted: int = 0
    rejected_full: int = 0
    rejected_fenced: int = 0
    rejected_overload: int = 0
    rejected_quota: int = 0
    delivered: int = 0
    shed: int = 0
    failed: int = 0
    migrated_in: int = 0
    migrated_out: int = 0
    peak_depth: int = 0

    @property
    def rejected(self) -> int:
        return (self.rejected_full + self.rejected_fenced
                + self.rejected_overload + self.rejected_quota)


@dataclass
class TenantQueueStats:
    """Per-(shard, tenant) admission counters -- :class:`ShardQueueStats`
    restricted to one tenant's traffic, so the accounting invariant can
    be asserted *per tenant* across floods, shedding, and rebalances."""

    accepted: int = 0
    rejected_full: int = 0
    rejected_fenced: int = 0
    rejected_overload: int = 0
    rejected_quota: int = 0
    delivered: int = 0
    shed: int = 0
    failed: int = 0
    migrated_in: int = 0
    migrated_out: int = 0
    peak_depth: int = 0

    @property
    def rejected(self) -> int:
        return (self.rejected_full + self.rejected_fenced
                + self.rejected_overload + self.rejected_quota)


@dataclass
class DrainOutcome:
    """What one :meth:`AsyncChannel.drain` pass did.

    Attributes:
        delivered: ``(sender, payload)`` pairs, in dispatch order.
        shed: ``(sender, reason)`` pairs dropped by the deadline.
        failed: ``(sender, error)`` pairs whose transfer exhausted its
            retry budget (already charged by the channel).
    """

    delivered: List[Tuple[str, Any]] = field(default_factory=list)
    shed: List[Tuple[str, str]] = field(default_factory=list)
    failed: List[Tuple[str, ChannelError]] = field(default_factory=list)


class AsyncChannel:
    """Bounded, admission-controlled ingress in front of a channel.

    Composition, not inheritance: the wrapped
    :class:`~repro.federation.channel.Channel` keeps doing all transfer
    charging (``comm.*``, retries, corruption); this class adds the
    event-loop concerns -- per-shard bounded queues, admission verdicts,
    deadline shedding -- and charges only the control plane
    (``comm.admission.*``) and the shed path (``fault.shed``).

    Args:
        channel: The byte-counting transfer channel.
        clock: The virtual clock driving deadlines and backoff hints.
        queue_capacity: Ingress bound per shard; the memory guarantee.
        drain_seconds_per_message: Modelled dispatch cost per dequeue.
        overloaded: Optional predicate ``(shard) -> bool`` consulted at
            admission -- the hook the ``queue_overload`` fault kind uses
            to force rejections deterministically.
        tenants: Optional :class:`~repro.federation.tenancy.TenantRegistry`
            turning admission tenant-scoped: weighted queue slices,
            token-bucket quotas, per-(shard, tenant) breakers and
            tenant-prefixed control-plane charges.  Tenant-tagged
            submissions require a prior :meth:`register_tenant`.
    """

    def __init__(self, channel: Channel, clock: VirtualClock,
                 queue_capacity: int = 64,
                 drain_seconds_per_message: float = DISPATCH_SECONDS,
                 overloaded: Optional[Callable[[str], bool]] = None,
                 tenants: Optional["TenantRegistry"] = None):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if drain_seconds_per_message < 0:
            raise ValueError(
                "drain_seconds_per_message must be non-negative")
        self.channel = channel
        self.clock = clock
        self.queue_capacity = queue_capacity
        self.drain_seconds_per_message = drain_seconds_per_message
        self.overloaded = overloaded
        self.tenants = tenants
        self._queues: Dict[str, Deque[_QueueEntry]] = {}
        self.stats: Dict[str, ShardQueueStats] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        #: (shard, tenant) -> tenant-scoped breaker; a tenant's failures
        #: fence only that tenant's path to the shard.
        self.tenant_breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        #: (shard, tenant) -> tenant-restricted counters.
        self.tenant_stats: Dict[Tuple[str, str], TenantQueueStats] = {}
        self._tenant_channels: Dict[str, Channel] = {}
        self._tenant_buckets: Dict[str, Any] = {}

    @property
    def ledger(self) -> CostLedger:
        return self.channel.ledger

    # ------------------------------------------------------------------
    # Shard registry.
    # ------------------------------------------------------------------

    def register_shard(self, shard: str,
                       failure_threshold: int = 3,
                       cooldown_seconds: float = 60.0) -> CircuitBreaker:
        """Create (or return) the queue and breaker for one shard."""
        if shard not in self._queues:
            self._queues[shard] = deque()
            self.stats[shard] = ShardQueueStats()
            self.breakers[shard] = CircuitBreaker(
                self.clock, failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                charge_open=self._charge_circuit_open)
        return self.breakers[shard]

    def _charge_circuit_open(self) -> None:
        self.ledger.charge(CAT_FAULT_CIRCUIT_OPEN, 0.0, count=1)

    def queue_depth(self, shard: str, tenant: Optional[str] = None) -> int:
        """Entries waiting in one shard's queue (optionally one tenant's)."""
        entries = self._queues.get(shard, ())
        if tenant is None:
            return len(entries)
        return sum(1 for e in entries if e.tenant == tenant)

    # ------------------------------------------------------------------
    # Tenant registry.
    # ------------------------------------------------------------------

    def register_tenant(self, tenant_id: str,
                        channel: Optional[Channel] = None) -> None:
        """Bind one tenant's transfer channel (and build its bucket).

        The channel's ledger receives the tenant's control-plane and
        shed charges, keeping per-tenant accounting separable; the base
        channel is used when none is given (single-ledger deployments).
        """
        from repro.federation.tenancy import build_bucket

        if self.tenants is None:
            raise ValueError(
                "register_tenant needs an AsyncChannel built over a "
                "TenantRegistry")
        tenant = self.tenants.require(tenant_id)
        self._tenant_channels[tenant_id] = (
            channel if channel is not None else self.channel)
        if tenant_id not in self._tenant_buckets:
            self._tenant_buckets[tenant_id] = build_bucket(self.clock,
                                                           tenant)

    def tenant_channel(self, tenant_id: str) -> Channel:
        """The transfer channel a tenant's entries deliver through."""
        try:
            return self._tenant_channels[tenant_id]
        except KeyError:
            raise ValueError(
                f"tenant {tenant_id!r} has no registered channel; call "
                f"register_tenant first") from None

    def _tenant_ledger(self, tenant_id: str) -> CostLedger:
        return self.tenant_channel(tenant_id).ledger

    def tenant_breaker(self, shard: str, tenant_id: str,
                       failure_threshold: int = 3,
                       cooldown_seconds: float = 60.0) -> CircuitBreaker:
        """The (shard, tenant)-scoped breaker, created on first use."""
        key = (shard, tenant_id)
        if key not in self.tenant_breakers:
            def charge_open(tenant_id: str = tenant_id) -> None:
                self._tenant_ledger(tenant_id).charge(
                    CAT_FAULT_CIRCUIT_OPEN, 0.0, count=1)

            self.tenant_breakers[key] = CircuitBreaker(
                self.clock, failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                charge_open=charge_open)
        return self.tenant_breakers[key]

    def _tenant_stats(self, shard: str,
                      tenant_id: str) -> TenantQueueStats:
        key = (shard, tenant_id)
        if key not in self.tenant_stats:
            self.tenant_stats[key] = TenantQueueStats()
        return self.tenant_stats[key]

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------

    def _admission_seconds(self) -> float:
        return self.channel.profile.network_seconds(ADMISSION_BYTES,
                                                    messages=1)

    def _charge_admission_accept(self,
                                 tenant: Optional[str] = None) -> None:
        if tenant is not None:
            self._tenant_ledger(tenant).charge(
                admission_category("accept", tenant),
                self._admission_seconds(), count=1,
                payload_bytes=ADMISSION_BYTES)
        else:
            self.ledger.charge(CAT_COMM_ADMISSION_ACCEPT,
                               self._admission_seconds(), count=1,
                               payload_bytes=ADMISSION_BYTES)

    def _charge_admission_reject(self, tenant: Optional[str] = None,
                                 quota: bool = False) -> None:
        if tenant is not None:
            self._tenant_ledger(tenant).charge(
                admission_category("quota" if quota else "reject",
                                   tenant),
                self._admission_seconds(), count=1,
                payload_bytes=ADMISSION_BYTES)
        else:
            self.ledger.charge(CAT_COMM_ADMISSION_REJECT,
                               self._admission_seconds(), count=1,
                               payload_bytes=ADMISSION_BYTES)

    def _reject(self, shard: str, reason: str, retry_after: float,
                tenant: Optional[str] = None) -> AdmissionRejected:
        self._charge_admission_reject(tenant,
                                      quota=reason == REJECT_QUOTA)
        counters = [self.stats[shard]]
        if tenant is not None:
            counters.append(self._tenant_stats(shard, tenant))
        for stats in counters:
            if reason == REJECT_QUEUE_FULL:
                stats.rejected_full += 1
            elif reason == REJECT_CIRCUIT_OPEN:
                stats.rejected_fenced += 1
            elif reason == REJECT_QUOTA:
                stats.rejected_quota += 1
            else:
                stats.rejected_overload += 1
        if reason == REJECT_QUOTA:
            return QuotaExceeded(shard, tenant,
                                 retry_after_seconds=retry_after)
        return AdmissionRejected(shard, reason,
                                 retry_after_seconds=retry_after)

    def submit(self, shard: str, message: Message,
               arrival_delay: float = 0.0,
               tenant: Optional[str] = None) -> None:
        """Admit one upload into a shard's ingress queue, or raise.

        With a ``tenant``, admission is tenant-scoped: the tenant's
        breaker for this shard is consulted (not the shard-wide one),
        one quota token is spent (:class:`QuotaExceeded` when the bucket
        is dry), and the queue-full bound is the tenant's weighted slice
        of the shared capacity -- another tenant's backlog can never
        consume this tenant's slots.

        Raises:
            AdmissionRejected: The shard is fenced (breaker open), its
                queue (or the tenant's slice) is at capacity, or an
                injected overload is in force.  Charged before raising.
            QuotaExceeded: The tenant's token bucket ran dry; retry
                after the bucket's refill horizon.
        """
        self.register_shard(shard)
        if tenant is None:
            breaker = self.breakers[shard]
            if not breaker.allow():
                remaining = (breaker.opened_at + breaker.cooldown_seconds
                             - self.clock.now)
                raise self._reject(shard, REJECT_CIRCUIT_OPEN,
                                   retry_after=max(remaining, 0.0))
        else:
            if self.tenants is None:
                raise ValueError(
                    "tenant-tagged submit needs an AsyncChannel built "
                    "over a TenantRegistry")
            breaker = self.tenant_breaker(shard, tenant)
            if not breaker.allow():
                remaining = (breaker.opened_at + breaker.cooldown_seconds
                             - self.clock.now)
                raise self._reject(shard, REJECT_CIRCUIT_OPEN,
                                   retry_after=max(remaining, 0.0),
                                   tenant=tenant)
            bucket = self._tenant_buckets.get(tenant)
            if bucket is None:
                raise ValueError(
                    f"tenant {tenant!r} not registered; call "
                    f"register_tenant first")
            if not bucket.try_acquire():
                raise self._reject(shard, REJECT_QUOTA,
                                   retry_after=bucket.retry_after(),
                                   tenant=tenant)
        if self.overloaded is not None and self.overloaded(shard):
            raise self._reject(shard, REJECT_OVERLOAD,
                               retry_after=self.drain_seconds_per_message
                               * self.queue_capacity,
                               tenant=tenant)
        queue = self._queues[shard]
        if tenant is not None:
            slice_bound = self.tenants.share(tenant, self.queue_capacity)
            if self.queue_depth(shard, tenant) >= slice_bound:
                raise self._reject(
                    shard, REJECT_QUEUE_FULL,
                    retry_after=self.drain_seconds_per_message
                    * slice_bound,
                    tenant=tenant)
        if len(queue) >= self.queue_capacity:
            raise self._reject(
                shard, REJECT_QUEUE_FULL,
                retry_after=self.drain_seconds_per_message * len(queue),
                tenant=tenant)
        self._charge_admission_accept(tenant)
        queue.append(_QueueEntry(message=message, sender=message.sender,
                                 submitted_at=self.clock.now,
                                 arrival_delay=arrival_delay,
                                 tenant=tenant))
        stats = self.stats[shard]
        stats.accepted += 1
        stats.peak_depth = max(stats.peak_depth, len(queue))
        if tenant is not None:
            tstats = self._tenant_stats(shard, tenant)
            tstats.accepted += 1
            tstats.peak_depth = max(tstats.peak_depth,
                                    self.queue_depth(shard, tenant))

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def drain(self, shard: str, deadline: Optional[float] = None,
              tenant: Optional[str] = None) -> DrainOutcome:
        """Deliver one shard's backlog in FIFO order.

        Each dequeue advances the virtual clock by the dispatch cost.
        An entry whose ``ready_at`` (or the current modelled time) lies
        past ``deadline`` is *shed*: charged to ``fault.shed`` with its
        wire bytes and reported, never silently dropped -- the round
        degrades into quorum + Eq. 6 partial aggregation.  Transfer
        failures (exhausted retries) are returned rather than raised so
        one sick sender cannot abort the whole drain; the caller feeds
        them to the shard's circuit breaker.

        With a ``tenant``, only that tenant's entries are dispatched
        (in their own FIFO order, through the tenant's registered
        channel, shed charges against the tenant's ledger); other
        tenants' entries stay queued untouched.  This is what makes a
        tenant's drain timeline independent of its neighbours' backlogs.
        """
        self.register_shard(shard)
        queue = self._queues[shard]
        stats = self.stats[shard]
        outcome = DrainOutcome()
        kept: Deque[_QueueEntry] = deque()
        while queue:
            entry = queue.popleft()
            if tenant is not None and entry.tenant != tenant:
                kept.append(entry)
                continue
            tstats = (self._tenant_stats(shard, entry.tenant)
                      if entry.tenant is not None else None)
            channel = (self.tenant_channel(entry.tenant)
                       if entry.tenant is not None else self.channel)
            self.clock.advance(self.drain_seconds_per_message)
            if deadline is not None and \
                    max(entry.ready_at, self.clock.now) > deadline:
                wire = (entry.message.ciphertext_count
                        * channel.profile.wire_bytes(
                            entry.message.ciphertext_bytes,
                            packed=entry.message.packed)
                        + entry.message.plaintext_bytes)
                channel.ledger.charge(CAT_FAULT_SHED, 0.0, count=1,
                                      payload_bytes=wire)
                stats.shed += 1
                if tstats is not None:
                    tstats.shed += 1
                outcome.shed.append((entry.sender, "deadline"))
                continue
            try:
                payload = channel.send(entry.message)
            except ChannelError as error:
                stats.failed += 1
                if tstats is not None:
                    tstats.failed += 1
                outcome.failed.append((entry.sender, error))
                continue
            stats.delivered += 1
            if tstats is not None:
                tstats.delivered += 1
            outcome.delivered.append((entry.sender, payload))
        queue.extend(kept)
        return outcome

    # ------------------------------------------------------------------
    # Elastic rebalancing support.
    # ------------------------------------------------------------------

    def migrate(self, source: str,
                route: Callable[[int, str], str]) -> Dict[str, int]:
        """Hand every queued entry of ``source`` to new shard queues.

        The shard pool's split/merge handoff: ``route(index, sender)``
        names the destination shard for the ``index``-th queued entry
        (deterministic routing is the caller's contract; the WAL-
        journaled handoff record pins the same assignment for crash
        recovery).  Entries keep their submission metadata and relative
        order, and *acceptance travels with them*: ``migrated_out`` /
        ``migrated_in`` counters keep ``accepted + migrated_in -
        migrated_out == delivered + shed + failed + queued`` true per
        shard and per tenant -- an in-flight upload is never dropped
        and never double-counted across a rebalance.

        Returns destination shard -> entries moved.
        """
        self.register_shard(source)
        queue = self._queues[source]
        stats = self.stats[source]
        moved: Dict[str, int] = {}
        entries = list(queue)
        queue.clear()
        for index, entry in enumerate(entries):
            target = route(index, entry.sender)
            if target == source:
                queue.append(entry)
                continue
            self.register_shard(target)
            target_queue = self._queues[target]
            target_stats = self.stats[target]
            target_queue.append(entry)
            stats.migrated_out += 1
            target_stats.migrated_in += 1
            target_stats.peak_depth = max(target_stats.peak_depth,
                                          len(target_queue))
            if entry.tenant is not None:
                self._tenant_stats(source, entry.tenant).migrated_out += 1
                tstats = self._tenant_stats(target, entry.tenant)
                tstats.migrated_in += 1
                tstats.peak_depth = max(
                    tstats.peak_depth,
                    self.queue_depth(target, entry.tenant))
            moved[target] = moved.get(target, 0) + 1
        return moved
