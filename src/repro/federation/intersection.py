"""Private set intersection for vertical sample alignment.

Vertical federated learning (Hetero LR / SBT / NN) requires the guest
and host to find their *common sample IDs* without revealing the rest of
their user lists -- FATE runs an RSA blind-signature PSI before every
vertical job, and it is the protocol the paper's ``RSA::*`` APIs
(Table I) exist for.

Protocol (the classic blind-RSA PSI of Meadows / FATE's ``intersect``):

1. the host generates an RSA keypair and sends the public key;
2. the guest blinds each hashed ID: ``y = H(id) * r^e mod n`` with a
   fresh random ``r``, and sends the blinded values;
3. the host signs blindly: ``y^d = H(id)^d * r mod n``, returns them,
   and also sends ``K(H(id)^d)`` for its *own* IDs, where ``K`` is a
   second hash;
4. the guest unblinds (``* r^-1``), applies ``K``, and intersects the
   two fingerprint sets locally.

The host learns nothing about the guest's IDs (they are blinded); the
guest learns only the intersection (non-matching host fingerprints are
preimage-resistant).  All transfers are charged through the channel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.crypto.keys import RsaKeypair, generate_rsa_keypair
from repro.federation.channel import Channel, Message
from repro.federation.metrics import charge_model_compute
from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.ledger import CAT_HE_PSI_SIGN, CostLedger
from repro.mpint.primes import LimbRandom


def _hash_to_group(identifier: str, modulus: int) -> int:
    """First hash: map an ID into ``Z_n`` (full-domain-ish)."""
    digest = hashlib.sha256(identifier.encode("utf-8")).digest()
    digest += hashlib.sha256(digest).digest()
    return int.from_bytes(digest, "big") % modulus


def _fingerprint(value: int) -> bytes:
    """Second hash ``K``: fingerprint of a signed element."""
    length = max(1, (value.bit_length() + 7) // 8)
    return hashlib.sha256(value.to_bytes(length, "big")).digest()


@dataclass
class IntersectionResult:
    """Outcome of one PSI run."""

    common_ids: List[str]
    guest_set_size: int
    host_set_size: int
    modelled_seconds: float

    @property
    def intersection_size(self) -> int:
        """Matched IDs."""
        return len(self.common_ids)


class RsaIntersection:
    """Blind-RSA PSI between a guest and a host.

    Args:
        key_bits: RSA modulus size (paper-scale 1024-2048; tests use
            small keys).
        channel: Byte-counting channel; a private one when omitted.
        seed: Determinism seed for keys and blinding factors.
    """

    def __init__(self, key_bits: int = 1024,
                 channel: Optional[Channel] = None, seed: int = 0):
        self.key_bits = key_bits
        self.ledger = CostLedger()
        self.channel = channel if channel is not None else Channel(
            profile=DEFAULT_PROFILE, ledger=self.ledger)
        self._rng = LimbRandom(seed=seed)

    def run(self, guest_ids: Sequence[str],
            host_ids: Sequence[str]) -> IntersectionResult:
        """Execute the four-step protocol; returns the intersection."""
        ledger = self.channel.ledger
        before = ledger.total_seconds
        keypair: RsaKeypair = generate_rsa_keypair(self.key_bits,
                                                   rng=self._rng)
        n = keypair.public_key.n
        e = keypair.public_key.e
        d = keypair.private_key.d

        # (1) Host -> guest: the public key (tiny plaintext message).
        self.channel.send(Message(
            sender="host", receiver="guest", tag="psi.public_key",
            payload=(e, n), plaintext_bytes=self.key_bits // 8 + 8))

        # (2) Guest blinds its hashed IDs.
        blinds: List[int] = []
        blinded: List[int] = []
        for identifier in guest_ids:
            r = self._rng.random_unit(n)
            blinds.append(r)
            hashed = _hash_to_group(identifier, n)
            blinded.append((hashed * pow(r, e, n)) % n)
        charge_model_compute(ledger, 50.0 * len(guest_ids),
                             tag="model.psi.blind")
        self.channel.send(Message(
            sender="guest", receiver="host", tag="psi.blinded",
            payload=blinded, ciphertext_count=len(blinded),
            ciphertext_bytes=self.key_bits // 8))

        # (3) Host signs the blinded values and fingerprints its own IDs.
        signed_blinded = [pow(value, d, n) for value in blinded]
        # Signing cost: |guest| + |host| full-exponent RSA operations,
        # charged at the nominal key size through the CPU model.
        sign_ops = len(blinded) + len(host_ids)
        ledger.charge(
            CAT_HE_PSI_SIGN,
            DEFAULT_PROFILE.cpu_seconds(
                sign_ops,
                DEFAULT_PROFILE.words_per_decrypt(self.key_bits) // 4),
            count=sign_ops)
        host_fingerprints: Set[bytes] = {
            _fingerprint(pow(_hash_to_group(identifier, n), d, n))
            for identifier in host_ids
        }
        self.channel.send(Message(
            sender="host", receiver="guest", tag="psi.signed",
            payload=signed_blinded, ciphertext_count=len(signed_blinded),
            ciphertext_bytes=self.key_bits // 8))
        self.channel.send(Message(
            sender="host", receiver="guest", tag="psi.host_fingerprints",
            payload=host_fingerprints,
            plaintext_bytes=32 * len(host_fingerprints)))

        # (4) Guest unblinds, fingerprints, intersects.
        common: List[str] = []
        for identifier, blind, signature in zip(guest_ids, blinds,
                                                signed_blinded):
            unblinded = (signature * pow(blind, -1, n)) % n
            if _fingerprint(unblinded) in host_fingerprints:
                common.append(identifier)
        charge_model_compute(ledger, 50.0 * len(guest_ids),
                             tag="model.psi.unblind")

        return IntersectionResult(
            common_ids=common,
            guest_set_size=len(guest_ids),
            host_set_size=len(host_ids),
            modelled_seconds=ledger.total_seconds - before)
