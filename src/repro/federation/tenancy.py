"""Multi-tenant primitives: registry, quotas, and weighted fairness.

The ROADMAP's north star is one platform multiplexing *many*
federations over shared hardware; the PR 6 sharded service still assumes
a single federation owns the shard pool, so one misbehaving cohort can
flood queues and stall everyone.  This module supplies the tenant-level
vocabulary the event loop (:mod:`repro.federation.eventloop`) and the
multi-tenant service (:mod:`repro.federation.shard`) share:

- :class:`Tenant` -- identity, fair-share weight, token-bucket quota,
  and the public-key fingerprint that pins uploads to the keypair the
  tenant's federation actually runs (two tenants must never mix
  ciphertexts under each other's keys).
- :class:`TenantRegistry` -- the authoritative tenant table, JSON
  round-trippable so simulation traces replay bit-identically.
- :class:`TokenBucket` -- a lazily-refilled rate limiter over the event
  loop's :class:`~repro.federation.eventloop.VirtualClock`; admission
  spends one token per upload and the bucket's deficit yields the
  typed retry hint of ``QuotaExceeded``.
- :func:`weighted_fair_order` -- deterministic weighted-fair-queueing
  service order over per-tenant backlogs (virtual finish tags), with
  the classic bound the property suite asserts: in any prefix of
  length ``L`` a continuously-backlogged tenant is served at least
  ``floor(L * weight / total_weight) - 1`` times.

Isolation contract (asserted end-to-end by the tenant-isolation tests):
a tenant operating within its own weighted share and quota observes
*byte-identical* behaviour whether or not any other tenant floods,
crashes, or saturates its slice -- the only shared state is the clock,
the shard topology, and per-tenant-partitioned admission bookkeeping.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional

from repro.federation.eventloop import VirtualClock
from repro.tensor.meta import key_fingerprint as _key_fingerprint


class UnknownTenantError(KeyError):
    """An operation named a tenant the registry has never seen."""

    def __init__(self, tenant_id: str):
        self.tenant_id = tenant_id
        super().__init__(
            f"unknown tenant {tenant_id!r}; register it first")


def tenant_key_fingerprint(public_key) -> str:
    """Hex fingerprint of a Paillier public key, as a tenant pins it.

    The same 16-byte :func:`repro.tensor.meta.key_fingerprint` every
    :class:`~repro.tensor.meta.TensorMeta` carries, hex-encoded so it
    journals and JSON-round-trips cleanly.  The multi-tenant service
    compares it against the attached aggregator's engine fingerprint --
    two tenants must never mix ciphertexts under each other's keys.
    """
    return _key_fingerprint(public_key).hex()


@dataclass(frozen=True)
class Tenant:
    """One federation sharing the platform.

    Attributes:
        tenant_id: Stable identity; becomes the final segment of the
            tenant-prefixed ``comm.admission.*`` ledger categories, so
            it must not contain a dot.
        weight: Fair-share weight; the tenant's slice of every shared
            queue is ``capacity * weight / total_weight`` (floored, at
            least one slot).
        quota_rate: Token-bucket refill rate in uploads per modelled
            second; ``None`` leaves the tenant unmetered.
        quota_burst: Bucket depth -- the largest admission burst the
            quota allows.
        key_fingerprint: Optional pin to the tenant federation's public
            key (see :func:`key_fingerprint`); the multi-tenant service
            refuses an aggregator whose key does not match.
    """

    tenant_id: str
    weight: float = 1.0
    quota_rate: Optional[float] = None
    quota_burst: int = 16
    key_fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if "." in self.tenant_id:
            raise ValueError(
                f"tenant id {self.tenant_id!r} cannot contain '.' (it "
                f"segments dotted ledger categories)")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValueError("quota_rate must be positive (or None)")
        if self.quota_burst < 1:
            raise ValueError("quota_burst must be at least 1")

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {"tenant_id": self.tenant_id, "weight": self.weight,
                "quota_rate": self.quota_rate,
                "quota_burst": self.quota_burst,
                "key_fingerprint": self.key_fingerprint}

    @classmethod
    def from_dict(cls, data: dict) -> "Tenant":
        return cls(tenant_id=data["tenant_id"],
                   weight=data.get("weight", 1.0),
                   quota_rate=data.get("quota_rate"),
                   quota_burst=data.get("quota_burst", 16),
                   key_fingerprint=data.get("key_fingerprint"))


class TenantRegistry:
    """The authoritative tenant table.

    Iteration order is registration order (deterministic), which is the
    order the multi-tenant service runs tenant rounds in.
    """

    def __init__(self, tenants: Optional[List[Tenant]] = None):
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants or []:
            self.register(tenant)

    def register(self, tenant: Tenant) -> Tenant:
        """Add one tenant; re-registering the same id must be identical."""
        existing = self._tenants.get(tenant.tenant_id)
        if existing is not None and existing != tenant:
            raise ValueError(
                f"tenant {tenant.tenant_id!r} already registered with "
                f"different parameters")
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def require(self, tenant_id: str) -> Tenant:
        """The tenant record, or :class:`UnknownTenantError`."""
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise UnknownTenantError(tenant_id) from None

    def get(self, tenant_id: str) -> Optional[Tenant]:
        return self._tenants.get(tenant_id)

    @property
    def tenant_ids(self) -> List[str]:
        """Registered ids, in registration order."""
        return list(self._tenants)

    @property
    def total_weight(self) -> float:
        return sum(t.weight for t in self._tenants.values())

    def share(self, tenant_id: str, capacity: int) -> int:
        """``tenant_id``'s slice of a shared ``capacity``-slot queue.

        Floored weighted share, never below one slot -- the guarantee
        that no tenant can be starved out of admission entirely, and
        that one tenant's flood can never occupy another's slots.
        """
        tenant = self.require(tenant_id)
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        return max(1, int(capacity * tenant.weight / self.total_weight))

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {"tenants": [t.to_dict() for t in self]}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantRegistry":
        return cls([Tenant.from_dict(t)
                    for t in data.get("tenants", [])])


class TokenBucket:
    """A lazily-refilled token bucket over modelled time.

    ``rate`` tokens accrue per modelled second up to ``burst``; each
    admitted upload spends one.  Refill happens on access (no timers),
    so the bucket is exactly as deterministic as the clock driving it.
    """

    def __init__(self, clock: VirtualClock, rate: float, burst: int):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.clock = clock
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._refilled_at = clock.now

    def _refill(self) -> None:
        elapsed = self.clock.now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate)
        self._refilled_at = self.clock.now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after lazy refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: int = 1) -> bool:
        """Spend ``tokens`` if available; False leaves the bucket as-is."""
        if tokens < 1:
            raise ValueError("tokens must be at least 1")
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: int = 1) -> float:
        """Modelled seconds until ``tokens`` will have accrued."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


def weighted_fair_order(backlogs: Mapping[str, int],
                        weights: Mapping[str, float]) -> List[str]:
    """Deterministic WFQ service order over per-tenant backlogs.

    Classic virtual-finish-tag scheduling: tenant ``t``'s ``k``-th
    queued entry is tagged ``(k + 1) / weight(t)`` and service follows
    ascending tags, tenant id breaking ties.  The resulting fairness
    bound (property-tested): in any prefix of length ``L``, a tenant
    with at least ``floor(L * w / W)`` entries backlogged is served at
    least ``floor(L * w / W) - 1`` times -- no starvation beyond its
    weight, regardless of how the other backlogs are distributed.

    Args:
        backlogs: tenant id -> queued entry count (non-negative).
        weights: tenant id -> fair-share weight (positive); every
            backlogged tenant must have a weight.
    """
    heap: List = []
    for tenant, backlog in backlogs.items():
        if backlog < 0:
            raise ValueError(f"negative backlog for {tenant!r}")
        if backlog == 0:
            continue
        weight = weights.get(tenant)
        if weight is None or weight <= 0:
            raise ValueError(f"tenant {tenant!r} needs a positive weight")
        heapq.heappush(heap, (1.0 / weight, tenant, 1, backlog, weight))
    order: List[str] = []
    while heap:
        _tag, tenant, served, backlog, weight = heapq.heappop(heap)
        order.append(tenant)
        if served < backlog:
            heapq.heappush(heap, ((served + 1) / weight, tenant,
                                  served + 1, backlog, weight))
    return order


#: Default bucket parameters for tenants that declare no quota: an
#: effectively unmetered rate (admission never blocks on tokens).
UNMETERED_RATE = 1.0e12


def build_bucket(clock: VirtualClock, tenant: Tenant) -> TokenBucket:
    """The tenant's token bucket (unmetered when no quota is set)."""
    if tenant.quota_rate is None:
        return TokenBucket(clock, rate=UNMETERED_RATE,
                           burst=max(tenant.quota_burst, 1 << 20))
    return TokenBucket(clock, rate=tenant.quota_rate,
                       burst=tenant.quota_burst)
