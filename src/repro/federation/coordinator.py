"""Durable, failover-capable aggregation coordinator.

PR 1 made *clients* survivable; this module does the same for the
aggregator itself, the last single point of failure in the federation:

- :class:`RoundStateMachine` -- the legal lifecycle of one aggregation
  round (``open -> uploads -> quorum -> committed -> closed``), applied
  from :class:`~repro.federation.wal.WalRecord` transitions.  Every
  upload carries a dedupe key and every record a coordinator
  incarnation, so replayed or duplicated messages are applied *exactly
  once* and a deposed coordinator's writes are fenced off.
- :class:`DurableCoordinator` -- a write-ahead-logged wrapper around
  :class:`~repro.federation.aggregator.SecureAggregator`: each round
  transition is journaled *before* it takes effect, so a coordinator
  killed at any record boundary leaves a log from which
  :meth:`DurableCoordinator.recover` rebuilds a bit-identical state
  (accepted ciphertext uploads included) and finishes the round.
- :class:`LeaseManager` / :class:`StandbyCoordinator` -- hot-standby
  failover: the primary heartbeats a lease (heartbeats are charged to
  the channel like any other message); a standby tails the WAL, and
  once the lease expires it acquires a bumped incarnation, fences the
  old primary, and takes over mid-round.  Full-quorum failovers yield
  final weights identical to the fault-free run; degraded ones fall
  back to PR 1's partial-quorum Eq. 6 offset correction.

Determinism note: re-encrypting a vector after recovery draws fresh
Paillier randomizers, so the *ciphertexts* of post-recovery uploads
differ from an uninterrupted run -- but randomizers vanish at
decryption, so the decoded weights are bit-identical either way, and
the uploads accepted *before* the crash are reused verbatim from the
log (that part of the state really is bit-identical, which
:meth:`RoundStateMachine.digest` asserts).
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.federation.aggregator import AggregationRound, SecureAggregator
from repro.federation.channel import ChannelError, Message
from repro.federation.faults import QuorumError
from repro.federation.serialization import (
    deserialize_tensor,
    serialize_tensor,
)
from repro.federation.wal import (
    DECRYPT_COMMITTED,
    PARTIAL_COMMITTED,
    QUORUM_REACHED,
    REBALANCE_KINDS,
    ROUND_CLOSE,
    ROUND_OPEN,
    UPLOAD_ACCEPTED,
    WalRecord,
    WriteAheadLog,
)
from repro.tensor.cipher import CipherTensor


class CoordinatorError(RuntimeError):
    """Base class for coordinator lifecycle failures."""


class InvalidTransitionError(CoordinatorError):
    """A WAL record arrived in an order no healthy coordinator writes."""


class StaleIncarnationError(CoordinatorError):
    """A deposed coordinator tried to act after losing its lease."""


class LeaseError(CoordinatorError):
    """A lease was requested while a live holder still owns it."""


class CoordinatorKilled(CoordinatorError):
    """The fault injector killed the coordinator at a record boundary.

    Attributes:
        lsn: Index of the last record the coordinator durably appended
            before dying -- the replay cut point.
    """

    def __init__(self, lsn: int):
        self.lsn = lsn
        super().__init__(
            f"coordinator killed after appending WAL record {lsn}")


#: Wire size of one heartbeat message (holder, incarnation, expiry).
HEARTBEAT_BYTES = 64


@dataclass
class Lease:
    """One coordinator's claim on the primary role.

    Attributes:
        holder: Name of the coordinator holding the lease.
        incarnation: Monotonic fencing token; every takeover bumps it.
        expires_at: Modelled time the lease lapses without a heartbeat.
    """

    holder: str
    incarnation: int
    expires_at: float


class LeaseManager:
    """Heartbeat-renewed lease arbitration between primary and standby.

    Args:
        timeout_seconds: Lease duration; a holder that misses heartbeats
            for this long is considered dead and can be superseded.
        clock: Zero-argument callable returning the current (modelled)
            time.  The deterministic simulator passes its virtual
            clock; the default is wall-clock monotonic time.
    """

    def __init__(self, timeout_seconds: float = 30.0,
                 clock: Optional[Callable[[], float]] = None):
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        self.timeout_seconds = timeout_seconds
        # Real lease timekeeping needs a real clock; every simulated
        # path injects a deterministic one through ``clock``.
        self._clock = clock if clock is not None \
            else time.monotonic  # flcheck: allow[determinism]
        self.lease: Optional[Lease] = None

    def now(self) -> float:
        return self._clock()

    def expired(self) -> bool:
        """Whether the current lease (if any) has lapsed."""
        return self.lease is not None and self.now() >= self.lease.expires_at

    def acquire(self, holder: str) -> Lease:
        """Claim the lease; bumps the incarnation past any prior holder.

        Raises:
            LeaseError: A different holder's lease is still live.
        """
        if self.lease is not None and not self.expired() and \
                self.lease.holder != holder:
            raise LeaseError(
                f"{holder!r} cannot acquire: {self.lease.holder!r} holds "
                f"the lease until t={self.lease.expires_at:.3f}")
        incarnation = 0 if self.lease is None \
            else self.lease.incarnation + 1
        self.lease = Lease(holder=holder, incarnation=incarnation,
                           expires_at=self.now() + self.timeout_seconds)
        return self.lease

    def heartbeat(self, holder: str, incarnation: int,
                  channel=None, receiver: str = "standby") -> Lease:
        """Renew the lease; optionally charge the heartbeat to a channel.

        Raises:
            StaleIncarnationError: The heartbeat came from a holder that
                no longer owns the lease (fencing).
        """
        self.fence(incarnation, holder=holder)
        self.lease = Lease(holder=holder, incarnation=incarnation,
                           expires_at=self.now() + self.timeout_seconds)
        if channel is not None:
            channel.send(Message(
                sender=holder, receiver=receiver,
                tag="coordinator.heartbeat",
                payload={"holder": holder, "incarnation": incarnation},
                plaintext_bytes=HEARTBEAT_BYTES))
        return self.lease

    def fence(self, incarnation: int,
              holder: Optional[str] = None) -> None:
        """Reject an action from a superseded incarnation."""
        if self.lease is None:
            return
        if incarnation < self.lease.incarnation or (
                incarnation == self.lease.incarnation
                and holder is not None and holder != self.lease.holder):
            raise StaleIncarnationError(
                f"incarnation {incarnation}"
                f"{f' ({holder})' if holder else ''} is fenced: "
                f"{self.lease.holder!r} holds incarnation "
                f"{self.lease.incarnation}")


@dataclass
class RoundState:
    """Mutable state of the round currently in flight."""

    round_index: int
    tag: str
    num_clients: int
    quorum: int
    survivors: List[str] = field(default_factory=list)
    upload_frames: Dict[str, str] = field(default_factory=dict)
    dedupe_keys: set = field(default_factory=set)
    quorum_logged: bool = False
    summands: int = 0
    result: Optional[List[float]] = None
    partial_frame: Optional[str] = None
    closed: bool = False
    aborted: Optional[str] = None

    def to_state_dict(self) -> dict:
        """Canonical JSON-ready form, the basis of the state digest."""
        return {
            "round_index": self.round_index,
            "tag": self.tag,
            "num_clients": self.num_clients,
            "quorum": self.quorum,
            "survivors": list(self.survivors),
            "upload_frames": dict(sorted(self.upload_frames.items())),
            "dedupe_keys": sorted(self.dedupe_keys),
            "quorum_logged": self.quorum_logged,
            "summands": self.summands,
            "result": self.result,
            "partial_frame": self.partial_frame,
            "closed": self.closed,
            "aborted": self.aborted,
        }


class RoundStateMachine:
    """Applies WAL records to round state, exactly once each.

    The machine enforces the only record order a healthy coordinator
    produces; anything else raises :class:`InvalidTransitionError`.
    Duplicate uploads (same dedupe key) return ``False`` from
    :meth:`apply` instead of mutating state -- the exactly-once
    guarantee -- and records from an incarnation lower than the highest
    seen raise :class:`StaleIncarnationError` (fencing on replay).
    """

    def __init__(self):
        self.round: Optional[RoundState] = None
        #: round_index -> digest of the round's final state.
        self.closed_rounds: Dict[int, int] = {}
        self.max_incarnation = 0
        self.records_applied = 0

    # ------------------------------------------------------------------
    # Application.
    # ------------------------------------------------------------------

    def apply(self, record: WalRecord) -> bool:
        """Apply one record; returns ``False`` for a deduplicated no-op."""
        if record.incarnation < self.max_incarnation:
            raise StaleIncarnationError(
                f"record from incarnation {record.incarnation} after "
                f"incarnation {self.max_incarnation} acted")
        self.max_incarnation = record.incarnation
        if record.kind in REBALANCE_KINDS:
            raise InvalidTransitionError(
                f"{record.kind} records belong to the shard pool's "
                f"topology journal, not a round coordinator's log")
        handler = {
            ROUND_OPEN: self._apply_open,
            UPLOAD_ACCEPTED: self._apply_upload,
            QUORUM_REACHED: self._apply_quorum,
            DECRYPT_COMMITTED: self._apply_commit,
            PARTIAL_COMMITTED: self._apply_partial,
            ROUND_CLOSE: self._apply_close,
        }[record.kind]
        changed = handler(record)
        if changed:
            self.records_applied += 1
        return changed

    def _require_round(self, record: WalRecord) -> RoundState:
        if self.round is None or self.round.closed:
            raise InvalidTransitionError(
                f"{record.kind} with no round open")
        if self.round.round_index != record.round_index:
            raise InvalidTransitionError(
                f"{record.kind} names round {record.round_index} but "
                f"round {self.round.round_index} is open")
        return self.round

    def _apply_open(self, record: WalRecord) -> bool:
        if self.round is not None and not self.round.closed:
            raise InvalidTransitionError(
                f"round_open({record.round_index}) while round "
                f"{self.round.round_index} is still open")
        if record.round_index in self.closed_rounds:
            raise InvalidTransitionError(
                f"round {record.round_index} was already closed")
        payload = record.payload
        self.round = RoundState(
            round_index=record.round_index,
            tag=payload.get("tag", "gradients"),
            num_clients=int(payload.get("num_clients", 0)),
            quorum=int(payload.get("quorum", 0)))
        return True

    def _apply_upload(self, record: WalRecord) -> bool:
        state = self._require_round(record)
        if state.quorum_logged:
            raise InvalidTransitionError(
                "upload_accepted after quorum_reached")
        key = record.payload["dedupe_key"]
        if key in state.dedupe_keys:
            return False  # exactly-once: duplicate upload is a no-op
        state.dedupe_keys.add(key)
        client = record.payload["client"]
        state.survivors.append(client)
        state.upload_frames[client] = record.payload["frame"]
        return True

    def _apply_quorum(self, record: WalRecord) -> bool:
        state = self._require_round(record)
        if state.quorum_logged:
            return False
        survivors = list(record.payload.get("survivors", []))
        if survivors != state.survivors:
            raise InvalidTransitionError(
                f"quorum_reached names survivors {survivors} but the "
                f"log accepted {state.survivors}")
        state.quorum_logged = True
        state.summands = int(record.payload.get("summands",
                                                len(survivors)))
        return True

    def _apply_commit(self, record: WalRecord) -> bool:
        state = self._require_round(record)
        if not state.quorum_logged:
            raise InvalidTransitionError(
                "decrypt_committed before quorum_reached")
        if state.result is not None:
            return False
        state.result = list(record.payload["result"])
        return True

    def _apply_partial(self, record: WalRecord) -> bool:
        state = self._require_round(record)
        if not state.quorum_logged:
            raise InvalidTransitionError(
                "partial_committed before quorum_reached")
        if state.result is not None:
            raise InvalidTransitionError(
                "partial_committed after decrypt_committed: a round "
                "commits one or the other, never both")
        if state.partial_frame is not None:
            return False
        state.partial_frame = record.payload["frame"]
        return True

    def _apply_close(self, record: WalRecord) -> bool:
        state = self._require_round(record)
        state.closed = True
        state.aborted = record.payload.get("aborted")
        self.closed_rounds[state.round_index] = self.digest()
        return True

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------

    def has_upload(self, round_index: int, client: str) -> bool:
        """Whether a client's upload for a round is already applied."""
        return (self.round is not None
                and self.round.round_index == round_index
                and not self.round.closed
                and client in self.round.upload_frames)

    def upload_tensors(self, engine=None) -> List[CipherTensor]:
        """The accepted uploads as tensors, in acceptance order."""
        if self.round is None:
            return []
        tensors = []
        for client in self.round.survivors:
            tensor = deserialize_tensor(
                bytes.fromhex(self.round.upload_frames[client]))
            if engine is not None:
                tensor = CipherTensor(tensor.meta, words=list(tensor.words),
                                      engine=engine)
            tensors.append(tensor)
        return tensors

    def digest(self) -> int:
        """CRC-32 of the canonical state -- the bit-identity witness.

        Two machines that applied the same record prefix produce the
        same digest; the crash-consistency sweep asserts a recovered
        coordinator's digest equals the uninterrupted run's digest at
        the same record index.
        """
        state = {
            "round": (self.round.to_state_dict()
                      if self.round is not None else None),
            "closed_rounds": {str(k): v for k, v
                              in sorted(self.closed_rounds.items())},
            "max_incarnation": self.max_incarnation,
        }
        blob = json.dumps(state, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return zlib.crc32(blob)


class DurableCoordinator:
    """A :class:`SecureAggregator` whose rounds survive coordinator death.

    Every round transition is appended to the WAL *before* it takes
    effect in memory, so the log is always at least as new as the
    state.  Killing the coordinator after any append leaves a log from
    which a successor (same name restarted, or a hot standby) rebuilds
    the identical round state and finishes the round -- accepted uploads
    are reused verbatim from the log, never re-requested.

    Args:
        aggregator: The aggregation data path (engines, packer, channel,
            fault injector, quorum defaults).
        wal: The journal; a fresh in-memory log by default.  Passing a
            log with existing records recovers from it.
        name: Coordinator identity, for lease arbitration.
        incarnation: Fencing token; defaults to one more than the
            highest incarnation in the log (a successor) or 0 (a fresh
            log).
        lease_manager: Optional lease arbitration; when set, every
            append first fences this coordinator's incarnation, so a
            deposed primary raises :class:`StaleIncarnationError`
            instead of splitting the brain.
    """

    def __init__(self, aggregator: SecureAggregator,
                 wal: Optional[WriteAheadLog] = None,
                 name: str = "coordinator",
                 incarnation: Optional[int] = None,
                 lease_manager: Optional[LeaseManager] = None):
        self.aggregator = aggregator
        self.wal = wal if wal is not None else WriteAheadLog()
        self.name = name
        self.lease_manager = lease_manager
        self.machine = RoundStateMachine()
        #: State digest after each applied LSN -- ``digest_trail[k]`` is
        #: the bit-identity witness for "recovered after record k".
        self.digest_trail: List[int] = []
        for record in self.wal.records:
            self.machine.apply(record)
            self.digest_trail.append(self.machine.digest())
        if incarnation is None:
            incarnation = (self.machine.max_incarnation + 1
                           if len(self.wal) else 0)
        if incarnation < self.machine.max_incarnation:
            raise StaleIncarnationError(
                f"cannot run as incarnation {incarnation}: the log "
                f"already holds incarnation {self.machine.max_incarnation}")
        self.incarnation = incarnation
        #: Fault-injection hook: raise :class:`CoordinatorKilled` right
        #: after appending the record with this log sequence number.
        self.kill_after_lsn: Optional[int] = None

    # ------------------------------------------------------------------
    # Journaling.
    # ------------------------------------------------------------------

    def _log(self, kind: str, round_index: int, **payload) -> bool:
        """Fence, append, then apply one transition.

        Returns whether the record changed state (``False`` only for
        deduplicated uploads, which are not even appended).
        """
        if self.lease_manager is not None:
            self.lease_manager.fence(self.incarnation, holder=self.name)
        record = WalRecord(kind=kind, round_index=round_index,
                           incarnation=self.incarnation, payload=payload)
        lsn = self.wal.append(record)
        changed = self.machine.apply(record)
        self.digest_trail.append(self.machine.digest())
        if self.kill_after_lsn is not None and lsn >= self.kill_after_lsn:
            raise CoordinatorKilled(lsn)
        return changed

    def heartbeat(self, channel=None) -> None:
        """Renew this coordinator's lease (no-op without a manager)."""
        if self.lease_manager is not None:
            self.lease_manager.heartbeat(self.name, self.incarnation,
                                         channel=channel)

    # ------------------------------------------------------------------
    # Exactly-once upload intake.
    # ------------------------------------------------------------------

    @staticmethod
    def dedupe_key(round_index: int, client: str) -> str:
        """The per-message idempotence key for one client's upload."""
        return f"r{round_index}:{client}"

    def accept_upload(self, round_index: int, client: str,
                      tensor: CipherTensor) -> bool:
        """Journal one accepted upload; duplicates are no-ops.

        Returns ``True`` when the upload was applied, ``False`` when
        its dedupe key was already in the round (a client retransmission
        after a failover, for example) -- the WAL is not even touched,
        so replay cannot double-apply it either.
        """
        key = self.dedupe_key(round_index, client)
        if self.machine.round is not None and \
                key in self.machine.round.dedupe_keys:
            return False
        frame = serialize_tensor(tensor.materialize()).hex()
        return self._log(UPLOAD_ACCEPTED, round_index, client=client,
                         dedupe_key=key, frame=frame)

    # ------------------------------------------------------------------
    # The durable round.
    # ------------------------------------------------------------------

    def run_round(self, client_vectors: Sequence[np.ndarray],
                  tag: str = "gradients",
                  round_index: Optional[int] = None,
                  min_quorum: Optional[int] = None) -> np.ndarray:
        """One write-ahead-logged aggregation round.

        Semantically :meth:`SecureAggregator.aggregate` (same fault
        injection, quorum, Eq. 6 offset correction), with every
        transition journaled first.  Calling it on a coordinator
        recovered mid-round *continues* that round: clients whose
        uploads are already in the log are skipped (their logged
        ciphertexts are reused), a logged quorum is not re-declared, and
        a logged decrypt is returned without recomputation.
        """
        agg = self.aggregator
        vectors = [np.asarray(v, dtype=np.float64)
                   for v in client_vectors]
        if not vectors:
            raise ValueError("run_round needs at least one client vector")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError("client vectors must share a length")
        if len(vectors) > agg.packer.max_safe_summands():
            raise OverflowError(
                f"{len(vectors)} clients exceed the packer's "
                f"{agg.packer.max_safe_summands()} safe summands")
        if round_index is None:
            round_index = agg.round_cursor
        required = min_quorum if min_quorum is not None else agg.min_quorum
        if required is None:
            required = len(vectors)
        if not 1 <= required <= len(vectors):
            raise ValueError(
                f"quorum {required} impossible with {len(vectors)} clients")

        state = self.machine.round
        if state is not None and state.closed \
                and state.round_index == round_index:
            # The log already decided this round (the predecessor died
            # right after its round_close): honour the decision instead
            # of reopening.
            agg.round_cursor = max(agg.round_cursor, round_index + 1)
            if state.aborted == "quorum":
                raise QuorumError(round_index, state.survivors,
                                  required, len(vectors))
            agg.last_round = AggregationRound(
                round_index=round_index,
                survivors=list(state.survivors),
                summands=state.summands)
            return np.asarray(state.result, dtype=np.float64)
        resuming = (state is not None and not state.closed
                    and state.round_index == round_index)
        if not resuming:
            self._log(ROUND_OPEN, round_index, tag=tag,
                      num_clients=len(vectors), quorum=required)
            state = self.machine.round

        report = AggregationRound(round_index=round_index,
                                  survivors=list(state.survivors),
                                  summands=len(state.survivors))
        injector = agg.injector
        deadline = agg.round_deadline_seconds
        if not state.quorum_logged:
            representative_charged = bool(state.survivors)
            for index, vector in enumerate(vectors):
                name = f"client-{index}"
                if self.machine.has_upload(round_index, name):
                    continue  # exactly-once: logged before the crash
                if injector is not None:
                    if not injector.is_alive(name, round_index):
                        report.dropped.append((name, "offline"))
                        continue
                    delay = injector.straggler_delay(name, round_index)
                    if delay > 0:
                        if deadline is not None and delay > deadline:
                            injector.charge_deadline_miss(
                                name, round_index, deadline)
                            report.dropped.append((name, "deadline"))
                            continue
                        injector.charge_straggler(name, round_index, delay)
                charged = not representative_charged
                representative_charged = True
                tensor = agg.encrypt_tensor(vector, charged=charged)
                try:
                    payload = agg.send_tensor(
                        tensor, sender=name, receiver=self.name,
                        tag=f"upload.{tag}")
                except ChannelError as error:
                    if injector is None:
                        raise
                    injector.charge_lost_update(
                        name, round_index, wasted_bytes=error.wasted_bytes)
                    report.dropped.append((name, "lost"))
                    continue
                agg.validate_ciphertexts(payload)
                self.accept_upload(round_index, name, payload)
            report.survivors = list(state.survivors)
            report.summands = len(state.survivors)
            if len(state.survivors) < required:
                self._log(ROUND_CLOSE, round_index, aborted="quorum")
                agg.round_cursor = round_index + 1
                agg.last_round = report
                raise QuorumError(round_index, state.survivors,
                                  required, len(vectors))
            self._log(QUORUM_REACHED, round_index,
                      survivors=list(state.survivors),
                      summands=len(state.survivors))
        else:
            report.survivors = list(state.survivors)
            report.summands = state.summands

        if state.result is None:
            uploaded = self.machine.upload_tensors(
                engine=agg.server_engine)
            aggregated = agg._server_sum(uploaded)
            for name in state.survivors:
                agg.send_tensor(aggregated, sender=self.name,
                                receiver=name, tag=f"download.{tag}")
            decoded = agg.decrypt_tensor(aggregated, charged=True)
            # The WAL's whole purpose here is to persist the decrypted
            # aggregate so a restarted coordinator can serve the round
            # without re-decrypting; this is the sanctioned exception.
            self._log(DECRYPT_COMMITTED, round_index,  # flcheck: allow[plaintext-wire]
                      result=list(np.asarray(decoded).ravel()),
                      summands=state.summands)
        decoded = np.asarray(state.result, dtype=np.float64)

        self._log(ROUND_CLOSE, round_index)
        agg.round_cursor = round_index + 1
        agg.last_round = report
        return decoded


class StandbyCoordinator:
    """A hot standby that tails the WAL and takes over a lapsed lease.

    The standby keeps a *shadow* :class:`RoundStateMachine` fed from the
    primary's log, so at takeover time it already holds the round state
    and only has to win the lease.  :meth:`take_over` asserts the shadow
    digest matches a fresh replay of the log -- the standby really was
    hot, not stale.

    Args:
        aggregator: The data path the standby will drive after takeover
            (its own engines in a real deployment; in the simulator the
            shared in-process engines, which hold the same key).
        lease_manager: The arbitration shared with the primary.
        name: Standby identity.
    """

    def __init__(self, aggregator: SecureAggregator,
                 lease_manager: LeaseManager, name: str = "standby"):
        self.aggregator = aggregator
        self.lease_manager = lease_manager
        self.name = name
        self.machine = RoundStateMachine()
        self._tail_lsn = 0

    def tail(self, image: bytes) -> int:
        """Apply records the primary appended since the last tail.

        Args:
            image: The WAL byte image (a shipped segment in production;
                the shared in-memory image in the simulator).

        Returns:
            Number of new records applied to the shadow machine.
        """
        log = WriteAheadLog.from_bytes(image)
        fresh = log.records_since(self._tail_lsn)
        for record in fresh:
            self.machine.apply(record)
        self._tail_lsn += len(fresh)
        return len(fresh)

    def take_over(self, image: bytes) -> DurableCoordinator:
        """Acquire the lapsed lease and resume from the log.

        Raises:
            LeaseError: The primary's lease has not expired.
        """
        self.tail(image)
        lease = self.lease_manager.acquire(self.name)
        wal = WriteAheadLog.from_bytes(image)
        successor = DurableCoordinator(
            self.aggregator, wal=wal, name=self.name,
            incarnation=lease.incarnation,
            lease_manager=self.lease_manager)
        if successor.machine.digest() != self.machine.digest():
            raise CoordinatorError(
                "standby shadow state diverged from the log at takeover")
        return successor


def recover_coordinator(aggregator: SecureAggregator, image: bytes,
                        name: str = "coordinator",
                        lease_manager: Optional[LeaseManager] = None
                        ) -> DurableCoordinator:
    """Rebuild a coordinator from a dead one's WAL image.

    Trims a torn tail (a record the dead coordinator was mid-append on),
    replays the intact prefix, and returns a successor with a bumped
    incarnation, ready for :meth:`DurableCoordinator.run_round` to
    finish the in-flight round.
    """
    wal = WriteAheadLog.from_bytes(image)
    return DurableCoordinator(aggregator, wal=wal, name=name,
                              lease_manager=lease_manager)
