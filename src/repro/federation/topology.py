"""Cluster topology: partitions on servers (paper Sec. VI-B).

"We divide each dataset into 64 partitions and upload them to each
server" -- the paper's four servers each process 16 partitions.  This
module models that layout's timing consequences:

- client-side compute and HE work parallelize across *servers*, not
  partitions: co-resident partitions serialize on their server;
- every partition's transfers cross the network individually (the
  server link is shared);
- one GPU per server is shared by its partitions.

The epoch-time combinator here converts per-partition component times
into cluster-level epoch times, used by the paper-scale extrapolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterTopology:
    """A federation cluster: ``partitions`` spread over ``servers``.

    The paper's testbed is ``ClusterTopology(servers=4, partitions=64)``.
    """

    servers: int
    partitions: int

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("need at least one server")
        if self.partitions < self.servers:
            raise ValueError("need at least one partition per server")

    @property
    def partitions_per_server(self) -> int:
        """Co-resident partitions (the serialization width)."""
        return math.ceil(self.partitions / self.servers)

    def compute_seconds(self, per_partition_seconds: float) -> float:
        """Wall-clock of partition-local work (compute or HE).

        Partitions on one server serialize; servers run in parallel, so
        the epoch sees the busiest server's queue.
        """
        if per_partition_seconds < 0:
            raise ValueError("seconds must be non-negative")
        return per_partition_seconds * self.partitions_per_server

    def transfer_seconds(self, per_partition_seconds: float) -> float:
        """Wall-clock of network transfers.

        The aggregation endpoint receives every partition's upload
        through one shared link: transfers serialize across *all*
        partitions (the communication bottleneck the paper attacks).
        """
        if per_partition_seconds < 0:
            raise ValueError("seconds must be non-negative")
        return per_partition_seconds * self.partitions

    def epoch_seconds(self, partition_he_seconds: float,
                      partition_comm_seconds: float,
                      partition_other_seconds: float) -> float:
        """Cluster epoch time from one partition's component times."""
        return (self.compute_seconds(partition_he_seconds)
                + self.transfer_seconds(partition_comm_seconds)
                + self.compute_seconds(partition_other_seconds))

    def speedup_over_single_server(self) -> float:
        """How much the cluster helps compute-bound work."""
        single = ClusterTopology(servers=1, partitions=self.partitions)
        return (single.partitions_per_server
                / self.partitions_per_server)


#: The paper's deployment.
PAPER_TOPOLOGY = ClusterTopology(servers=4, partitions=64)
