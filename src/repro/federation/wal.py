"""Write-ahead log for the durable coordinator.

The coordinator journals every round transition *before* applying it, so
a crash at any point leaves a log from which a successor reconstructs
the exact in-flight state (accepted uploads included, ciphertext words
and all).  The format is deliberately boring and fully self-checking:

    file  := [magic "FWL1"] record*          (magic only when non-empty)
    record:= [u32 payload_len][u32 crc32(payload)][payload]

The payload is canonical JSON (sorted keys, compact separators) of a
:class:`WalRecord` -- kind, round index, coordinator incarnation, and a
kind-specific payload dict.  Accepted client uploads embed the full
serialized ``FLT2`` tensor frame (hex), which is what makes recovery
*bit-identical*: the successor re-sums the very ciphertext words the
dead coordinator had accepted instead of asking clients to resend.

Replay semantics (:func:`replay_wal`) distinguish the two corruption
shapes a crash can leave:

- a **torn tail** -- the final record is incomplete (its declared length
  runs past end-of-file) or fails its CRC with nothing after it.  That
  is the signature of a coordinator killed mid-``write``; the tail is
  dropped and replay succeeds with the records before it.
- **mid-log corruption** -- a record fails validation but intact records
  follow it.  No crash produces that (appends are sequential), so it is
  a :class:`WalError`, never silently skipped.

Every decoder in this module raises the *typed* :class:`WalError` (a
:class:`~repro.federation.serialization.FrameError` subclass) on
malformed input; the wire fuzzer asserts that no mutation ever escalates
to a different exception class or decodes into bytes the encoder would
not produce.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.federation.serialization import FrameError

#: File magic; written before the first record.
WAL_MAGIC = b"FWL1"
#: Per-record frame header: payload length, crc32 of the payload.
RECORD_HEADER = struct.Struct(">II")
#: Hard ceiling on one record's payload -- anything larger is a length
#: lie, not a real record (the biggest genuine records are accepted
#: uploads, well under a mebibyte at benchmark key sizes).
MAX_PAYLOAD_BYTES = 1 << 26

#: The round-lifecycle record kinds, in their only legal order.  A
#: round commits exactly one of ``decrypt_committed`` (a decrypting
#: coordinator: the flat path, or the sharded root) or
#: ``partial_committed`` (a leaf shard that combines ciphertexts but
#: never holds the key: its commit is the combined ciphertext frame,
#: forwarded to the root).
ROUND_OPEN = "round_open"
UPLOAD_ACCEPTED = "upload_accepted"
QUORUM_REACHED = "quorum_reached"
DECRYPT_COMMITTED = "decrypt_committed"
PARTIAL_COMMITTED = "partial_committed"
ROUND_CLOSE = "round_close"
#: Elastic-rebalancing handoff records (PR 9).  These belong to the
#: *shard pool's* topology journal, never to a round coordinator's log:
#: ``shard_split`` pins a parent shard's replacement by two children
#: (and the deterministic assignment of its in-flight queue entries),
#: ``shard_merge`` pins two source shards' replacement by one target.
#: :class:`~repro.federation.coordinator.RoundStateMachine` explicitly
#: rejects both kinds.
SHARD_SPLIT = "shard_split"
SHARD_MERGE = "shard_merge"

RECORD_KINDS = (ROUND_OPEN, UPLOAD_ACCEPTED, QUORUM_REACHED,
                DECRYPT_COMMITTED, PARTIAL_COMMITTED, ROUND_CLOSE,
                SHARD_SPLIT, SHARD_MERGE)

#: The subset legal in a shard-pool topology journal.
REBALANCE_KINDS = (SHARD_SPLIT, SHARD_MERGE)


class WalError(FrameError):
    """A WAL frame failed validation (malformed, lying, or corrupt).

    The typed rejection the WAL decoders must produce for hostile or
    damaged input.  Subclasses
    :class:`~repro.federation.serialization.FrameError` (itself a
    ``ValueError``) so the fuzzer's typed-rejection oracle covers it.
    """


@dataclass(frozen=True)
class WalRecord:
    """One journaled round transition.

    Attributes:
        kind: One of :data:`RECORD_KINDS`.
        round_index: The aggregation round the record belongs to.
        incarnation: The writing coordinator's incarnation number; a
            successor's records carry a strictly larger incarnation, so
            replay can tell which coordinator wrote what and fencing can
            reject a deposed primary.
        payload: Kind-specific fields (client name and tensor frame for
            ``upload_accepted``, survivor list for ``quorum_reached``,
            the decoded result for ``decrypt_committed``, ...).
    """

    kind: str
    round_index: int
    incarnation: int = 0
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise ValueError(f"unknown WAL record kind {self.kind!r}; "
                             f"choose from {RECORD_KINDS}")
        if self.round_index < 0:
            raise ValueError("round_index must be non-negative")
        if self.incarnation < 0:
            raise ValueError("incarnation must be non-negative")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "round_index": self.round_index,
                "incarnation": self.incarnation, "payload": self.payload}


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: length prefix, CRC, canonical-JSON payload."""
    payload = json.dumps(record.to_dict(), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return RECORD_HEADER.pack(len(payload),
                              zlib.crc32(payload)) + payload


def decode_record(blob: bytes) -> WalRecord:
    """Strictly invert :func:`encode_record` on exactly one frame.

    The frame must consume the whole input, the CRC must match, the
    payload must be the *canonical* JSON encoding (re-encoding must be
    byte-identical), and every field must validate.  Anything else is a
    :class:`WalError`.
    """
    record, consumed = _decode_one(blob, offset=0)
    if consumed != len(blob):
        raise WalError(
            f"oversized record frame: {consumed} bytes consumed, "
            f"{len(blob)} supplied")
    return record


def _decode_one(blob: bytes, offset: int) -> Tuple[WalRecord, int]:
    """Decode the record framed at ``offset``; returns (record, end).

    Raises :class:`WalError` on any malformation; the *caller* decides
    whether a failure at end-of-log is a torn tail or corruption.
    """
    header_end = offset + RECORD_HEADER.size
    if header_end > len(blob):
        raise WalError(
            f"truncated record header at offset {offset}: needs "
            f"{RECORD_HEADER.size} bytes, {len(blob) - offset} left")
    length, crc = RECORD_HEADER.unpack(blob[offset:header_end])
    if length > MAX_PAYLOAD_BYTES:
        raise WalError(
            f"record at offset {offset} declares an implausible "
            f"{length}-byte payload (ceiling {MAX_PAYLOAD_BYTES})")
    end = header_end + length
    if end > len(blob):
        raise WalError(
            f"truncated record at offset {offset}: payload declares "
            f"{length} bytes, {len(blob) - header_end} left")
    payload = blob[header_end:end]
    if zlib.crc32(payload) != crc:
        raise WalError(
            f"record at offset {offset} failed its CRC "
            f"(stored 0x{crc:08x}, computed 0x{zlib.crc32(payload):08x})")
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WalError(
            f"record at offset {offset} holds invalid JSON "
            f"({error})") from error
    if not isinstance(data, dict):
        raise WalError(
            f"record at offset {offset} decodes to "
            f"{type(data).__name__}, not an object")
    try:
        record = WalRecord(
            kind=data["kind"], round_index=data["round_index"],
            incarnation=data.get("incarnation", 0),
            payload=data.get("payload", {}))
    except (KeyError, TypeError, ValueError) as error:
        raise WalError(
            f"record at offset {offset} rejected: "
            f"{type(error).__name__}: {error}") from error
    if encode_record(record) != blob[offset:end]:
        # Same CRC, different canonical form (e.g. reordered keys or
        # extra fields the dataclass drops): refuse rather than invent
        # an interpretation the encoder would never produce.
        raise WalError(
            f"record at offset {offset} is not in canonical form")
    return record, end


@dataclass
class WalReplay:
    """Outcome of replaying a WAL byte image.

    Attributes:
        records: The intact records, in append order.
        consumed_bytes: Bytes covered by the magic plus intact records;
            re-encoding :attr:`records` reproduces exactly this prefix.
        torn_tail: Whether trailing bytes were dropped as a torn write
            (coordinator killed mid-append).
    """

    records: List[WalRecord]
    consumed_bytes: int
    torn_tail: bool


def replay_wal(blob: bytes) -> WalReplay:
    """Replay a WAL image, tolerating exactly one torn tail.

    An empty image is an empty log.  A non-empty image must start with
    the full magic.  A record that fails validation is dropped as a torn
    tail only when nothing intact follows it; otherwise the log is
    corrupt and :class:`WalError` is raised.
    """
    if not blob:
        return WalReplay(records=[], consumed_bytes=0, torn_tail=False)
    if len(blob) < len(WAL_MAGIC) or blob[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalError(
            f"not a WAL image: expected magic {WAL_MAGIC!r}, got "
            f"{blob[:len(WAL_MAGIC)]!r}")
    records: List[WalRecord] = []
    offset = len(WAL_MAGIC)
    while offset < len(blob):
        try:
            record, offset_after = _decode_one(blob, offset)
        except WalError as error:
            if _intact_record_follows(blob, offset):
                raise WalError(
                    f"mid-log corruption: {error} (intact records "
                    f"follow, so this is damage, not a torn "
                    f"write)") from error
            return WalReplay(records=records, consumed_bytes=offset,
                             torn_tail=True)
        records.append(record)
        offset = offset_after
    return WalReplay(records=records, consumed_bytes=offset,
                     torn_tail=False)


def _intact_record_follows(blob: bytes, failed_offset: int) -> bool:
    """Whether any intact record exists after a failed frame.

    A torn write damages only the *final* append; damage with valid
    records after it means the log body itself was corrupted.  The scan
    resynchronizes on the failed record's declared extent when that is
    available, which is how a sequential writer would have laid out the
    next record.
    """
    header_end = failed_offset + RECORD_HEADER.size
    if header_end > len(blob):
        return False  # not even a full header: pure truncation
    length, _crc = RECORD_HEADER.unpack(blob[failed_offset:header_end])
    if length > MAX_PAYLOAD_BYTES or header_end + length >= len(blob):
        return False  # declared extent swallows the rest of the file
    try:
        _decode_one(blob, header_end + length)
    except WalError:
        return False
    return True


class WriteAheadLog:
    """An append-only, CRC-framed record journal.

    Backed by an optional file (``path``) and always by an in-memory
    byte image, so the deterministic simulator can run thousands of
    crash scenarios without touching disk while production use gets a
    real fsynced file.

    Args:
        path: Journal file; ``None`` keeps the log purely in memory.
        fsync: Flush-and-fsync the file after every append (the
            write-ahead guarantee).  Ignored for in-memory logs.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 fsync: bool = True):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._buffer = bytearray()
        self._records: List[WalRecord] = []
        self.torn_tail_dropped = False
        if self.path is not None and self.path.exists():
            self._load(self.path.read_bytes())

    # ------------------------------------------------------------------
    # Construction from an existing image.
    # ------------------------------------------------------------------

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WriteAheadLog":
        """Open an in-memory log over an existing image.

        A torn tail is trimmed (and flagged on
        :attr:`torn_tail_dropped`); mid-log corruption raises
        :class:`WalError`.
        """
        log = cls()
        log._load(blob)
        return log

    def _load(self, blob: bytes) -> None:
        result = replay_wal(blob)
        self._records = list(result.records)
        self._buffer = bytearray(blob[:result.consumed_bytes])
        self.torn_tail_dropped = result.torn_tail
        if result.torn_tail and self.path is not None:
            # Persist the trim so the next reader sees a clean log.
            self._flush_file()

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Durably append one record; returns its log sequence number."""
        frame = encode_record(record)
        if not self._buffer:
            self._buffer.extend(WAL_MAGIC)
        self._buffer.extend(frame)
        self._records.append(record)
        if self.path is not None:
            self._flush_file()
        return len(self._records) - 1

    def _flush_file(self) -> None:
        import os

        with open(self.path, "wb") as handle:
            handle.write(bytes(self._buffer))
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    @property
    def records(self) -> Tuple[WalRecord, ...]:
        """Every intact record, in append order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def image(self) -> bytes:
        """The full byte image (what a crashed coordinator leaves)."""
        return bytes(self._buffer)

    def records_since(self, lsn: int) -> List[WalRecord]:
        """Records appended at or after ``lsn`` (standby tailing)."""
        if lsn < 0:
            raise ValueError("lsn must be non-negative")
        return list(self._records[lsn:])
