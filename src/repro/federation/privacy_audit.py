"""Privacy audit: what does each party actually see on the wire?

Runs over a traced channel log (``Channel(trace=True)``) and classifies
every delivery by receiver and visibility:

- **ciphertext** -- Paillier/RSA payloads, opaque without the key;
- **plaintext**  -- anything shipped outside the encrypted pipeline
  (split decisions, masked residual metadata, PSI fingerprints, ...).

The audit is a *verification tool*, not a proof: it mechanically checks
that the implementation's information flow matches the protocol notes in
docs/protocols.md -- e.g. that a vertical host never receives raw labels
and that FATE-vs-FLBooster differ only in volume, never in visibility.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.federation.channel import Channel


@dataclass
class PartyExposure:
    """Everything one receiver observed."""

    ciphertexts_received: int = 0
    plaintext_bytes_received: int = 0
    plaintext_tags: Set[str] = field(default_factory=set)
    senders: Set[str] = field(default_factory=set)


@dataclass
class AuditReport:
    """Outcome of one audit pass over a channel trace."""

    exposures: Dict[str, PartyExposure]
    total_messages: int

    def plaintext_received_by(self, receiver: str) -> Set[str]:
        """Tags of plaintext-bearing messages a receiver saw."""
        exposure = self.exposures.get(receiver)
        return set(exposure.plaintext_tags) if exposure else set()

    def received_only_ciphertexts(self, receiver: str,
                                  allowed_plaintext_tags: Set[str]
                                  = frozenset()) -> bool:
        """True when a receiver saw no plaintext beyond an allowlist."""
        extra = self.plaintext_received_by(receiver) - \
            set(allowed_plaintext_tags)
        return not extra

    def summary_lines(self) -> List[str]:
        """Human-readable exposure summary."""
        lines = [f"audited {self.total_messages} deliveries"]
        for receiver in sorted(self.exposures):
            exposure = self.exposures[receiver]
            tags = ", ".join(sorted(exposure.plaintext_tags)) or "-"
            lines.append(
                f"  {receiver}: {exposure.ciphertexts_received} "
                f"ciphertexts, {exposure.plaintext_bytes_received} "
                f"plaintext bytes (tags: {tags}) from "
                f"{len(exposure.senders)} sender(s)")
        return lines


def audit_channel(channel: Channel) -> AuditReport:
    """Classify a traced channel's deliveries by receiver.

    Raises ``ValueError`` when the channel was not tracing (there is
    nothing to audit -- enable ``trace=True`` before the run).
    """
    if not channel.trace:
        raise ValueError("channel was not tracing; construct it with "
                         "trace=True before the protocol run")
    exposures: Dict[str, PartyExposure] = defaultdict(PartyExposure)
    for message in channel.log:
        exposure = exposures[message.receiver]
        exposure.senders.add(message.sender)
        exposure.ciphertexts_received += message.ciphertext_count
        if message.plaintext_bytes:
            exposure.plaintext_bytes_received += message.plaintext_bytes
            exposure.plaintext_tags.add(message.tag)
    return AuditReport(exposures=dict(exposures),
                       total_messages=len(channel.log))


def assert_vertical_privacy(report: AuditReport,
                            host_names: List[str]) -> None:
    """Raise ``AssertionError`` when a host saw unexpected plaintext.

    The vertical protocols allow hosts exactly one plaintext-bearing tag
    (the SBT split-info message); anything else means an implementation
    change leaked data outside the encrypted pipeline.
    """
    allowed = {"sbt.split_info"}
    for host in host_names:
        extra = report.plaintext_received_by(host) - allowed
        if extra:
            raise AssertionError(
                f"host {host!r} received plaintext outside the allowed "
                f"set: {sorted(extra)}")
