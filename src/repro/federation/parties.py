"""Role-based orchestration: explicit parties and message passing.

:mod:`repro.federation.aggregator` drives the secure pipeline as a
library call; this module exposes the same protocol in FATE's idiom --
named parties with mailboxes exchanging tagged messages through the
channel -- for users who want to see (or extend) the protocol steps:

- :class:`ClientParty` -- holds data and the keypair (the paper's Fig. 2
  places decryption at the clients);
- :class:`AggregatorParty` -- the server: aggregates ciphertexts it
  cannot read;
- :class:`SecureAveragingJob` -- the explicit state machine of one
  federated-averaging round, equivalent to
  :meth:`SecureAggregator.aggregate` (asserted by the tests).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.federation.channel import Message
from repro.federation.runtime import FederationRuntime


@dataclass
class Mailbox:
    """Tagged FIFO queues, one per message tag."""

    _queues: Dict[str, Deque[Any]] = field(
        default_factory=lambda: defaultdict(deque))

    def deliver(self, tag: str, payload: Any) -> None:
        """Enqueue a payload under a tag."""
        self._queues[tag].append(payload)

    def collect(self, tag: str) -> Any:
        """Pop the oldest payload with this tag.

        Raises ``LookupError`` when nothing matching has arrived -- a
        protocol-ordering bug, not an empty-queue condition to poll.
        """
        queue = self._queues.get(tag)
        if not queue:
            raise LookupError(f"no message tagged {tag!r} has arrived")
        return queue.popleft()

    def pending(self, tag: str) -> int:
        """Messages waiting under a tag."""
        return len(self._queues.get(tag, ()))


class Party:
    """A named federation participant bound to a runtime."""

    def __init__(self, name: str, runtime: FederationRuntime):
        self.name = name
        self.runtime = runtime
        self.mailbox = Mailbox()

    def send(self, receiver: "Party", tag: str, payload: Any,
             ciphertext_count: int = 0, plaintext_bytes: int = 0,
             packed: bool = False) -> None:
        """Route a tagged message through the (charged) channel."""
        delivered = self.runtime.channel.send(Message(
            sender=self.name, receiver=receiver.name, tag=tag,
            payload=payload, ciphertext_count=ciphertext_count,
            ciphertext_bytes=(
                self.runtime.client_engine.nominal_ciphertext_bytes()
                if ciphertext_count else 0),
            plaintext_bytes=plaintext_bytes, packed=packed))
        receiver.mailbox.deliver(tag, delivered)


class ClientParty(Party):
    """A data-holding client: encrypts its updates, decrypts aggregates.

    The representative client (``charged=True``) accounts for the
    parallel client-side work; the others run through the silent engine.
    """

    def __init__(self, name: str, runtime: FederationRuntime,
                 vector: np.ndarray, charged: bool):
        super().__init__(name, runtime)
        self.vector = np.asarray(vector, dtype=np.float64)
        self.charged = charged

    def upload_update(self, server: "AggregatorParty") -> None:
        """Encrypt the local vector and ship it to the server."""
        ciphertexts = self.runtime.aggregator.encrypt_vector(
            self.vector, charged=self.charged)
        self.send(server, tag="update", payload=ciphertexts,
                  ciphertext_count=len(ciphertexts),
                  packed=self.runtime.config.packed_serialization)

    def decrypt_aggregate(self, count: int,
                          summands: int) -> np.ndarray:
        """Decrypt the aggregate the server broadcast."""
        ciphertexts = self.mailbox.collect("aggregate")
        return self.runtime.aggregator.decrypt_vector(
            ciphertexts, count=count, summands=summands,
            charged=self.charged)


class AggregatorParty(Party):
    """The server: sums ciphertexts it cannot decrypt."""

    def aggregate_updates(self, num_clients: int) -> List[int]:
        """Combine all pending client updates homomorphically."""
        if self.mailbox.pending("update") != num_clients:
            raise LookupError(
                f"expected {num_clients} updates, "
                f"{self.mailbox.pending('update')} arrived")
        total: Optional[List[int]] = None
        for _ in range(num_clients):
            update = self.mailbox.collect("update")
            if total is None:
                total = list(update)
            else:
                total = self.runtime.server_engine.add_batch(total, update)
        assert total is not None
        return total

    def broadcast_aggregate(self, clients: Sequence[ClientParty],
                            aggregate: List[int]) -> None:
        """Send the encrypted aggregate back to every client."""
        for client in clients:
            self.send(client, tag="aggregate", payload=aggregate,
                      ciphertext_count=len(aggregate),
                      packed=self.runtime.config.packed_serialization)


class SecureAveragingJob:
    """One explicit federated-averaging round (the Fig. 2 loop).

    Args:
        runtime: The system configuration in force.
        client_vectors: One local update per client.
    """

    def __init__(self, runtime: FederationRuntime,
                 client_vectors: Sequence[np.ndarray]):
        if not client_vectors:
            raise ValueError("need at least one client vector")
        self.runtime = runtime
        self.server = AggregatorParty("arbiter", runtime)
        self.clients = [
            ClientParty(f"client-{index}", runtime, vector,
                        charged=(index == 0))
            for index, vector in enumerate(client_vectors)
        ]
        self._length = len(client_vectors[0])

    def run(self) -> np.ndarray:
        """Execute upload -> aggregate -> broadcast -> decrypt; returns
        the averaged vector as client 0 decodes it."""
        for client in self.clients:
            client.upload_update(self.server)
        aggregate = self.server.aggregate_updates(len(self.clients))
        self.server.broadcast_aggregate(self.clients, aggregate)
        decoded = [client.decrypt_aggregate(count=self._length,
                                            summands=len(self.clients))
                   for client in self.clients]
        return decoded[0] / len(self.clients)
