"""Role-based orchestration: explicit parties and message passing.

:mod:`repro.federation.aggregator` drives the secure pipeline as a
library call; this module exposes the same protocol in FATE's idiom --
named parties with mailboxes exchanging tagged messages through the
channel -- for users who want to see (or extend) the protocol steps:

- :class:`ClientParty` -- holds data and the keypair (the paper's Fig. 2
  places decryption at the clients);
- :class:`AggregatorParty` -- the server: aggregates ciphertexts it
  cannot read;
- :class:`SecureAveragingJob` -- the explicit state machine of one
  federated-averaging round, equivalent to
  :meth:`SecureAggregator.aggregate` (asserted by the tests).

Fault tolerance mirrors the library path: the job consults a
:class:`~repro.federation.faults.FaultInjector` per round, proceeds with
any quorum of survivors, and decodes with the *actual* summand count so
partial sums come back exact.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.federation.channel import ChannelError, Message
from repro.federation.faults import FaultInjector, QuorumError
from repro.federation.runtime import FederationRuntime
from repro.tensor.cipher import CipherTensor


@dataclass
class Mailbox:
    """Tagged FIFO queues, one per message tag.

    Each entry remembers its sender, so a server short of updates can
    name exactly which clients never reported.
    """

    _queues: Dict[str, Deque[Tuple[Optional[str], Any]]] = field(
        default_factory=lambda: defaultdict(deque))

    def deliver(self, tag: str, payload: Any,
                sender: Optional[str] = None) -> None:
        """Enqueue a payload under a tag, remembering who sent it."""
        self._queues[tag].append((sender, payload))

    def collect(self, tag: str) -> Any:
        """Pop the oldest payload with this tag.

        Raises ``LookupError`` when nothing matching has arrived -- a
        protocol-ordering bug, not an empty-queue condition to poll.
        """
        return self.collect_with_sender(tag)[1]

    def collect_with_sender(self, tag: str) -> Tuple[Optional[str], Any]:
        """Pop the oldest ``(sender, payload)`` pair with this tag."""
        queue = self._queues.get(tag)
        if not queue:
            raise LookupError(f"no message tagged {tag!r} has arrived")
        return queue.popleft()

    def pending(self, tag: str) -> int:
        """Messages waiting under a tag."""
        return len(self._queues.get(tag, ()))

    def senders(self, tag: str) -> List[str]:
        """Senders of the messages currently waiting under a tag."""
        return [sender for sender, _ in self._queues.get(tag, ())
                if sender is not None]


class Party:
    """A named federation participant bound to a runtime."""

    def __init__(self, name: str, runtime: FederationRuntime):
        self.name = name
        self.runtime = runtime
        self.mailbox = Mailbox()

    def send(self, receiver: "Party", tag: str, payload: Any,
             ciphertext_count: int = 0, plaintext_bytes: int = 0,
             packed: bool = False) -> None:
        """Route a tagged message through the (charged) channel."""
        delivered = self.runtime.channel.send(Message(
            sender=self.name, receiver=receiver.name, tag=tag,
            payload=payload, ciphertext_count=ciphertext_count,
            ciphertext_bytes=(
                self.runtime.client_engine.nominal_ciphertext_bytes()
                if ciphertext_count else 0),
            plaintext_bytes=plaintext_bytes, packed=packed))
        receiver.mailbox.deliver(tag, delivered, sender=self.name)


class ClientParty(Party):
    """A data-holding client: encrypts its updates, decrypts aggregates.

    The representative client (``charged=True``) accounts for the
    parallel client-side work; the others run through the silent engine.
    """

    def __init__(self, name: str, runtime: FederationRuntime,
                 vector: np.ndarray, charged: bool):
        super().__init__(name, runtime)
        self.vector = np.asarray(vector, dtype=np.float64)
        self.charged = charged

    def upload_update(self, server: "AggregatorParty") -> None:
        """Encrypt the local vector and ship it to the server."""
        tensor = self.runtime.aggregator.encrypt_tensor(
            self.vector, charged=self.charged)
        self.send(server, tag="update", payload=tensor,
                  ciphertext_count=tensor.num_words,
                  packed=self.runtime.config.packed_serialization)

    def decrypt_aggregate(self) -> np.ndarray:
        """Decrypt the aggregate the server broadcast.

        The tensor payload carries its own value count and summand
        count, so the client needs no protocol-level bookkeeping to
        decode it correctly.
        """
        tensor = self.mailbox.collect("aggregate")
        return self.runtime.aggregator.decrypt_tensor(
            tensor, charged=self.charged)


class AggregatorParty(Party):
    """The server: sums ciphertexts it cannot decrypt."""

    def aggregate_updates(self, num_clients: int,
                          expected_clients: Optional[Sequence[str]] = None,
                          min_quorum: Optional[int] = None) -> CipherTensor:
        """Combine pending client updates homomorphically.

        The sum is built as a lazy :class:`CipherTensor` expression and
        materialized once on the server engine, so the fusion planner
        flushes it in ``ceil(log2 k)`` batched launches.  The resulting
        tensor's metadata carries the actual summand count.

        Args:
            num_clients: Scheduled participant count.
            expected_clients: Names of the scheduled clients, so a short
                round can name exactly who is missing.
            min_quorum: Accept this many survivors instead of requiring
                all ``num_clients`` (partial aggregation).

        Raises:
            LookupError: Fewer updates than the quorum arrived; the
                message names the missing clients when their names are
                known.
        """
        arrived = self.mailbox.pending("update")
        required = min_quorum if min_quorum is not None else num_clients
        if arrived < required:
            missing = ""
            if expected_clients is not None:
                reported = set(self.mailbox.senders("update"))
                absent = [name for name in expected_clients
                          if name not in reported]
                if absent:
                    missing = f"; missing: {', '.join(absent)}"
            raise LookupError(
                f"expected {required} of {num_clients} updates, "
                f"{arrived} arrived{missing}")
        total: Optional[CipherTensor] = None
        for _ in range(arrived):
            update = self.mailbox.collect("update")
            self.runtime.aggregator.validate_ciphertexts(update)
            total = update if total is None else total + update
        assert total is not None
        return total.materialize(engine=self.runtime.server_engine)

    def broadcast_aggregate(self, clients: Sequence[ClientParty],
                            aggregate: CipherTensor) -> None:
        """Send the encrypted aggregate back to every client."""
        for client in clients:
            self.send(client, tag="aggregate", payload=aggregate,
                      ciphertext_count=aggregate.num_words,
                      packed=self.runtime.config.packed_serialization)


class SecureAveragingJob:
    """One explicit federated-averaging round (the Fig. 2 loop).

    Args:
        runtime: The system configuration in force.
        client_vectors: One local update per client.
    """

    def __init__(self, runtime: FederationRuntime,
                 client_vectors: Sequence[np.ndarray]):
        if not client_vectors:
            raise ValueError("need at least one client vector")
        self.runtime = runtime
        self.server = AggregatorParty("arbiter", runtime)
        self.clients = [
            ClientParty(f"client-{index}", runtime, vector,
                        charged=(index == 0))
            for index, vector in enumerate(client_vectors)
        ]

    def run(self, min_quorum: Optional[int] = None,
            injector: Optional[FaultInjector] = None,
            round_index: int = 0,
            deadline_seconds: Optional[float] = None) -> np.ndarray:
        """Execute upload -> aggregate -> broadcast -> decrypt; returns
        the averaged vector as the first surviving client decodes it.

        With a fault injector, crashed / dropped-out / too-slow clients
        skip the round and the server aggregates any quorum of
        survivors, decoding with the actual summand count.

        Raises:
            QuorumError: Fewer survivors than ``min_quorum``.
        """
        injector = injector if injector is not None \
            else self.runtime.injector
        participants: List[ClientParty] = []
        dropped: List[str] = []
        for client in self.clients:
            if injector is not None:
                if not injector.is_alive(client.name, round_index):
                    dropped.append(client.name)
                    continue
                delay = injector.straggler_delay(client.name, round_index)
                if delay > 0:
                    if deadline_seconds is not None and \
                            delay > deadline_seconds:
                        injector.charge_deadline_miss(
                            client.name, round_index, deadline_seconds)
                        dropped.append(client.name)
                        continue
                    injector.charge_straggler(client.name, round_index,
                                              delay)
            try:
                client.upload_update(self.server)
            except ChannelError as error:
                if injector is None:
                    raise
                injector.charge_lost_update(
                    client.name, round_index,
                    wasted_bytes=error.wasted_bytes)
                dropped.append(client.name)
                continue
            participants.append(client)

        required = min_quorum if min_quorum is not None \
            else len(self.clients)
        if len(participants) < required:
            raise QuorumError(round_index,
                              [c.name for c in participants],
                              required, len(self.clients))

        aggregate = self.server.aggregate_updates(
            len(self.clients),
            expected_clients=[c.name for c in self.clients],
            min_quorum=len(participants))
        self.server.broadcast_aggregate(participants, aggregate)
        # The decode's Eq. 6 offset correction rides the tensor metadata
        # (summands accumulated through the homomorphic sum).
        summands = aggregate.meta.summands
        decoded = [client.decrypt_aggregate() for client in participants]
        return decoded[0] / summands
