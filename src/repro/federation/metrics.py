"""Federation metrics: epoch reports and compute-time charging.

The ledger (:mod:`repro.ledger`) is the single source of truth; this
module adds the FL-level views the paper reports -- per-epoch totals with
the three-way component split of Table VI / Fig. 1 -- the helper that
charges plaintext model computation ("Others") from counted floating-point
operations, and the :class:`FaultReport` summarizing the ``fault.*``
categories the fault-tolerance layer writes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ledger import (
    CAT_MODEL_COMPUTE,
    COMPONENT_COMM,
    COMPONENT_HE,
    COMPONENT_OTHERS,
    CostLedger,
)

#: Effective plaintext FLOP rate of the training servers (one core with
#: vectorized numerics).  Only affects the "Others" slice, which the paper
#: measures at 0.1-0.6% of a FATE epoch.
CPU_FLOP_RATE = 5.0e9

#: Per-value cost of the encode/quantize/pad/pack (and mirror) pipeline
#: stages (Fig. 4): dominated by float <-> multi-precision-integer
#: conversion, not arithmetic.  Drives FLBooster's enlarged "Others"
#: share in Table VI.
PIPELINE_SECONDS_PER_VALUE = 1.0e-5


def flop_seconds(flops: float) -> float:
    """Modelled seconds for ``flops`` floating-point operations."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    return flops / CPU_FLOP_RATE


def charge_model_compute(ledger: CostLedger, flops: float,
                         tag: str = CAT_MODEL_COMPUTE) -> None:
    """Charge plaintext model computation to the "Others" component."""
    ledger.charge(tag, flop_seconds(flops), count=1)


def charge_pipeline_stage(ledger: CostLedger, values: int,
                          tag: str) -> None:
    """Charge an encode/pack (or unpack/decode) pipeline stage."""
    if values < 0:
        raise ValueError("values must be non-negative")
    ledger.charge(tag, values * PIPELINE_SECONDS_PER_VALUE, count=values)


@dataclass
class EpochReport:
    """Summary of one training epoch under one system configuration.

    Attributes:
        system: System name (FATE / HAFLO / FLBooster / ablations).
        model: FL model name.
        dataset: Dataset name.
        key_bits: Nominal key size.
        epoch_seconds: Total modelled epoch time.
        component_seconds: The Table VI three-way split.
        he_operations: HE op count this epoch.
        ciphertexts_sent: Ciphertext transfers this epoch.
        wire_bytes: Total bytes on the wire this epoch.
        loss: Training loss at epoch end (when the model reports one).
    """

    system: str
    model: str
    dataset: str
    key_bits: int
    epoch_seconds: float
    component_seconds: Dict[str, float] = field(default_factory=dict)
    he_operations: int = 0
    ciphertexts_sent: int = 0
    wire_bytes: int = 0
    loss: float = float("nan")

    @classmethod
    def from_ledger(cls, ledger: CostLedger, system: str, model: str,
                    dataset: str, key_bits: int,
                    loss: float = float("nan")) -> "EpochReport":
        """Snapshot a ledger into a report."""
        return cls(
            system=system,
            model=model,
            dataset=dataset,
            key_bits=key_bits,
            epoch_seconds=ledger.total_seconds,
            component_seconds=ledger.by_component(),
            he_operations=ledger.count("he"),
            ciphertexts_sent=ledger.count("comm"),
            wire_bytes=ledger.payload_bytes("comm"),
            loss=loss,
        )

    def component_percentages(self) -> Dict[str, float]:
        """The Table VI percentage cells."""
        total = sum(self.component_seconds.values())
        if total == 0:
            return {name: 0.0 for name in self.component_seconds}
        return {name: 100.0 * seconds / total
                for name, seconds in self.component_seconds.items()}

    @property
    def he_seconds(self) -> float:
        """Seconds in the HE component."""
        return self.component_seconds.get(COMPONENT_HE, 0.0)

    @property
    def comm_seconds(self) -> float:
        """Seconds in the communication component."""
        return self.component_seconds.get(COMPONENT_COMM, 0.0)

    @property
    def other_seconds(self) -> float:
        """Seconds in the others component."""
        return self.component_seconds.get(COMPONENT_OTHERS, 0.0)


@dataclass
class FaultReport:
    """Summary of the fault events charged to a ledger.

    Reads the ``fault.*`` categories written by
    :class:`~repro.federation.faults.FaultInjector` and the channel's
    retry machinery; each field is a ``(count, seconds, bytes)``-derived
    scalar the CLI and tests assert on.

    Attributes:
        crashes: Crash observations (one per affected round).
        dropouts: Transient-outage observations.
        stragglers: Straggler delays waited out.
        straggler_seconds: Modelled seconds lost to stragglers.
        deadline_misses: Stragglers excluded by the round deadline.
        lost_updates: Client uploads abandoned after retries.
        retransmissions: Channel retransmission attempts.
        backoff_seconds: Modelled seconds spent backing off.
        corrupted: Payloads caught by the checksum.
        giveups: Transfers abandoned entirely.
        coordinator_crashes: Coordinator kill-and-recover cycles
            (recovered from the write-ahead log).
        failovers: Standby takeovers of a dead coordinator's round.
        shard_crashes: Leaf shard coordinators killed and failed over
            (see :mod:`repro.federation.shard`).
        queue_overloads: Injected admission-control overloads.
        shed: Uploads shed by the event loop's round deadline (each
            degraded the round into partial aggregation, never lost
            silently).
        circuit_opens: Per-shard circuit-breaker open transitions
            (a sick shard fenced out of the cohort).
        tenant_floods: Injected ``tenant_flood`` retry storms absorbed
            by tenant-scoped admission (multi-tenant service).
        tenant_crashes: Rounds a tenant's whole federation sat out
            under an injected ``tenant_crash``.
        wasted_bytes: Wire bytes consumed by failed attempts and
            abandoned transfers.
        fault_seconds: Total modelled time across all ``fault.*``
            categories.
    """

    crashes: int = 0
    dropouts: int = 0
    stragglers: int = 0
    straggler_seconds: float = 0.0
    deadline_misses: int = 0
    lost_updates: int = 0
    retransmissions: int = 0
    backoff_seconds: float = 0.0
    corrupted: int = 0
    giveups: int = 0
    coordinator_crashes: int = 0
    failovers: int = 0
    shard_crashes: int = 0
    queue_overloads: int = 0
    shed: int = 0
    circuit_opens: int = 0
    tenant_floods: int = 0
    tenant_crashes: int = 0
    wasted_bytes: int = 0
    fault_seconds: float = 0.0

    @classmethod
    def from_ledger(cls, ledger: CostLedger) -> "FaultReport":
        """Snapshot a ledger's ``fault.*`` categories."""
        return cls(
            crashes=ledger.count("fault.crash"),
            dropouts=ledger.count("fault.dropout"),
            stragglers=ledger.count("fault.straggler"),
            straggler_seconds=ledger.seconds("fault.straggler"),
            deadline_misses=ledger.count("fault.deadline"),
            lost_updates=ledger.count("fault.lost_update"),
            retransmissions=ledger.count("fault.retransmit"),
            backoff_seconds=ledger.seconds("fault.retransmit"),
            corrupted=ledger.count("fault.corrupt"),
            giveups=ledger.count("fault.giveup"),
            coordinator_crashes=ledger.count("fault.coordinator_crash"),
            failovers=ledger.count("fault.failover"),
            shard_crashes=ledger.count("fault.shard_crash"),
            queue_overloads=ledger.count("fault.queue_overload"),
            shed=ledger.count("fault.shed"),
            circuit_opens=ledger.count("fault.circuit_open"),
            tenant_floods=ledger.count("fault.tenant_flood"),
            tenant_crashes=ledger.count("fault.tenant_crash"),
            wasted_bytes=(ledger.payload_bytes("fault.retransmit")
                          + ledger.payload_bytes("fault.giveup")
                          + ledger.payload_bytes("fault.lost_update")
                          + ledger.payload_bytes("fault.shed")),
            fault_seconds=ledger.seconds("fault"),
        )

    @property
    def total_events(self) -> int:
        """All fault events observed."""
        return (self.crashes + self.dropouts + self.stragglers
                + self.deadline_misses + self.lost_updates
                + self.retransmissions + self.corrupted + self.giveups
                + self.coordinator_crashes + self.failovers
                + self.shard_crashes + self.queue_overloads
                + self.shed + self.circuit_opens
                + self.tenant_floods + self.tenant_crashes)

    @property
    def has_faults(self) -> bool:
        """Whether anything at all went wrong."""
        return self.total_events > 0

    def merge(self, other: "FaultReport") -> "FaultReport":
        """Sum two reports (e.g. across epochs of one run)."""
        return FaultReport(
            crashes=self.crashes + other.crashes,
            dropouts=self.dropouts + other.dropouts,
            stragglers=self.stragglers + other.stragglers,
            straggler_seconds=self.straggler_seconds
            + other.straggler_seconds,
            deadline_misses=self.deadline_misses + other.deadline_misses,
            lost_updates=self.lost_updates + other.lost_updates,
            retransmissions=self.retransmissions + other.retransmissions,
            backoff_seconds=self.backoff_seconds + other.backoff_seconds,
            corrupted=self.corrupted + other.corrupted,
            giveups=self.giveups + other.giveups,
            coordinator_crashes=self.coordinator_crashes
            + other.coordinator_crashes,
            failovers=self.failovers + other.failovers,
            shard_crashes=self.shard_crashes + other.shard_crashes,
            queue_overloads=self.queue_overloads + other.queue_overloads,
            shed=self.shed + other.shed,
            circuit_opens=self.circuit_opens + other.circuit_opens,
            tenant_floods=self.tenant_floods + other.tenant_floods,
            tenant_crashes=self.tenant_crashes + other.tenant_crashes,
            wasted_bytes=self.wasted_bytes + other.wasted_bytes,
            fault_seconds=self.fault_seconds + other.fault_seconds,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (bench artifacts, per-tenant fault tables).

        Field-for-field with the dataclass, so
        ``FaultReport.from_dict(report.to_dict()) == report`` holds
        exactly -- the round-trip the tenancy tests assert.
        """
        return dict(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultReport":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultReport fields: {sorted(unknown)}")
        return cls(**data)

    def summary_lines(self) -> List[str]:
        """Human-readable summary (the CLI's fault table body)."""
        return [
            f"crashes observed      {self.crashes}",
            f"dropouts observed     {self.dropouts}",
            f"stragglers waited     {self.stragglers} "
            f"({self.straggler_seconds:.2f}s)",
            f"deadline misses       {self.deadline_misses}",
            f"lost updates          {self.lost_updates}",
            f"retransmissions       {self.retransmissions} "
            f"({self.backoff_seconds:.3f}s backoff)",
            f"corrupted payloads    {self.corrupted}",
            f"abandoned transfers   {self.giveups}",
            f"coordinator crashes   {self.coordinator_crashes}",
            f"standby failovers     {self.failovers}",
            f"shard crashes         {self.shard_crashes}",
            f"queue overloads       {self.queue_overloads}",
            f"uploads shed          {self.shed}",
            f"circuit opens         {self.circuit_opens}",
            f"tenant floods         {self.tenant_floods}",
            f"tenant crashes        {self.tenant_crashes}",
            f"wasted wire bytes     {self.wasted_bytes}",
            f"total fault seconds   {self.fault_seconds:.2f}",
        ]
