"""Federation metrics: epoch reports and compute-time charging.

The ledger (:mod:`repro.ledger`) is the single source of truth; this
module adds the FL-level views the paper reports -- per-epoch totals with
the three-way component split of Table VI / Fig. 1 -- and the helper that
charges plaintext model computation ("Others") from counted floating-point
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.ledger import (
    COMPONENT_COMM,
    COMPONENT_HE,
    COMPONENT_OTHERS,
    CostLedger,
)

#: Effective plaintext FLOP rate of the training servers (one core with
#: vectorized numerics).  Only affects the "Others" slice, which the paper
#: measures at 0.1-0.6% of a FATE epoch.
CPU_FLOP_RATE = 5.0e9

#: Per-value cost of the encode/quantize/pad/pack (and mirror) pipeline
#: stages (Fig. 4): dominated by float <-> multi-precision-integer
#: conversion, not arithmetic.  Drives FLBooster's enlarged "Others"
#: share in Table VI.
PIPELINE_SECONDS_PER_VALUE = 1.0e-5


def flop_seconds(flops: float) -> float:
    """Modelled seconds for ``flops`` floating-point operations."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    return flops / CPU_FLOP_RATE


def charge_model_compute(ledger: CostLedger, flops: float,
                         tag: str = "model.compute") -> None:
    """Charge plaintext model computation to the "Others" component."""
    ledger.charge(tag, flop_seconds(flops), count=1)


def charge_pipeline_stage(ledger: CostLedger, values: int,
                          tag: str) -> None:
    """Charge an encode/pack (or unpack/decode) pipeline stage."""
    if values < 0:
        raise ValueError("values must be non-negative")
    ledger.charge(tag, values * PIPELINE_SECONDS_PER_VALUE, count=values)


@dataclass
class EpochReport:
    """Summary of one training epoch under one system configuration.

    Attributes:
        system: System name (FATE / HAFLO / FLBooster / ablations).
        model: FL model name.
        dataset: Dataset name.
        key_bits: Nominal key size.
        epoch_seconds: Total modelled epoch time.
        component_seconds: The Table VI three-way split.
        he_operations: HE op count this epoch.
        ciphertexts_sent: Ciphertext transfers this epoch.
        wire_bytes: Total bytes on the wire this epoch.
        loss: Training loss at epoch end (when the model reports one).
    """

    system: str
    model: str
    dataset: str
    key_bits: int
    epoch_seconds: float
    component_seconds: Dict[str, float] = field(default_factory=dict)
    he_operations: int = 0
    ciphertexts_sent: int = 0
    wire_bytes: int = 0
    loss: float = float("nan")

    @classmethod
    def from_ledger(cls, ledger: CostLedger, system: str, model: str,
                    dataset: str, key_bits: int,
                    loss: float = float("nan")) -> "EpochReport":
        """Snapshot a ledger into a report."""
        return cls(
            system=system,
            model=model,
            dataset=dataset,
            key_bits=key_bits,
            epoch_seconds=ledger.total_seconds,
            component_seconds=ledger.by_component(),
            he_operations=ledger.count("he"),
            ciphertexts_sent=ledger.count("comm"),
            wire_bytes=ledger.payload_bytes("comm"),
            loss=loss,
        )

    def component_percentages(self) -> Dict[str, float]:
        """The Table VI percentage cells."""
        total = sum(self.component_seconds.values())
        if total == 0:
            return {name: 0.0 for name in self.component_seconds}
        return {name: 100.0 * seconds / total
                for name, seconds in self.component_seconds.items()}

    @property
    def he_seconds(self) -> float:
        """Seconds in the HE component."""
        return self.component_seconds.get(COMPONENT_HE, 0.0)

    @property
    def comm_seconds(self) -> float:
        """Seconds in the communication component."""
        return self.component_seconds.get(COMPONENT_COMM, 0.0)

    @property
    def other_seconds(self) -> float:
        """Seconds in the others component."""
        return self.component_seconds.get(COMPONENT_OTHERS, 0.0)
