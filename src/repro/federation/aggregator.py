"""Secure federated aggregation (paper Fig. 2 and Sec. V's pipeline).

Implements the full FLBooster data path for one aggregation round:

    gradients -> encode/quantize -> pack -> encrypt -> upload
              -> homomorphic sum -> download -> decrypt -> unpack -> decode

Ciphertext payloads move as :class:`~repro.tensor.cipher.CipherTensor` --
an immutable container carrying its own layout metadata (key fingerprint,
scheme, capacity, shape, summand count) -- so decodes never depend on
caller-supplied counts, and the server-side homomorphic sum is a *lazy*
tensor expression the fusion planner flushes into ``ceil(log2 k)``
batched kernel launches instead of ``k - 1`` sequential ones.

The module also keeps the two packing flavours the protocols need:

- *plaintext-side* packing (Eq. 9), owned by
  :class:`~repro.tensor.plain.PlainTensor`;
- *ciphertext-side* packing -- shift-and-add cipher compression in the
  style of SecureBoost+ [16] -- when the values to transmit are already
  encrypted (e.g. homomorphically computed gradients or histograms).
  ``[[v0]], [[v1]] -> [[v0 * 2^slot + v1]]`` costs one short scalar
  multiplication plus one addition per value and divides the ciphertexts
  to transmit and decrypt by the packing capacity.

Only the designated *representative* client charges the ledger for
client-side work: the paper's clients run in parallel, so wall-clock
client time is one client's time, while server work and every transfer are
charged in full.

The pre-tensor raw-list entry points (``encrypt_vector`` /
``decrypt_vector`` / ``send_encrypted``) were deprecated for one release
and are now gone; use the ``*_tensor`` methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.crypto.engine import HeEngine
from repro.federation.channel import Channel, ChannelError, Message
from repro.federation.faults import FaultInjector, QuorumError
from repro.federation.metrics import charge_pipeline_stage
from repro.ledger import CAT_PIPELINE_ENCODE_PACK, CAT_PIPELINE_UNPACK_DECODE
from repro.quantization.packing import BatchPacker
from repro.tensor.cipher import CipherTensor
from repro.tensor.plain import PlainTensor


@dataclass
class AggregationRound:
    """Outcome of one (possibly partial) aggregation round.

    Attributes:
        round_index: Global round counter of the aggregator.
        survivors: Client names whose updates reached the server.
        dropped: Client names lost this round (crash, dropout, deadline
            miss, or exhausted retries), with the reason.
        summands: Actual number of vectors summed -- the count used for
            the Eq. 6 translation-offset correction.
    """

    round_index: int
    survivors: List[str] = field(default_factory=list)
    dropped: List[tuple] = field(default_factory=list)
    summands: int = 0

    @property
    def partial(self) -> bool:
        """Whether any scheduled client missed the round."""
        return bool(self.dropped)


class SecureAggregator:
    """Encode-pack-encrypt-aggregate-decrypt rounds over a channel.

    Args:
        client_engine: Engine charged for (parallel) client-side HE work.
        silent_engine: Engine with an uncharged ledger, used to run the
            non-representative clients' mathematics.
        server_engine: Engine charged for server-side aggregation.
        packer: Plaintext packing plan (capacity 1 models "no BC").
        channel: Byte-counting network.
        packed_serialization: Wire format flag for the channel.
        injector: Default fault injector consulted per round (crash /
            dropout / straggler state); per-call arguments override it.
        min_quorum: Default minimum surviving clients per round; ``None``
            requires every scheduled client (the fault-free semantics).
        round_deadline_seconds: Default round deadline; stragglers whose
            delay exceeds it are excluded from the round instead of
            charged.
        fused: Flush the server-side sum through the lazy fusion planner
            (fewer, larger kernel launches).  ``False`` reproduces the
            eager per-pair path for comparison benchmarks.
    """

    def __init__(self, client_engine: HeEngine, silent_engine: HeEngine,
                 server_engine: HeEngine, packer: BatchPacker,
                 channel: Channel, packed_serialization: bool = False,
                 injector: Optional[FaultInjector] = None,
                 min_quorum: Optional[int] = None,
                 round_deadline_seconds: Optional[float] = None,
                 fused: bool = True):
        self.client_engine = client_engine
        self.silent_engine = silent_engine
        self.server_engine = server_engine
        self.packer = packer
        self.channel = channel
        self.packed_serialization = packed_serialization
        self.injector = injector
        self.min_quorum = min_quorum
        self.round_deadline_seconds = round_deadline_seconds
        self.fused = fused
        #: Global aggregation-round counter; checkpoints restore it so a
        #: resumed run lines scheduled fault events up correctly.
        self.round_cursor = 0
        #: Outcome of the most recent :meth:`aggregate` call.
        self.last_round: Optional[AggregationRound] = None

    @property
    def scheme(self):
        """The quantization scheme in force."""
        return self.packer.scheme

    # ------------------------------------------------------------------
    # Client-side pipeline stages (tensor interface).
    # ------------------------------------------------------------------

    def encrypt_tensor(self, values: np.ndarray,
                       charged: bool = True) -> CipherTensor:
        """Encode, pack and encrypt one gradient array into a tensor.

        Args:
            values: Real-valued gradient array (any shape).
            charged: Route through the charged client engine (the
                representative client) or the silent one.
        """
        engine = self.client_engine if charged else self.silent_engine
        plain = PlainTensor.encode(values, self.packer)
        if charged:
            # The encode/quantize/pad/pack stages of the pipeline
            # (Fig. 4): float -> multi-precision conversion per value.
            charge_pipeline_stage(engine.ledger, plain.meta.count,
                                  tag=CAT_PIPELINE_ENCODE_PACK)
        return engine.encrypt_tensor(plain)

    def decrypt_tensor(self, tensor: CipherTensor,
                       charged: bool = True) -> np.ndarray:
        """Decrypt, unpack and decode an encrypted tensor.

        All the layout information -- value count, summand count, scheme
        -- comes from the tensor's own metadata; nothing is caller
        supplied.  Cross-key tensors raise
        :class:`~repro.tensor.meta.KeyMismatchError`.
        """
        engine = self.client_engine if charged else self.silent_engine
        plain = engine.decrypt_tensor(tensor)
        if charged:
            charge_pipeline_stage(engine.ledger, plain.meta.count,
                                  tag=CAT_PIPELINE_UNPACK_DECODE)
        return plain.decode()

    def send_tensor(self, tensor: CipherTensor, sender: str,
                    receiver: str, tag: str,
                    packed: Optional[bool] = None) -> CipherTensor:
        """Transmit a tensor, charging the wire at nominal sizes.

        Args:
            packed: Wire-format flag for byte accounting; defaults to the
                aggregator's ``packed_serialization`` setting.
        """
        materialized = tensor.materialize()
        return self.channel.send(Message.for_tensor(
            materialized, sender=sender, receiver=receiver, tag=tag,
            ciphertext_bytes=self.client_engine.nominal_ciphertext_bytes(),
            packed=self.packed_serialization if packed is None else packed))

    # ------------------------------------------------------------------
    # The full round.
    # ------------------------------------------------------------------

    def validate_ciphertexts(
            self, ciphertexts: Union[CipherTensor, Sequence[int]]) -> None:
        """Server-side sanity check: every ciphertext in ``[0, n^2)``.

        Paillier ciphertexts live in ``Z_{n^2}``; anything outside that
        range is a framing or corruption bug that would otherwise decrypt
        to silent garbage (Paillier is malleable, so corruption never
        errors on its own).  Accepts a :class:`CipherTensor` or a raw
        word sequence.
        """
        if isinstance(ciphertexts, CipherTensor):
            ciphertexts = ciphertexts.words
        bound = self.server_engine.public_key.n_squared
        for value in ciphertexts:
            if not isinstance(value, int) or not 0 <= value < bound:
                raise ValueError(
                    f"ciphertext outside [0, n^2): corrupted or "
                    f"misframed payload ({str(value)[:40]}...)")

    def aggregate(self, client_vectors: Sequence[np.ndarray],
                  tag: str = "gradients",
                  min_quorum: Optional[int] = None,
                  injector: Optional[FaultInjector] = None,
                  round_index: Optional[int] = None,
                  deadline_seconds: Optional[float] = None) -> np.ndarray:
        """One secure-averaging round; returns the slot-wise *sum*.

        Every client encrypts its vector; the representative client's work
        is charged, the others run silently (parallel execution).  Uploads,
        server-side homomorphic summation, downloads and the (parallel)
        decryption are charged in full.

        The server-side sum is a lazy :class:`CipherTensor` expression:
        with ``fused=True`` the planner coalesces it into level-wise
        batched additions (``ceil(log2 k)`` kernel launches); with
        ``fused=False`` it runs the eager pair-at-a-time path.  Both
        produce bit-identical ciphertext sums.

        Under a fault injector, clients may be crashed, dropped out,
        excluded by the round deadline (stragglers), or lose their upload
        after exhausting retries.  The round proceeds with the survivors
        as long as their number meets ``min_quorum`` (default: the
        aggregator's configured quorum, or *all* clients when none is
        set), and the tensor metadata accumulates the *actual* summand
        count so partial sums decode exactly (Eq. 6 offset correction).
        Details of the round land in :attr:`last_round`.

        Raises:
            QuorumError: Fewer survivors than the quorum.
        """
        vectors = [np.asarray(v, dtype=np.float64) for v in client_vectors]
        if not vectors:
            raise ValueError("aggregate needs at least one client vector")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError("client vectors must share a length")
        if len(vectors) > self.packer.max_safe_summands():
            raise OverflowError(
                f"{len(vectors)} clients exceed the packer's "
                f"{self.packer.max_safe_summands()} safe summands")

        injector = injector if injector is not None else self.injector
        if round_index is None:
            round_index = self.round_cursor
        if deadline_seconds is None:
            deadline_seconds = self.round_deadline_seconds
        required = min_quorum if min_quorum is not None else self.min_quorum
        if required is None:
            required = len(vectors)
        if not 1 <= required <= len(vectors):
            raise ValueError(
                f"quorum {required} impossible with {len(vectors)} clients")
        round_report = AggregationRound(round_index=round_index)

        uploaded: List[CipherTensor] = []
        representative_charged = False
        for index, vector in enumerate(vectors):
            name = f"client-{index}"
            if injector is not None:
                if not injector.is_alive(name, round_index):
                    round_report.dropped.append((name, "offline"))
                    continue
                delay = injector.straggler_delay(name, round_index)
                if delay > 0:
                    if deadline_seconds is not None and \
                            delay > deadline_seconds:
                        injector.charge_deadline_miss(name, round_index,
                                                      deadline_seconds)
                        round_report.dropped.append((name, "deadline"))
                        continue
                    injector.charge_straggler(name, round_index, delay)
            charged = not representative_charged
            representative_charged = True
            tensor = self.encrypt_tensor(vector, charged=charged)
            try:
                payload = self.send_tensor(tensor, sender=name,
                                           receiver="server",
                                           tag=f"upload.{tag}")
            except ChannelError as error:
                if injector is None:
                    raise
                injector.charge_lost_update(name, round_index,
                                            wasted_bytes=error.wasted_bytes)
                round_report.dropped.append((name, "lost"))
                continue
            self.validate_ciphertexts(payload)
            uploaded.append(payload)
            round_report.survivors.append(name)

        self.round_cursor = round_index + 1
        round_report.summands = len(uploaded)
        self.last_round = round_report
        if len(uploaded) < required:
            raise QuorumError(round_index, round_report.survivors,
                              required, len(vectors))

        aggregated = self._server_sum(uploaded)

        for name in round_report.survivors:
            self.send_tensor(aggregated, sender="server", receiver=name,
                             tag=f"download.{tag}")

        # The Eq. 6 offset correction rides the metadata: each surviving
        # tensor contributed summands=1, so the aggregate's summand count
        # is exactly the number of vectors actually summed and a partial
        # sum of k vectors subtracts k * alpha, not K * alpha.
        return self.decrypt_tensor(aggregated, charged=True)

    def _server_sum(self, uploaded: List[CipherTensor]) -> CipherTensor:
        """Homomorphically sum the uploads on the server engine."""
        if self.fused:
            total = uploaded[0]
            for other in uploaded[1:]:
                total = total + other
            return total.materialize(engine=self.server_engine)
        # Eager path: one add_batch per client pair, exactly the
        # pre-fusion data path (kept for the comparison benchmarks).
        total = uploaded[0].materialize(engine=self.server_engine)
        for other in uploaded[1:]:
            summed = total.meta.combine_add(other.meta)
            words = self.server_engine.add_batch(list(total.words),
                                                 list(other.words))
            total = CipherTensor(summed, words=words,
                                 engine=self.server_engine)
        return total

    def average(self, client_vectors: Sequence[np.ndarray],
                tag: str = "gradients", **kwargs) -> np.ndarray:
        """Secure federated averaging: :meth:`aggregate` divided by the
        number of vectors actually summed (the round's survivors)."""
        total = self.aggregate(client_vectors, tag=tag, **kwargs)
        summands = (self.last_round.summands if self.last_round is not None
                    else len(client_vectors))
        return total / max(summands, 1)

    # ------------------------------------------------------------------
    # Ciphertext-side packing (cipher compression).
    # ------------------------------------------------------------------

    def cipher_pack(self, ciphertexts: Sequence[int],
                    charged: bool = True) -> List[int]:
        """Pack already-encrypted values by homomorphic shift-and-add.

        ``[[word]] = sum_i [[v_i]] * 2^(slot * (capacity - 1 - i))`` -- the
        SecureBoost+ cipher-compression trick.  Each input must hold a
        value that fits one slot (value bits plus untouched overflow bits).
        Returns one ciphertext per ``capacity`` inputs.
        """
        engine = self.client_engine if charged else self.silent_engine
        codec_id = getattr(self.packer, "codec_id", "dense")
        if codec_id == "sparse":
            raise ValueError(
                "cipher_pack is undefined for the sparse codec: slot "
                "positions do not map to ciphertext order")
        capacity = self.packer.capacity
        slot_bits = self.packer.slot_bits
        if capacity == 1:
            return list(ciphertexts)
        packed: List[int] = []
        for start in range(0, len(ciphertexts), capacity):
            chunk = list(ciphertexts[start:start + capacity])
            if codec_id == "interleave":
                # LSB-first layout: shift each *value* into its slot;
                # partial chunks need no padding (high slots stay zero).
                word = chunk[0]
                for index, value in enumerate(chunk[1:], start=1):
                    shifted = engine.scalar_mul_batch(
                        [value], [1 << (slot_bits * index)])
                    word = engine.add_batch([word], shifted)[0]
                packed.append(word)
                continue
            # Dense MSB-first layout (Horner's scheme); left-align a
            # partial final chunk to keep slot indices fixed.
            pad_slots = capacity - len(chunk)
            word = chunk[0]
            for value in chunk[1:]:
                shifted = engine.scalar_mul_batch([word], [1 << slot_bits])
                word = engine.add_batch(shifted, [value])[0]
            if pad_slots:
                word = engine.scalar_mul_batch(
                    [word], [1 << (slot_bits * pad_slots)])[0]
            packed.append(word)
        return packed
