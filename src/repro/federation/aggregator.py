"""Secure federated aggregation (paper Fig. 2 and Sec. V's pipeline).

Implements the full FLBooster data path for one aggregation round:

    gradients -> encode/quantize -> pack -> encrypt -> upload
              -> homomorphic sum -> download -> decrypt -> unpack -> decode

plus the two packing flavours the protocols need:

- *plaintext-side* packing (Eq. 9) when the producer holds plaintexts;
- *ciphertext-side* packing -- shift-and-add cipher compression in the
  style of SecureBoost+ [16] -- when the values to transmit are already
  encrypted (e.g. homomorphically computed gradients or histograms).
  ``[[v0]], [[v1]] -> [[v0 * 2^slot + v1]]`` costs one short scalar
  multiplication plus one addition per value and divides the ciphertexts
  to transmit and decrypt by the packing capacity.

Only the designated *representative* client charges the ledger for
client-side work: the paper's clients run in parallel, so wall-clock
client time is one client's time, while server work and every transfer are
charged in full.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.crypto.engine import HeEngine
from repro.federation.channel import Channel, Message
from repro.federation.metrics import charge_model_compute, charge_pipeline_stage
from repro.quantization.packing import BatchPacker


class SecureAggregator:
    """Encode-pack-encrypt-aggregate-decrypt rounds over a channel.

    Args:
        client_engine: Engine charged for (parallel) client-side HE work.
        silent_engine: Engine with an uncharged ledger, used to run the
            non-representative clients' mathematics.
        server_engine: Engine charged for server-side aggregation.
        packer: Plaintext packing plan (capacity 1 models "no BC").
        channel: Byte-counting network.
        packed_serialization: Wire format flag for the channel.
    """

    def __init__(self, client_engine: HeEngine, silent_engine: HeEngine,
                 server_engine: HeEngine, packer: BatchPacker,
                 channel: Channel, packed_serialization: bool = False):
        self.client_engine = client_engine
        self.silent_engine = silent_engine
        self.server_engine = server_engine
        self.packer = packer
        self.channel = channel
        self.packed_serialization = packed_serialization

    @property
    def scheme(self):
        """The quantization scheme in force."""
        return self.packer.scheme

    # ------------------------------------------------------------------
    # Client-side pipeline stages.
    # ------------------------------------------------------------------

    def encrypt_vector(self, values: np.ndarray,
                       charged: bool = True) -> List[int]:
        """Encode, pack and encrypt one gradient vector.

        Args:
            values: Real-valued gradient array.
            charged: Route through the charged client engine (the
                representative client) or the silent one.
        """
        engine = self.client_engine if charged else self.silent_engine
        encoded = self.scheme.encode_array(values)
        words = self.packer.pack(encoded)
        if charged:
            # The encode/quantize/pad/pack stages of the pipeline
            # (Fig. 4): float -> multi-precision conversion per value.
            charge_pipeline_stage(engine.ledger, len(values),
                                  tag="pipeline.encode_pack")
        return engine.encrypt_batch(words)

    def decrypt_vector(self, ciphertexts: Sequence[int], count: int,
                       summands: int = 1, charged: bool = True) -> np.ndarray:
        """Decrypt, unpack and decode an aggregated vector.

        Args:
            ciphertexts: Packed ciphertext words.
            count: Number of real values packed inside.
            summands: How many vectors were slot-wise summed (for the
                translation-offset correction of Eq. 6).
            charged: Charge the client engine or run silent.
        """
        engine = self.client_engine if charged else self.silent_engine
        words = engine.decrypt_batch(list(ciphertexts))
        encoded = self.packer.unpack(words, count)
        if charged:
            charge_pipeline_stage(engine.ledger, count,
                                  tag="pipeline.unpack_decode")
        return self.scheme.decode_array(encoded, count=summands)

    # ------------------------------------------------------------------
    # The full round.
    # ------------------------------------------------------------------

    def aggregate(self, client_vectors: Sequence[np.ndarray],
                  tag: str = "gradients") -> np.ndarray:
        """One secure-averaging round; returns the slot-wise *sum*.

        Every client encrypts its vector; the representative client's work
        is charged, the others run silently (parallel execution).  Uploads,
        server-side homomorphic summation, downloads and the (parallel)
        decryption are charged in full.
        """
        vectors = [np.asarray(v, dtype=np.float64) for v in client_vectors]
        if not vectors:
            raise ValueError("aggregate needs at least one client vector")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError("client vectors must share a length")
        if len(vectors) > self.packer.max_safe_summands():
            raise OverflowError(
                f"{len(vectors)} clients exceed the packer's "
                f"{self.packer.max_safe_summands()} safe summands")

        nominal_bytes = self.client_engine.nominal_ciphertext_bytes()
        uploaded: List[List[int]] = []
        for index, vector in enumerate(vectors):
            ciphertexts = self.encrypt_vector(vector, charged=(index == 0))
            payload = self.channel.send(Message(
                sender=f"client-{index}", receiver="server",
                tag=f"upload.{tag}", payload=ciphertexts,
                ciphertext_count=len(ciphertexts),
                ciphertext_bytes=nominal_bytes,
                packed=self.packed_serialization))
            uploaded.append(payload)

        aggregated = uploaded[0]
        for other in uploaded[1:]:
            aggregated = self.server_engine.add_batch(aggregated, other)

        for index in range(len(vectors)):
            self.channel.send(Message(
                sender="server", receiver=f"client-{index}",
                tag=f"download.{tag}", payload=aggregated,
                ciphertext_count=len(aggregated),
                ciphertext_bytes=nominal_bytes,
                packed=self.packed_serialization))

        return self.decrypt_vector(aggregated, count=length,
                                   summands=len(vectors), charged=True)

    def average(self, client_vectors: Sequence[np.ndarray],
                tag: str = "gradients") -> np.ndarray:
        """Secure federated averaging: :meth:`aggregate` divided by K."""
        return self.aggregate(client_vectors, tag=tag) / len(client_vectors)

    # ------------------------------------------------------------------
    # Ciphertext-side packing (cipher compression).
    # ------------------------------------------------------------------

    def cipher_pack(self, ciphertexts: Sequence[int],
                    charged: bool = True) -> List[int]:
        """Pack already-encrypted values by homomorphic shift-and-add.

        ``[[word]] = sum_i [[v_i]] * 2^(slot * (capacity - 1 - i))`` -- the
        SecureBoost+ cipher-compression trick.  Each input must hold a
        value that fits one slot (value bits plus untouched overflow bits).
        Returns one ciphertext per ``capacity`` inputs.
        """
        engine = self.client_engine if charged else self.silent_engine
        capacity = self.packer.capacity
        slot_bits = self.packer.slot_bits
        if capacity == 1:
            return list(ciphertexts)
        packed: List[int] = []
        for start in range(0, len(ciphertexts), capacity):
            chunk = list(ciphertexts[start:start + capacity])
            # Left-align a partial final chunk to keep slot indices fixed.
            pad_slots = capacity - len(chunk)
            word = chunk[0]
            for value in chunk[1:]:
                shifted = engine.scalar_mul_batch([word], [1 << slot_bits])
                word = engine.add_batch(shifted, [value])[0]
            if pad_slots:
                word = engine.scalar_mul_batch(
                    [word], [1 << (slot_bits * pad_slots)])[0]
            packed.append(word)
        return packed

    def send_encrypted(self, ciphertexts: Sequence[int], sender: str,
                       receiver: str, tag: str,
                       already_packed: bool) -> List[int]:
        """Transmit ciphertexts, charging the wire at nominal sizes."""
        payload = list(ciphertexts)
        return self.channel.send(Message(
            sender=sender, receiver=receiver, tag=tag, payload=payload,
            ciphertext_count=len(payload),
            ciphertext_bytes=self.client_engine.nominal_ciphertext_bytes(),
            packed=self.packed_serialization and already_packed))
