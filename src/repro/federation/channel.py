"""Client-server communication model (paper Sec. I, "Communication
overhead").

Parties run in-process, so a "send" is an accounting event: the channel
computes the wire size of the payload (ciphertext bytes at the *nominal*
key size, inflated by the serialization format), charges the cost ledger
with the modelled transfer time, and hands the payload straight to the
receiver.

Two serialization formats are modelled, matching the systems compared in
the paper: per-element serialized ciphertext objects (the FATE / HAFLO
path, heavily bloated by object framing) and FLBooster's packed binary
arrays (Sec. V's data-conversion stage).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.ledger import CostLedger

#: Monotonic ids for message tracing.
_message_counter = itertools.count()


@dataclass
class Message:
    """One transfer between parties.

    Attributes:
        sender / receiver: Party names, for the trace log.
        tag: Protocol step name; becomes the ledger category suffix.
        payload: The actual Python object handed to the receiver.
        ciphertext_count: Ciphertexts inside the payload.
        ciphertext_bytes: Wire size of one ciphertext (nominal key size).
        plaintext_bytes: Additional non-encrypted payload bytes.
        packed: True when the payload uses FLBooster's binary packed
            serialization rather than per-element objects.
    """

    sender: str
    receiver: str
    tag: str
    payload: Any
    ciphertext_count: int = 0
    ciphertext_bytes: int = 0
    plaintext_bytes: int = 0
    packed: bool = False
    message_id: int = field(default_factory=lambda: next(_message_counter))


@dataclass
class ChannelStats:
    """Aggregate transfer statistics for one channel."""

    messages: int = 0
    ciphertexts: int = 0
    wire_bytes: int = 0
    modelled_seconds: float = 0.0
    retransmissions: int = 0


class ChannelError(RuntimeError):
    """A transfer exhausted its retransmission budget."""


class Channel:
    """Byte-counting network between federation parties.

    Args:
        profile: Hardware constants (bandwidth, latency, serialization
            bloat factors).
        ledger: Cost ledger charged with every transfer.
        trace: Keep full message objects for inspection (tests); disabled
            by default to bound memory in long runs.
        drop_probability: Per-attempt loss probability (failure
            injection); dropped attempts are retransmitted and charged
            again, up to ``max_retries``.
        max_retries: Retransmissions before :class:`ChannelError`.
        seed: Determinism seed for the loss process.
    """

    def __init__(self, profile: HardwareProfile = DEFAULT_PROFILE,
                 ledger: Optional[CostLedger] = None, trace: bool = False,
                 drop_probability: float = 0.0, max_retries: int = 5,
                 seed: int = 0):
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        import random as _random
        self.profile = profile
        self.ledger = ledger if ledger is not None else CostLedger()
        self.stats = ChannelStats()
        self.trace = trace
        self.log: List[Message] = []
        self.drop_probability = drop_probability
        self.max_retries = max_retries
        self._loss_rng = _random.Random(seed)

    def _attempts_for_one_delivery(self, tag: str) -> int:
        """Sample the attempt count under the loss process."""
        if self.drop_probability == 0.0:
            return 1
        attempts = 1
        while self._loss_rng.random() < self.drop_probability:
            if attempts > self.max_retries:
                raise ChannelError(
                    f"transfer {tag!r} dropped {attempts} times "
                    f"(retry budget {self.max_retries})")
            attempts += 1
        return attempts

    def send(self, message: Message) -> Any:
        """Deliver a message, charging its modelled transfer time.

        Returns the payload so call sites read naturally:
        ``received = channel.send(Message(...))``.  With failure
        injection enabled, dropped attempts are retransmitted (each
        charged in full) until delivery or :class:`ChannelError`.
        """
        cipher_wire = 0
        if message.ciphertext_count:
            per_ciphertext = self.profile.wire_bytes(
                message.ciphertext_bytes, packed=message.packed)
            cipher_wire = message.ciphertext_count * per_ciphertext
        wire_bytes = cipher_wire + message.plaintext_bytes
        attempts = self._attempts_for_one_delivery(message.tag)
        seconds = attempts * self.profile.network_seconds(wire_bytes,
                                                          messages=1)
        self.ledger.charge(f"comm.{message.tag}", seconds, count=1,
                           payload_bytes=attempts * wire_bytes)
        self.stats.messages += 1
        self.stats.ciphertexts += message.ciphertext_count
        self.stats.wire_bytes += attempts * wire_bytes
        self.stats.modelled_seconds += seconds
        self.stats.retransmissions += attempts - 1
        if self.trace:
            self.log.append(message)
        return message.payload

    def broadcast(self, message: Message, receivers: List[str]) -> Any:
        """Send the same payload to several receivers (charged per copy)."""
        for receiver in receivers:
            copy = Message(
                sender=message.sender,
                receiver=receiver,
                tag=message.tag,
                payload=message.payload,
                ciphertext_count=message.ciphertext_count,
                ciphertext_bytes=message.ciphertext_bytes,
                plaintext_bytes=message.plaintext_bytes,
                packed=message.packed,
            )
            self.send(copy)
        return message.payload
