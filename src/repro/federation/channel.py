"""Client-server communication model (paper Sec. I, "Communication
overhead").

Parties run in-process, so a "send" is an accounting event: the channel
computes the wire size of the payload (ciphertext bytes at the *nominal*
key size, inflated by the serialization format), charges the cost ledger
with the modelled transfer time, and hands the payload straight to the
receiver.

Two serialization formats are modelled, matching the systems compared in
the paper: per-element serialized ciphertext objects (the FATE / HAFLO
path, heavily bloated by object framing) and FLBooster's packed binary
arrays (Sec. V's data-conversion stage).

Fault tolerance: every :class:`Message` carries a checksum over its
payload; transfers are retried under a
:class:`~repro.federation.faults.RetryPolicy` (exponential backoff +
jitter, charged as modelled time), and an attached
:class:`~repro.federation.faults.FaultInjector` can drop or corrupt
attempts.  Failed attempts are charged to the ledger *before*
:class:`ChannelError` is raised, so lost work is never invisible.
"""

from __future__ import annotations

import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from repro.federation.faults import FaultInjector, RetryPolicy, jitter_seed
from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.ledger import (
    CAT_FAULT_CORRUPT,
    CAT_FAULT_GIVEUP,
    CAT_FAULT_RETRANSMIT,
    CostLedger,
    comm_category,
)
from repro.tensor.cipher import CipherTensor

#: Monotonic ids for message tracing.
_message_counter = itertools.count()

_CHECKSUM_MASK = (1 << 64) - 1
_CHECKSUM_SEED = 0x9E3779B97F4A7C15
_CHECKSUM_MULT = 1000003


def payload_checksum(payload: Any) -> int:
    """Deterministic 64-bit checksum of a message payload.

    Covers the payload shapes the federation ships -- (nested) lists of
    multi-precision integers, numpy arrays, dicts, strings -- without
    relying on Python's randomized ``hash``.  The receiver recomputes it
    to detect in-flight corruption (Paillier is malleable: a flipped bit
    decrypts to garbage instead of erroring, see
    ``tests/integration/test_failure_injection.py``).
    """
    return _mix(payload) & _CHECKSUM_MASK


def _mix(payload: Any) -> int:
    if payload is None:
        return _CHECKSUM_SEED
    if isinstance(payload, bool):
        return _CHECKSUM_SEED ^ int(payload)
    if isinstance(payload, int):
        # Fold huge ciphertext integers without hashing their full repr.
        return (payload ^ (payload >> 64) ^ (payload >> 128)) & _CHECKSUM_MASK
    if isinstance(payload, float):
        return zlib.adler32(repr(payload).encode())
    if isinstance(payload, (bytes, bytearray)):
        return zlib.adler32(bytes(payload))
    if isinstance(payload, str):
        return zlib.adler32(payload.encode())
    if isinstance(payload, np.ndarray):
        return zlib.adler32(payload.tobytes()) ^ _mix(payload.shape)
    if isinstance(payload, CipherTensor):
        # Cover the ciphertext words AND the metadata a receiver decodes
        # with -- a tampered summand count or fingerprint must fail the
        # checksum just like a flipped ciphertext bit.
        meta = payload.meta
        return _mix((payload.words, meta.key_fingerprint, meta.count,
                     meta.summands, meta.capacity, meta.shape))
    if isinstance(payload, (list, tuple)):
        digest = _CHECKSUM_SEED ^ len(payload)
        for item in payload:
            digest = (digest * _CHECKSUM_MULT) & _CHECKSUM_MASK
            digest ^= _mix(item)
        return digest
    if isinstance(payload, dict):
        digest = _CHECKSUM_SEED ^ len(payload)
        for key in sorted(payload, key=repr):
            digest = (digest * _CHECKSUM_MULT) & _CHECKSUM_MASK
            digest ^= _mix(key) ^ (_mix(payload[key]) << 1)
        return digest & _CHECKSUM_MASK
    return zlib.adler32(repr(payload).encode())


@dataclass
class Message:
    """One transfer between parties.

    Attributes:
        sender / receiver: Party names, for the trace log.
        tag: Protocol step name; becomes the ledger category suffix.
        payload: The actual Python object handed to the receiver.
        ciphertext_count: Ciphertexts inside the payload.
        ciphertext_bytes: Wire size of one ciphertext (nominal key size).
        plaintext_bytes: Additional non-encrypted payload bytes.
        packed: True when the payload uses FLBooster's binary packed
            serialization rather than per-element objects.
        checksum: 64-bit payload checksum, computed at construction;
            the channel verifies it on delivery and retransmits on
            mismatch (corruption detection).
    """

    sender: str
    receiver: str
    tag: str
    payload: Any
    ciphertext_count: int = 0
    ciphertext_bytes: int = 0
    plaintext_bytes: int = 0
    packed: bool = False
    checksum: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.checksum is None:
            self.checksum = payload_checksum(self.payload)

    @classmethod
    def for_tensor(cls, tensor: CipherTensor, sender: str, receiver: str,
                   tag: str, ciphertext_bytes: int,
                   packed: bool = False) -> "Message":
        """Build the message shipping one encrypted tensor.

        The ciphertext count comes from the tensor itself; ``packed``
        selects the binary packed wire format for byte accounting.
        """
        return cls(sender=sender, receiver=receiver, tag=tag,
                   payload=tensor, ciphertext_count=tensor.num_words,
                   ciphertext_bytes=ciphertext_bytes, packed=packed)


@dataclass
class ChannelStats:
    """Aggregate transfer statistics for one channel."""

    messages: int = 0
    ciphertexts: int = 0
    wire_bytes: int = 0
    modelled_seconds: float = 0.0
    retransmissions: int = 0
    corrupted: int = 0
    failed_messages: int = 0
    backoff_seconds: float = 0.0


class ChannelError(RuntimeError):
    """A transfer exhausted its retransmission budget.

    Attributes:
        tag: The message tag of the abandoned transfer.
        attempts: Attempts made (first transmission + retransmissions).
        wasted_bytes: Wire bytes consumed by the failed attempts (already
            charged to the ledger when this is raised).
    """

    def __init__(self, message: str, tag: Optional[str] = None,
                 attempts: int = 0, wasted_bytes: int = 0):
        super().__init__(message)
        self.tag = tag
        self.attempts = attempts
        self.wasted_bytes = wasted_bytes


class Channel:
    """Byte-counting network between federation parties.

    Args:
        profile: Hardware constants (bandwidth, latency, serialization
            bloat factors).
        ledger: Cost ledger charged with every transfer.
        trace: Keep full message objects for inspection (tests); disabled
            by default to bound memory in long runs.
        drop_probability: Per-attempt loss probability (failure
            injection); dropped attempts are retransmitted and charged
            again, up to the retry policy's budget.
        max_retries: Back-compat shorthand for
            ``RetryPolicy(max_retries=...)`` without backoff; ignored
            when ``retry_policy`` is given.
        seed: Determinism seed for the loss and jitter processes.
        retry_policy: Full retry/backoff configuration; backoff seconds
            are charged as modelled time under ``fault.retransmit``.
        injector: Optional fault injector contributing message loss and
            ciphertext corruption on top of ``drop_probability``.
    """

    def __init__(self, profile: HardwareProfile = DEFAULT_PROFILE,
                 ledger: Optional[CostLedger] = None, trace: bool = False,
                 drop_probability: float = 0.0, max_retries: int = 5,
                 seed: int = 0,
                 retry_policy: Optional[RetryPolicy] = None,
                 injector: Optional[FaultInjector] = None):
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.profile = profile
        self.ledger = ledger if ledger is not None else CostLedger()
        self.stats = ChannelStats()
        self.trace = trace
        self.log: List[Message] = []
        self.drop_probability = drop_probability
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(max_retries=max_retries))
        self.max_retries = self.retry_policy.max_retries
        self.injector = injector
        self._loss_rng = random.Random(seed)
        # Backoff jitter draws from its own stream, derived from the
        # REPRO_TEST_SEED master seed: whether a policy jitters can
        # never change which attempts the loss process drops.
        self._jitter_rng = random.Random(jitter_seed(seed))

    # ------------------------------------------------------------------
    # Fault processes.
    # ------------------------------------------------------------------

    def _attempt_dropped(self) -> bool:
        """Draw the loss processes for one transmission attempt."""
        if self.injector is not None and self.injector.should_drop_message():
            return True
        return (self.drop_probability > 0.0
                and self._loss_rng.random() < self.drop_probability)

    def _attempt_corrupted(self, message: Message) -> bool:
        """Draw corruption; detected via the checksum mismatch."""
        if self.injector is None or not self.injector.should_corrupt():
            return False
        tampered = self.injector.corrupt_payload(message.payload)
        return payload_checksum(tampered) != message.checksum

    # ------------------------------------------------------------------
    # Transfers.
    # ------------------------------------------------------------------

    def send(self, message: Message) -> Any:
        """Deliver a message, charging its modelled transfer time.

        Returns the payload so call sites read naturally:
        ``received = channel.send(Message(...))``.  Dropped or corrupted
        attempts back off (charged as modelled time) and retransmit
        (each attempt charged in full) until delivery, the retry
        budget, or the policy's time budget; exhaustion charges every
        failed attempt to the ledger and raises :class:`ChannelError`
        carrying the tag, attempt count and wasted bytes.
        """
        cipher_wire = 0
        if message.ciphertext_count:
            per_ciphertext = self.profile.wire_bytes(
                message.ciphertext_bytes, packed=message.packed)
            cipher_wire = message.ciphertext_count * per_ciphertext
        wire_bytes = cipher_wire + message.plaintext_bytes
        transfer_seconds = self.profile.network_seconds(wire_bytes,
                                                        messages=1)
        policy = self.retry_policy

        attempts = 0
        backoff_total = 0.0
        delivered = False
        while True:
            attempts += 1
            dropped = self._attempt_dropped()
            corrupted = (not dropped) and self._attempt_corrupted(message)
            if not dropped and not corrupted:
                delivered = True
                break
            if corrupted:
                self.stats.corrupted += 1
                self.ledger.charge(CAT_FAULT_CORRUPT, 0.0, count=1,
                                   payload_bytes=wire_bytes)
            retry_index = attempts - 1  # 0-based index of the retry to come
            elapsed = attempts * transfer_seconds + backoff_total
            if policy.exhausted(retry_index + 1, elapsed):
                break
            backoff = policy.backoff_seconds(retry_index,
                                             rng=self._jitter_rng)
            backoff_total += backoff
            self.stats.backoff_seconds += backoff
            self.ledger.charge(CAT_FAULT_RETRANSMIT, backoff, count=1,
                               payload_bytes=wire_bytes)

        seconds = attempts * transfer_seconds
        self.ledger.charge(comm_category(message.tag), seconds, count=1,
                           payload_bytes=attempts * wire_bytes)
        self.stats.ciphertexts += message.ciphertext_count
        self.stats.wire_bytes += attempts * wire_bytes
        self.stats.modelled_seconds += seconds + backoff_total
        self.stats.retransmissions += attempts - 1

        if not delivered:
            self.stats.failed_messages += 1
            wasted = attempts * wire_bytes
            self.ledger.charge(CAT_FAULT_GIVEUP, 0.0, count=1,
                               payload_bytes=wasted)
            raise ChannelError(
                f"transfer {message.tag!r} abandoned after {attempts} "
                f"attempts ({wasted} wire bytes wasted, retry budget "
                f"{policy.max_retries})",
                tag=message.tag, attempts=attempts, wasted_bytes=wasted)

        self.stats.messages += 1
        if self.trace:
            self.log.append(message)
        return message.payload

    def broadcast(self, message: Message, receivers: List[str]) -> Any:
        """Send the same payload to several receivers (charged per copy).

        Every receiver is attempted even when an earlier copy fails:
        each per-receiver :meth:`send` charges its own attempts (failed
        ones included) before raising, and the failures are re-raised
        *after* the loop as one aggregate :class:`ChannelError` carrying
        the total attempt count and wasted bytes.  Aborting on the first
        failure would leave the remaining receivers both unserved and
        uncharged -- invisible lost work, which the ledger forbids.
        """
        failures: List[ChannelError] = []
        for receiver in receivers:
            copy = Message(
                sender=message.sender,
                receiver=receiver,
                tag=message.tag,
                payload=message.payload,
                ciphertext_count=message.ciphertext_count,
                ciphertext_bytes=message.ciphertext_bytes,
                plaintext_bytes=message.plaintext_bytes,
                packed=message.packed,
                checksum=message.checksum,
            )
            try:
                self.send(copy)
            except ChannelError as error:
                failures.append(error)
        if failures:
            raise ChannelError(
                f"broadcast {message.tag!r} failed for "
                f"{len(failures)}/{len(receivers)} receivers",
                tag=message.tag,
                attempts=sum(f.attempts for f in failures),
                wasted_bytes=sum(f.wasted_bytes for f in failures))
        return message.payload
