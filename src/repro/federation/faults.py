"""Fault model for the federation layer: who fails, when, and how.

The paper's evaluation (Sec. VI) assumes every participant survives every
round; production cross-silo deployments do not.  This module provides a
*seeded, deterministic* fault model so every experiment in the repo can be
re-run under adverse conditions and still reproduce bit-for-bit:

- :class:`FaultPlan` -- an immutable schedule of per-party, per-round
  events (permanent crash, transient dropout with rejoin, straggler
  delay) plus stochastic per-message processes (loss, ciphertext
  corruption);
- :class:`FaultInjector` -- the live interpreter of a plan: queried by the
  aggregation layer per round and by the channel per message, charging
  every triggered event to the cost ledger under ``fault.*`` categories;
- :class:`RetryPolicy` -- exponential backoff with jitter and a
  modelled-time budget, replacing the channel's old inline geometric
  retry loop;
- :class:`QuorumError` -- raised when a round cannot gather the minimum
  number of surviving clients.

Ledger categories written here (all grouped into the paper's "Others"
component, and summarized by
:class:`repro.federation.metrics.FaultReport`):

- ``fault.crash``      -- a permanent crash observed in a round;
- ``fault.dropout``    -- a transient outage observed in a round;
- ``fault.straggler``  -- straggler delays, charged as modelled seconds;
- ``fault.deadline``   -- stragglers excluded by the round deadline;
- ``fault.lost_update``-- client uploads lost after exhausting retries;
- ``fault.retransmit`` -- retransmitted channel attempts (time + bytes);
- ``fault.corrupt``    -- corrupted payloads caught by the checksum;
- ``fault.giveup``     -- transfers abandoned after the retry budget;
- ``fault.coordinator_crash`` -- coordinator killed and recovered from
  its write-ahead log (see :mod:`repro.federation.coordinator`);
- ``fault.failover``   -- standby takeover of a dead coordinator's
  in-flight round;
- ``fault.shard_crash`` -- a leaf shard coordinator killed at a WAL
  record boundary and failed over to its shard standby (see
  :mod:`repro.federation.shard`);
- ``fault.queue_overload`` -- a shard's admission control forced into
  rejecting every upload for a round (backpressure drill);
- ``fault.tenant_flood`` -- a tenant-wide retry storm injected against
  the multi-tenant ingress (noisy-neighbor drill; see
  :mod:`repro.federation.tenancy`);
- ``fault.tenant_crash`` -- a whole tenant taken offline, its rounds
  skipped while every other tenant proceeds untouched.

Determinism: every stochastic decision draws from one ``random.Random``
seeded by ``plan.seed + incarnation``.  The *incarnation* increments on
every checkpoint/resume cycle, so a resumed run sees fresh (but still
reproducible) draws instead of deterministically replaying the exact
failure that aborted it.  Transient ``dropout`` events model an outage
lasting wall-clock time, so they only fire in incarnation 0 -- after a
restart the dropped-out party has rejoined; permanent crashes persist
across incarnations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

from repro.ledger import CostLedger, fault_category
from repro.rng import jitter_seed, master_test_seed  # noqa: F401 -- re-exported

#: Event kinds a :class:`FaultPlan` may schedule.
CRASH = "crash"
DROPOUT = "dropout"
STRAGGLER = "straggler"
#: Coordinator-side kinds (PR 4): kill the primary after it appends WAL
#: record ``after_record`` -- ``coordinator_crash`` restarts the same
#: coordinator from its log, ``failover`` hands the round to the hot
#: standby via the lease protocol.
COORDINATOR_CRASH = "coordinator_crash"
FAILOVER = "failover"
#: Sharded-service kinds (see :mod:`repro.federation.shard`):
#: ``shard_crash`` kills one *leaf* shard coordinator after it appends
#: WAL record ``after_record`` to its own log (the shard's standby takes
#: over); ``queue_overload`` forces a shard's admission control to
#: reject every upload for one round, exercising the backpressure path.
SHARD_CRASH = "shard_crash"
QUEUE_OVERLOAD = "queue_overload"
#: Multi-tenant kinds (see :mod:`repro.federation.tenancy` and the
#: multi-tenant service in :mod:`repro.federation.shard`):
#: ``tenant_flood`` makes every client of one tenant retransmit its
#: upload ``intensity`` extra times in one round -- a retry storm that
#: burns the tenant's token-bucket quota and queue slice;
#: ``tenant_crash`` takes a whole tenant offline from ``round_index``
#: on.  Both degrade *only* the named tenant: the isolation invariant
#: asserts other tenants' weights stay byte-identical.
TENANT_FLOOD = "tenant_flood"
TENANT_CRASH = "tenant_crash"

_EVENT_KINDS = (CRASH, DROPOUT, STRAGGLER, COORDINATOR_CRASH, FAILOVER,
                SHARD_CRASH, QUEUE_OVERLOAD, TENANT_FLOOD, TENANT_CRASH)
COORDINATOR_KINDS = (COORDINATOR_CRASH, FAILOVER)
SHARD_KINDS = (SHARD_CRASH, QUEUE_OVERLOAD)
TENANT_KINDS = (TENANT_FLOOD, TENANT_CRASH)


class QuorumError(RuntimeError):
    """A round gathered fewer surviving clients than the quorum.

    Attributes:
        round_index: The aggregation round that failed.
        survivors: Names of the clients that did report.
        required: The quorum that was not met.
    """

    def __init__(self, round_index: int, survivors: List[str],
                 required: int, total: int):
        self.round_index = round_index
        self.survivors = list(survivors)
        self.required = required
        self.total = total
        super().__init__(
            f"round {round_index}: only {len(survivors)}/{total} clients "
            f"reported (quorum {required}); survivors: "
            f"{', '.join(survivors) if survivors else 'none'}")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled event in a fault plan.

    Attributes:
        kind: ``crash`` (permanent from ``round_index`` on), ``dropout``
            (absent for ``[round_index, rejoin_round)``), or
            ``straggler`` (delayed by ``delay_seconds`` in
            ``round_index`` only).
        party: Party name, matching the aggregation layer's
            ``client-<i>`` convention.
        round_index: First aggregation round the event affects.
        rejoin_round: For ``dropout``: first round the party is back.
        delay_seconds: For ``straggler``: modelled delay charged to the
            round.
        after_record: For ``coordinator_crash`` / ``failover``: the WAL
            log sequence number after whose append the coordinator dies
            (the kill lands exactly on a record boundary).
        intensity: For ``tenant_flood``: extra retransmissions per
            client of the flooding tenant in ``round_index``.
    """

    kind: str
    party: str
    round_index: int
    rejoin_round: Optional[int] = None
    delay_seconds: float = 0.0
    after_record: Optional[int] = None
    intensity: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {_EVENT_KINDS}")
        if self.round_index < 0:
            raise ValueError("round_index must be non-negative")
        if self.kind == DROPOUT:
            if self.rejoin_round is None or \
                    self.rejoin_round <= self.round_index:
                raise ValueError("dropout needs rejoin_round > round_index")
        if self.kind == STRAGGLER and self.delay_seconds <= 0:
            raise ValueError("straggler needs a positive delay")
        if self.kind in COORDINATOR_KINDS or self.kind == SHARD_CRASH:
            if self.after_record is None or self.after_record < 0:
                raise ValueError(
                    f"{self.kind} needs a non-negative after_record "
                    f"(the WAL record boundary to die at)")
        if self.kind == TENANT_FLOOD and self.intensity < 1:
            raise ValueError(
                "tenant_flood needs a positive intensity (extra "
                "retransmissions per client)")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of federation faults.

    Build fluently; each method returns a new plan::

        plan = (FaultPlan(seed=7)
                .crash("client-7", round_index=1)
                .straggler("client-6", round_index=2, delay_seconds=30.0)
                .with_message_loss(0.05))

    Attributes:
        events: Scheduled per-party events.
        loss_probability: Per-attempt message loss probability.
        corrupt_probability: Per-delivery ciphertext corruption
            probability (caught by the message checksum).
        seed: Base seed for every stochastic draw.
    """

    events: Tuple[FaultEvent, ...] = ()
    loss_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= self.corrupt_probability < 1.0:
            raise ValueError("corrupt_probability must be in [0, 1)")

    # ------------------------------------------------------------------
    # Fluent builders.
    # ------------------------------------------------------------------

    def _with_event(self, event: FaultEvent) -> "FaultPlan":
        return replace(self, events=self.events + (event,))

    def crash(self, party: str, round_index: int) -> "FaultPlan":
        """Schedule a permanent crash from ``round_index`` on."""
        return self._with_event(FaultEvent(CRASH, party, round_index))

    def dropout(self, party: str, round_index: int,
                rejoin_round: int) -> "FaultPlan":
        """Schedule a transient outage with a rejoin round."""
        return self._with_event(FaultEvent(
            DROPOUT, party, round_index, rejoin_round=rejoin_round))

    def straggler(self, party: str, round_index: int,
                  delay_seconds: float) -> "FaultPlan":
        """Schedule a straggler delay in one round."""
        return self._with_event(FaultEvent(
            STRAGGLER, party, round_index, delay_seconds=delay_seconds))

    def coordinator_crash(self, round_index: int, after_record: int,
                          party: str = "coordinator") -> "FaultPlan":
        """Kill the coordinator after it appends WAL record
        ``after_record``; it restarts and recovers from its own log."""
        return self._with_event(FaultEvent(
            COORDINATOR_CRASH, party, round_index,
            after_record=after_record))

    def failover(self, round_index: int, after_record: int,
                 party: str = "coordinator") -> "FaultPlan":
        """Kill the coordinator after WAL record ``after_record`` and
        hand the round to the hot standby via the lease protocol."""
        return self._with_event(FaultEvent(
            FAILOVER, party, round_index, after_record=after_record))

    def shard_crash(self, shard: str, round_index: int,
                    after_record: int) -> "FaultPlan":
        """Kill leaf shard ``shard`` after it appends record
        ``after_record`` to *its own* WAL; the shard's standby takes
        over under the lease protocol."""
        return self._with_event(FaultEvent(
            SHARD_CRASH, shard, round_index, after_record=after_record))

    def queue_overload(self, shard: str, round_index: int) -> "FaultPlan":
        """Force shard ``shard``'s admission control to reject every
        upload in one round (typed ``AdmissionRejected``, never a
        silent drop)."""
        return self._with_event(FaultEvent(
            QUEUE_OVERLOAD, shard, round_index))

    def tenant_flood(self, tenant: str, round_index: int,
                     intensity: int = 4) -> "FaultPlan":
        """Make every client of ``tenant`` retransmit its upload
        ``intensity`` extra times in one round -- a noisy-neighbor retry
        storm absorbed by the tenant's quota, queue slice, and the
        leaves' exactly-once dedupe."""
        return self._with_event(FaultEvent(
            TENANT_FLOOD, tenant, round_index, intensity=intensity))

    def tenant_crash(self, tenant: str, round_index: int) -> "FaultPlan":
        """Take a whole tenant offline from ``round_index`` on; its
        rounds are skipped (and charged) instead of run."""
        return self._with_event(FaultEvent(
            TENANT_CRASH, tenant, round_index))

    def with_message_loss(self, probability: float) -> "FaultPlan":
        """Set the per-attempt message loss probability."""
        return replace(self, loss_probability=probability)

    def with_corruption(self, probability: float) -> "FaultPlan":
        """Set the per-delivery ciphertext corruption probability."""
        return replace(self, corrupt_probability=probability)

    def events_for(self, party: str) -> List[FaultEvent]:
        """All events scheduled for one party."""
        return [event for event in self.events if event.party == party]

    def coordinator_events(self) -> List[FaultEvent]:
        """The scheduled coordinator kills, in WAL-record order."""
        return sorted(
            (e for e in self.events if e.kind in COORDINATOR_KINDS),
            key=lambda e: e.after_record)

    def shard_events(self) -> List[FaultEvent]:
        """The scheduled shard-level faults, in schedule order."""
        return [e for e in self.events if e.kind in SHARD_KINDS]

    def tenant_events(self) -> List[FaultEvent]:
        """The scheduled tenant-level faults, in schedule order."""
        return [e for e in self.events if e.kind in TENANT_KINDS]

    # ------------------------------------------------------------------
    # Wire form (consumed by the deterministic simulator's trace).
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "loss_probability": self.loss_probability,
            "corrupt_probability": self.corrupt_probability,
            "events": [
                {"kind": e.kind, "party": e.party,
                 "round_index": e.round_index,
                 "rejoin_round": e.rejoin_round,
                 "delay_seconds": e.delay_seconds,
                 "after_record": e.after_record,
                 "intensity": e.intensity}
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        events = tuple(
            FaultEvent(kind=e["kind"], party=e["party"],
                       round_index=e["round_index"],
                       rejoin_round=e.get("rejoin_round"),
                       delay_seconds=e.get("delay_seconds", 0.0),
                       after_record=e.get("after_record"),
                       intensity=e.get("intensity", 0))
            for e in data.get("events", [])
        )
        return cls(events=events,
                   loss_probability=data.get("loss_probability", 0.0),
                   corrupt_probability=data.get("corrupt_probability", 0.0),
                   seed=data.get("seed", 0))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter over *modelled* time.

    The delays are charged to the ledger (``fault.retransmit``), not
    slept: the federation is an in-process model, so backoff is part of
    the modelled round time just like transfer latency.

    Attributes:
        max_retries: Retransmissions after the first attempt before a
            transfer is abandoned (``max_retries + 1`` total attempts).
        base_delay: Backoff before the first retransmission, seconds.
        backoff_factor: Multiplier per further retransmission.
        max_delay: Ceiling on a single backoff.
        jitter: Uniform jitter fraction added on top of each backoff
            (``delay * jitter * U[0, 1)``), decorrelating retry storms.
        time_budget: Optional ceiling on the *total* modelled seconds
            (transfers + backoff) one logical send may consume; the
            transfer is abandoned once exceeded, even with retries left.
    """

    max_retries: int = 5
    base_delay: float = 0.0
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.0
    time_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError("time_budget must be positive")

    def backoff_seconds(self, retry_index: int,
                        rng: Optional[random.Random] = None) -> float:
        """Backoff before retransmission ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        delay = min(self.base_delay * self.backoff_factor ** retry_index,
                    self.max_delay)
        if rng is not None and self.jitter > 0 and delay > 0:
            delay += delay * self.jitter * rng.random()
        return delay

    def exhausted(self, attempts: int, elapsed_seconds: float) -> bool:
        """Whether a transfer must be abandoned at this point."""
        if attempts > self.max_retries:  # attempts counts retransmissions
            return True
        if self.time_budget is not None and \
                elapsed_seconds >= self.time_budget:
            return True
        return False


#: The default policy for fault-enabled runs: five retries, 50 ms base
#: backoff doubling to a 2 s ceiling, 10% jitter.
DEFAULT_RETRY_POLICY = RetryPolicy(max_retries=5, base_delay=0.05,
                                   backoff_factor=2.0, max_delay=2.0,
                                   jitter=0.1)

#: Back-compat policy matching the old inline loop: retries without
#: backoff, so modelled times are unchanged when no plan is active.
NO_BACKOFF_POLICY = RetryPolicy(max_retries=5)


class FaultInjector:
    """Live interpreter of a :class:`FaultPlan`.

    The aggregation layer asks :meth:`is_alive` / :meth:`straggler_delay`
    per (party, round); the channel asks :meth:`should_drop_message` /
    :meth:`should_corrupt` per attempt.  Every triggered event is charged
    to the bound ledger under a ``fault.*`` category and appended to
    :attr:`triggered` for the :class:`~repro.federation.metrics.FaultReport`.

    Args:
        plan: The fault schedule.
        ledger: Cost ledger to charge; rebindable via
            :meth:`bind_ledger` on epoch rollover.
        incarnation: Checkpoint/resume generation.  Seeds the stochastic
            draws with ``plan.seed + incarnation`` and disables transient
            dropout events for ``incarnation > 0`` (the outage does not
            outlive a restart).
    """

    def __init__(self, plan: FaultPlan,
                 ledger: Optional[CostLedger] = None,
                 incarnation: int = 0):
        if incarnation < 0:
            raise ValueError("incarnation must be non-negative")
        self.plan = plan
        self.ledger = ledger if ledger is not None else CostLedger()
        self.incarnation = incarnation
        self._rng = random.Random(plan.seed + incarnation)
        #: (kind, party, round_index) tuples of every event that fired.
        self.triggered: List[Tuple[str, str, int]] = []

    def bind_ledger(self, ledger: CostLedger) -> None:
        """Point fault charges at a new (epoch) ledger."""
        self.ledger = ledger

    # ------------------------------------------------------------------
    # Per-round party state.
    # ------------------------------------------------------------------

    def is_alive(self, party: str, round_index: int) -> bool:
        """Whether a party participates in a round; charges the event."""
        for event in self.plan.events_for(party):
            if event.kind == CRASH and round_index >= event.round_index:
                self._record(CRASH, party, round_index)
                return False
            if event.kind == DROPOUT and self.incarnation == 0 and \
                    event.round_index <= round_index < event.rejoin_round:
                self._record(DROPOUT, party, round_index)
                return False
        return True

    def straggler_delay(self, party: str, round_index: int) -> float:
        """Modelled delay this party adds to this round (0 if none)."""
        total = 0.0
        for event in self.plan.events_for(party):
            if event.kind == STRAGGLER and \
                    event.round_index == round_index:
                total += event.delay_seconds
        return total

    def charge_straggler(self, party: str, round_index: int,
                         delay_seconds: float) -> None:
        """Charge a straggler delay that was waited out."""
        self._record(STRAGGLER, party, round_index,
                     seconds=delay_seconds)

    def charge_deadline_miss(self, party: str, round_index: int,
                             deadline_seconds: float) -> None:
        """Charge a straggler excluded by the round deadline."""
        self._record("deadline", party, round_index,
                     seconds=deadline_seconds)

    def charge_lost_update(self, party: str, round_index: int,
                           wasted_bytes: int = 0) -> None:
        """Charge a client update lost after exhausting retries."""
        self._record("lost_update", party, round_index,
                     payload_bytes=wasted_bytes)

    def charge_coordinator_crash(self, round_index: int,
                                 party: str = "coordinator") -> None:
        """Charge a coordinator kill-and-recover cycle."""
        self._record(COORDINATOR_CRASH, party, round_index)

    def charge_failover(self, round_index: int,
                        party: str = "coordinator") -> None:
        """Charge a standby takeover of a dead coordinator's round."""
        self._record(FAILOVER, party, round_index)

    def charge_shard_crash(self, shard: str, round_index: int) -> None:
        """Charge a leaf shard kill-and-failover cycle."""
        self._record(SHARD_CRASH, shard, round_index)

    def queue_overloaded(self, shard: str, round_index: int) -> bool:
        """Whether an injected overload is in force for a shard/round.

        Pure query (the :class:`~repro.federation.eventloop.AsyncChannel`
        consults it at admission); the triggered rejection itself is
        charged once per round via :meth:`charge_queue_overload`.
        """
        return any(e.kind == QUEUE_OVERLOAD and e.party == shard
                   and e.round_index == round_index
                   for e in self.plan.events)

    def charge_queue_overload(self, shard: str, round_index: int) -> None:
        """Charge an injected admission-control overload."""
        self._record(QUEUE_OVERLOAD, shard, round_index)

    # ------------------------------------------------------------------
    # Tenant-level state (consumed by the multi-tenant service).
    # ------------------------------------------------------------------

    def tenant_flood_intensity(self, tenant: str,
                               round_index: int) -> int:
        """Extra retransmissions per client of ``tenant`` this round.

        Pure query; the triggered storm is charged once per round via
        :meth:`charge_tenant_flood`.
        """
        return sum(e.intensity for e in self.plan.events
                   if e.kind == TENANT_FLOOD and e.party == tenant
                   and e.round_index == round_index)

    def tenant_crashed(self, tenant: str, round_index: int) -> bool:
        """Whether ``tenant`` is offline in ``round_index``.

        Pure query; the skipped round is charged via
        :meth:`charge_tenant_crash`.
        """
        return any(e.kind == TENANT_CRASH and e.party == tenant
                   and round_index >= e.round_index
                   for e in self.plan.events)

    def charge_tenant_flood(self, tenant: str, round_index: int) -> None:
        """Charge an injected tenant retry storm (once per round)."""
        self._record(TENANT_FLOOD, tenant, round_index)

    def charge_tenant_crash(self, tenant: str, round_index: int) -> None:
        """Charge a tenant-wide outage observed in a round."""
        self._record(TENANT_CRASH, tenant, round_index)

    # ------------------------------------------------------------------
    # Per-message stochastic processes (consumed by the channel).
    # ------------------------------------------------------------------

    def should_drop_message(self) -> bool:
        """Draw the per-attempt loss process."""
        return (self.plan.loss_probability > 0.0
                and self._rng.random() < self.plan.loss_probability)

    def should_corrupt(self) -> bool:
        """Draw the per-delivery corruption process."""
        return (self.plan.corrupt_probability > 0.0
                and self._rng.random() < self.plan.corrupt_probability)

    def corrupt_payload(self, payload: Any) -> Any:
        """Return a bit-flipped copy of a ciphertext payload.

        Integer-list payloads (raw ciphertext batches) and
        :class:`~repro.tensor.cipher.CipherTensor` payloads are
        corrupted; anything else passes through untouched, modelling
        corruption of the ciphertext body.
        """
        from repro.tensor.cipher import CipherTensor

        if isinstance(payload, CipherTensor) and payload.num_words:
            tampered = list(payload.words)
            index = self._rng.randrange(len(tampered))
            bit = self._rng.randrange(max(tampered[index].bit_length(), 8))
            tampered[index] ^= 1 << bit
            return payload.with_words(tampered)
        if isinstance(payload, list) and payload and \
                all(isinstance(v, int) for v in payload):
            tampered = list(payload)
            index = self._rng.randrange(len(tampered))
            bit = self._rng.randrange(max(tampered[index].bit_length(), 8))
            tampered[index] ^= 1 << bit
            return tampered
        return payload

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------

    def _record(self, kind: str, party: str, round_index: int,
                seconds: float = 0.0, payload_bytes: int = 0) -> None:
        self.triggered.append((kind, party, round_index))
        self.ledger.charge(fault_category(kind), seconds, count=1,
                           payload_bytes=payload_bytes)

    def triggered_counts(self) -> dict:
        """Event counts by kind, for reports."""
        counts: dict = {}
        for kind, _, _ in self.triggered:
            counts[kind] = counts.get(kind, 0) + 1
        return counts
