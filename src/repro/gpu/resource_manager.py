"""GPU resource manager (paper Sec. IV-A2).

The resource manager is the piece of FLBooster that "fully release[s] the
computation power of GPUs": it stores common block sizes and picks one per
task count, keeps a memory table of marked addresses so repeated launches
skip allocation, budgets registers per thread, and combines divergent
branches so a warp is not split.  Disabling it (the HAFLO configuration)
reproduces the lower SM utilization of Fig. 6:

- without block-size tuning, a fixed oversized block is launched;
- without branch combining, divergence doubles register demand and halves
  warp issue efficiency;
- without the memory table, every launch pays a device-allocation latency.

:meth:`ResourceManager.plan` turns (tasks, limb count) into a
:class:`BlockPlan` whose occupancy arithmetic follows the standard CUDA
occupancy calculation against the :class:`~repro.gpu.device.DeviceSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.gpu.device import DeviceSpec, RTX_3090

#: Block sizes the manager keeps precomputed ("stores the common block
#: sizes", Sec. IV-A2).
COMMON_BLOCK_SIZES = (64, 128, 256, 512, 1024)

#: Register model: a thread needs a fixed working set plus storage for the
#: limbs it owns (operand, modulus and accumulator words).
BASE_REGISTERS_PER_THREAD = 16
REGISTERS_PER_LIMB = 10

#: Launch latencies (seconds).  The memory table replaces a device
#: allocation (~cudaMalloc, tens of microseconds) with a table lookup.
LAUNCH_LATENCY_MANAGED = 5e-6
LAUNCH_LATENCY_UNMANAGED = 30e-6

#: Warp issue efficiency.  Managed launches lose a little to inter-thread
#: carry propagation; unmanaged launches serialize both sides of divergent
#: branches ("the threads in a warp will be split into several parts").
ISSUE_EFFICIENCY_MANAGED = 0.95
ISSUE_EFFICIENCY_UNMANAGED = 0.50

#: Register inflation when branches are not combined: nested divergent
#: paths each keep live state, costing "double or even several times the
#: number of registers" (Sec. IV-A2).
UNMANAGED_BRANCH_REGISTER_FACTOR = 4

#: Thread mapping: the managed path assigns up to this many threads to one
#: big-integer task (approaching 1 limb per thread); the unmanaged baseline
#: statically halves limbs onto threads with a one-warp floor.
MANAGED_MAX_THREADS_PER_TASK = 128
UNMANAGED_MIN_THREADS_PER_TASK = 32


@dataclass(frozen=True)
class BlockPlan:
    """Resolved launch geometry and its occupancy consequences.

    Attributes:
        block_size: Threads per block.
        threads_per_task: Threads cooperating on one big integer.
        limbs_per_thread: ``x = s / T`` of Algorithm 2.
        registers_per_thread: Budgeted registers (after branch handling).
        resident_threads_per_sm: Threads that actually fit on one SM.
        occupancy: ``resident / max`` thread occupancy.
        issue_efficiency: Warp issue efficiency (branch handling).
        launch_latency: Fixed per-launch cost (memory table vs allocation).
    """

    block_size: int
    threads_per_task: int
    limbs_per_thread: int
    registers_per_thread: int
    resident_threads_per_sm: int
    occupancy: float
    issue_efficiency: float
    launch_latency: float

    @property
    def sm_utilization(self) -> float:
        """The Fig. 6 metric: occupancy discounted by issue efficiency."""
        return self.occupancy * self.issue_efficiency


@dataclass
class MemoryTable:
    """The marked-address table of Sec. IV-A2.

    ``allocate`` looks for a free slot of sufficient size before reserving
    new device memory; ``free`` marks the slot reusable.  ``hits`` counts
    allocations served from the table (no device allocation latency).
    """

    capacity: int
    _slots: List[Tuple[int, int, bool]] = field(default_factory=list)
    _next_address: int = 0
    hits: int = 0
    misses: int = 0

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the device address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        for index, (address, slot_size, occupied) in enumerate(self._slots):
            if not occupied and slot_size >= size:
                self._slots[index] = (address, slot_size, True)
                self.hits += 1
                return address
        if self._next_address + size > self.capacity:
            raise MemoryError(
                f"device memory exhausted: need {size} bytes, "
                f"{self.capacity - self._next_address} free")
        address = self._next_address
        self._next_address += size
        self._slots.append((address, size, True))
        self.misses += 1
        return address

    def free(self, address: int) -> None:
        """Mark the slot at ``address`` free for reuse."""
        for index, (slot_address, slot_size, occupied) in enumerate(self._slots):
            if slot_address == address:
                if not occupied:
                    raise ValueError(f"double free of device address {address}")
                self._slots[index] = (slot_address, slot_size, False)
                return
        raise ValueError(f"unknown device address {address}")

    @property
    def bytes_reserved(self) -> int:
        """Total device memory ever carved out of the arena."""
        return self._next_address


class ResourceManager:
    """Block-size, register, memory and branch management (Sec. IV-A2).

    Args:
        spec: Device the manager allocates on.
        managed: When False the manager degrades into the naive baseline
            used by HAFLO-style systems: fixed block size, no branch
            combining (register doubling + divergence), no memory table.
    """

    def __init__(self, spec: DeviceSpec = RTX_3090, managed: bool = True):
        self.spec = spec
        self.managed = managed
        self.memory = MemoryTable(capacity=spec.global_memory)
        self._plan_cache: Dict[Tuple[int, int], BlockPlan] = {}

    def plan(self, tasks: int, limbs: int) -> BlockPlan:
        """Resolve launch geometry for ``tasks`` integers of ``limbs`` words.

        The managed path picks the block size from
        :data:`COMMON_BLOCK_SIZES` that maximizes occupancy for the register
        budget; the unmanaged path always launches the largest common block.
        """
        if tasks <= 0 or limbs <= 0:
            raise ValueError("tasks and limbs must be positive")
        key = (min(tasks, self.spec.max_concurrent_threads), limbs)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached

        if self.managed:
            threads_per_task = min(limbs, MANAGED_MAX_THREADS_PER_TASK)
            limbs_per_thread = max(1, math.ceil(limbs / threads_per_task))
            registers = (BASE_REGISTERS_PER_THREAD
                         + REGISTERS_PER_LIMB * limbs_per_thread)
            block_size = self._best_block_size(registers, threads_per_task)
            issue = self._issue_efficiency(
                ISSUE_EFFICIENCY_MANAGED, threads_per_task, limbs_per_thread)
            latency = LAUNCH_LATENCY_MANAGED
        else:
            threads_per_task = max(UNMANAGED_MIN_THREADS_PER_TASK, limbs // 2)
            limbs_per_thread = max(1, math.ceil(limbs / threads_per_task))
            # Unhandled branch divergence keeps every path's state live
            # ("double or even several times the number of registers").
            registers = UNMANAGED_BRANCH_REGISTER_FACTOR * (
                BASE_REGISTERS_PER_THREAD
                + REGISTERS_PER_LIMB * limbs_per_thread)
            block_size = COMMON_BLOCK_SIZES[-1]
            issue = self._issue_efficiency(
                ISSUE_EFFICIENCY_UNMANAGED, threads_per_task, limbs_per_thread)
            latency = LAUNCH_LATENCY_UNMANAGED

        resident = self._resident_threads(block_size, registers)
        occupancy = resident / self.spec.max_threads_per_sm
        plan = BlockPlan(
            block_size=block_size,
            threads_per_task=threads_per_task,
            limbs_per_thread=limbs_per_thread,
            registers_per_thread=registers,
            resident_threads_per_sm=resident,
            occupancy=occupancy,
            issue_efficiency=issue,
            launch_latency=latency,
        )
        self._plan_cache[key] = plan
        return plan

    def _best_block_size(self, registers_per_thread: int,
                         threads_per_task: int) -> int:
        """Pick the common block size with the highest occupancy.

        Ties go to the smaller block (finer-grained scheduling), and blocks
        smaller than one task's thread group are skipped.
        """
        best_size = COMMON_BLOCK_SIZES[0]
        best_resident = -1
        for size in COMMON_BLOCK_SIZES:
            if size < threads_per_task:
                continue
            resident = self._resident_threads(size, registers_per_thread)
            if resident > best_resident:
                best_resident = resident
                best_size = size
        return best_size

    def _resident_threads(self, block_size: int,
                          registers_per_thread: int) -> int:
        """CUDA-style occupancy: threads resident on one SM.

        Whole blocks are scheduled while both the thread and the register
        budgets hold; when even one block exceeds the register file the
        hardware caps resident warps to what the registers allow.
        """
        spec = self.spec
        registers_per_block = registers_per_thread * block_size
        if registers_per_block > spec.registers_per_sm:
            warps = spec.registers_per_sm // (registers_per_thread * spec.warp_size)
            return max(warps, 1) * spec.warp_size
        blocks_by_threads = spec.max_threads_per_sm // block_size
        blocks_by_registers = spec.registers_per_sm // registers_per_block
        blocks = min(blocks_by_threads, blocks_by_registers)
        return max(blocks, 1) * block_size

    @staticmethod
    def _issue_efficiency(base: float, threads_per_task: int,
                          limbs_per_thread: int) -> float:
        """Issue efficiency eroded by carry chains and wide thread groups.

        Carries propagate across the whole thread group (Sec. IV-A1), so
        both a wider group and a fatter per-thread slice serialize a
        fraction of issue slots; the erosion grows logarithmically, which is
        the "SM performance degrades" trend of Fig. 6.
        """
        penalty = (0.01 * math.log2(max(threads_per_task, 1))
                   + 0.02 * math.log2(limbs_per_thread + 1))
        return max(base - penalty, 0.05)

    def utilization_for_key_size(self, key_bits: int,
                                 word_bits: int = 32) -> float:
        """Convenience: SM utilization for ciphertext-sized operands.

        Paillier ciphertexts live modulo ``n^2`` so carry ``2 * key_bits``
        bits; this is the quantity Fig. 6 sweeps.
        """
        limbs = max(1, (2 * key_bits) // word_bits)
        return self.plan(tasks=4096, limbs=limbs).sm_utilization
