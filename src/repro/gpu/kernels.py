"""Batched big-integer GPU kernels (paper Sec. IV-A3).

Each kernel executes the real arithmetic for a whole batch (so results are
bit-exact and downstream training is genuine) and records one simulated
launch: the resource manager resolves the launch geometry, the cost model
charges transfer + parallel compute, and the device logs the launch for the
utilization figures.

Cost accounting is decoupled from the arithmetic through ``work_bits``: the
kernel charges time as if the modulus had ``work_bits`` bits, which lets
benchmarks run the *mathematics* at a reduced key size while charging the
*paper's* key size (see DESIGN.md, timing methodology).  When ``work_bits``
is omitted the actual modulus size is charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.gpu.device import DeviceSpec, KernelLaunch, SimulatedGpu
from repro.gpu.resource_manager import (
    BASE_REGISTERS_PER_THREAD,
    REGISTERS_PER_LIMB,
    UNMANAGED_BRANCH_REGISTER_FACTOR,
    ResourceManager,
)
from repro.mpint.modexp import modexp_multiplication_count
from repro.mpint.montgomery import cios_work_estimate

#: CUDA's architectural per-thread register ceiling (compute 7.x+).
MAX_REGISTERS_PER_THREAD = 255

#: CUDA's architectural per-block thread ceiling.
MAX_BLOCK_THREADS = 1024


@dataclass(frozen=True)
class KernelBudget:
    """Declared worst-case resource envelope for one kernel.

    These are *declarations*, not measurements: each kernel states the
    most registers, shared memory, and block width it will ever request,
    and both flcheck's ``kernel-budget`` rule (statically, at lint time)
    and :meth:`GpuKernels.__init__` (at construction) verify the envelope
    is launchable on the target :class:`DeviceSpec`.  An over-budget
    kernel therefore fails lint, not a simulation run.

    Attributes:
        registers_per_thread: Worst-case registers one thread may hold.
        shared_memory_per_block: Worst-case shared-memory bytes per block.
        block_size: Widest block the kernel is ever launched with.
    """

    registers_per_thread: int
    shared_memory_per_block: int
    block_size: int

    def violations(self, spec: DeviceSpec) -> List[str]:
        """Hard-launchability violations of this budget on ``spec``."""
        problems: List[str] = []
        if self.block_size < spec.warp_size or \
                self.block_size % spec.warp_size != 0:
            problems.append(
                f"block_size {self.block_size} is not a positive multiple "
                f"of the warp size {spec.warp_size}")
        if self.block_size > MAX_BLOCK_THREADS:
            problems.append(
                f"block_size {self.block_size} exceeds the CUDA per-block "
                f"ceiling {MAX_BLOCK_THREADS}")
        if self.block_size > spec.max_threads_per_sm:
            problems.append(
                f"block_size {self.block_size} exceeds the device's "
                f"{spec.max_threads_per_sm} threads/SM")
        if self.registers_per_thread > MAX_REGISTERS_PER_THREAD:
            problems.append(
                f"registers_per_thread {self.registers_per_thread} exceeds "
                f"the architectural ceiling {MAX_REGISTERS_PER_THREAD}")
        block_registers = self.registers_per_thread * self.block_size
        if block_registers > spec.registers_per_sm:
            problems.append(
                f"one block needs {block_registers} registers "
                f"({self.registers_per_thread}/thread x {self.block_size}) "
                f"but an SM has {spec.registers_per_sm}")
        if self.shared_memory_per_block > spec.shared_memory_per_sm:
            problems.append(
                f"shared_memory_per_block {self.shared_memory_per_block} "
                f"exceeds the SM's {spec.shared_memory_per_sm} bytes")
        return problems


#: Declared envelopes, one per kernel `_record` name.  The register
#: figure is the unmanaged worst case the resource manager can budget --
#: the branch-handling factor times the base + per-limb cost at the
#: 2-limbs-per-thread split -- so the declaration stays honest even for
#: the HAFLO-style baseline path.  flcheck evaluates these expressions
#: against the RTX_3090 spec; keep every operand a constant.
KERNEL_BUDGETS: Dict[str, KernelBudget] = {
    "mod_mul": KernelBudget(
        registers_per_thread=UNMANAGED_BRANCH_REGISTER_FACTOR * (
            BASE_REGISTERS_PER_THREAD + REGISTERS_PER_LIMB * 2),
        shared_memory_per_block=32 * 1024,
        block_size=256,
    ),
    "mod_pow": KernelBudget(
        registers_per_thread=UNMANAGED_BRANCH_REGISTER_FACTOR * (
            BASE_REGISTERS_PER_THREAD + REGISTERS_PER_LIMB * 2),
        shared_memory_per_block=48 * 1024,
        block_size=256,
    ),
}


def validate_budgets(spec: DeviceSpec) -> None:
    """Raise ``ValueError`` if any declared budget cannot launch on ``spec``."""
    problems = [f"{name}: {problem}"
                for name, budget in sorted(KERNEL_BUDGETS.items())
                for problem in budget.violations(spec)]
    if problems:
        raise ValueError(
            "kernel resource budgets exceed device limits:\n  "
            + "\n  ".join(problems))


class GpuKernels:
    """Batched modular-arithmetic kernels on a simulated device.

    Args:
        device: Launch log; a fresh :class:`SimulatedGpu` when omitted.
        resource_manager: Launch planner; pass one with ``managed=False``
            to model the HAFLO-style baseline.
        profile: Calibrated hardware constants.
        execute: ``"int"`` (default) computes through Python's big
            integers; ``"limb"`` computes modular multiplications through
            the word-by-word CIOS Montgomery schedule of Algorithm 2 --
            the exact arithmetic a real kernel would run, bit-for-bit
            identical and much slower (validation/fidelity mode).
    """

    def __init__(self, device: Optional[SimulatedGpu] = None,
                 resource_manager: Optional[ResourceManager] = None,
                 profile: HardwareProfile = DEFAULT_PROFILE,
                 execute: str = "int"):
        if execute not in ("int", "limb"):
            raise ValueError("execute must be 'int' or 'limb'")
        self.device = device if device is not None else SimulatedGpu()
        self.resource_manager = (resource_manager if resource_manager is not None
                                 else ResourceManager(self.device.spec))
        self.profile = profile
        self.execute = execute
        self._montgomery_cache: dict = {}
        validate_budgets(self.device.spec)

    # ------------------------------------------------------------------
    # Public kernels.
    # ------------------------------------------------------------------

    def mod_mul(self, a: Sequence[int], b: Sequence[int], modulus: int,
                work_bits: Optional[int] = None) -> List[int]:
        """Element-wise ``a[i] * b[i] mod modulus`` as one launch."""
        self._check_pair(a, b)
        if self.execute == "limb" and modulus % 2 == 1:
            results = [self._limb_mod_mul(x, y, modulus)
                       for x, y in zip(a, b)]
        else:
            results = [(x * y) % modulus for x, y in zip(a, b)]
        limbs = self._work_limbs(modulus, work_bits)
        words = len(a) * cios_work_estimate(limbs)
        operand_bytes = limbs * (self.profile.word_bits // 8)
        self._record("mod_mul", tasks=len(a), limbs=limbs, words=words,
                     bytes_in=2 * len(a) * operand_bytes,
                     bytes_out=len(a) * operand_bytes)
        return results

    def mod_pow(self, bases: Sequence[int], exponents: Sequence[int],
                modulus: int, work_bits: Optional[int] = None,
                exponent_bits: Optional[int] = None) -> List[int]:
        """Element-wise ``bases[i] ** exponents[i] mod modulus``.

        ``exponent_bits`` overrides the charged exponent length (used when
        the mathematics runs at a reduced key size but costs should follow
        the nominal key's exponent length).
        """
        self._check_pair(bases, exponents)
        results = [pow(base, exp, modulus)
                   for base, exp in zip(bases, exponents)]
        limbs = self._work_limbs(modulus, work_bits)
        per_op_modmuls = sum(
            modexp_multiplication_count(
                exponent_bits if exponent_bits is not None
                else max(exp.bit_length(), 1))
            for exp in exponents) // max(len(exponents), 1)
        words = len(bases) * per_op_modmuls * cios_work_estimate(limbs)
        operand_bytes = limbs * (self.profile.word_bits // 8)
        self._record("mod_pow", tasks=len(bases), limbs=limbs, words=words,
                     bytes_in=2 * len(bases) * operand_bytes,
                     bytes_out=len(bases) * operand_bytes)
        return results

    def mod_pow_scalar_exponent(self, bases: Sequence[int], exponent: int,
                                modulus: int,
                                work_bits: Optional[int] = None,
                                exponent_bits: Optional[int] = None) -> List[int]:
        """``bases[i] ** exponent mod modulus`` with one shared exponent."""
        return self.mod_pow(bases, [exponent] * len(bases), modulus,
                            work_bits=work_bits, exponent_bits=exponent_bits)

    def charge_mod_mul(self, tasks: int, modulus_bits: int) -> float:
        """Charge one mod_mul launch without executing it.

        Used when the caller computed the results through an equivalent
        (faster) host-side route, e.g. CRT decryption: the *work charged*
        is the kernel's, the *values* come from the caller.
        """
        limbs = max(1, modulus_bits // self.profile.word_bits)
        words = tasks * cios_work_estimate(limbs)
        operand_bytes = limbs * (self.profile.word_bits // 8)
        return self._record("mod_mul", tasks=tasks, limbs=limbs, words=words,
                            bytes_in=2 * tasks * operand_bytes,
                            bytes_out=tasks * operand_bytes)

    def charge_mod_pow(self, tasks: int, modulus_bits: int,
                       exponent_bits: int) -> float:
        """Charge one mod_pow launch without executing it."""
        limbs = max(1, modulus_bits // self.profile.word_bits)
        modmuls = modexp_multiplication_count(max(exponent_bits, 1))
        words = tasks * modmuls * cios_work_estimate(limbs)
        operand_bytes = limbs * (self.profile.word_bits // 8)
        return self._record("mod_pow", tasks=tasks, limbs=limbs, words=words,
                            bytes_in=2 * tasks * operand_bytes,
                            bytes_out=tasks * operand_bytes)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _limb_mod_mul(self, x: int, y: int, modulus: int) -> int:
        """One modular multiplication through the Algorithm 2 path.

        ``x * y mod n`` as three Montgomery steps: map one operand into
        the Montgomery domain (so the CIOS product lands back in the
        plain domain) and run the word-level CIOS schedule.
        """
        from repro.mpint.limbs import from_int, to_int
        from repro.mpint.montgomery import (
            MontgomeryContext,
            cios_montgomery_multiply,
        )

        ctx = self._montgomery_cache.get(modulus)
        if ctx is None:
            ctx = MontgomeryContext(modulus)
            self._montgomery_cache[modulus] = ctx
        x_mont = ctx.to_montgomery(x % modulus)
        product = cios_montgomery_multiply(
            from_int(x_mont, size=ctx.num_limbs),
            from_int(y % modulus, size=ctx.num_limbs), ctx)
        return to_int(product)

    def _work_limbs(self, modulus: int, work_bits: Optional[int]) -> int:
        bits = work_bits if work_bits is not None else modulus.bit_length()
        return max(1, bits // self.profile.word_bits)

    @staticmethod
    def _check_pair(a: Sequence, b: Sequence) -> None:
        if len(a) != len(b):
            raise ValueError(
                f"kernel operand lengths differ: {len(a)} vs {len(b)}")
        if not a:
            raise ValueError("kernel launched with an empty batch")

    def _record(self, name: str, tasks: int, limbs: int, words: int,
                bytes_in: int, bytes_out: int) -> float:
        plan = self.resource_manager.plan(tasks, limbs)
        seconds = self.profile.gpu_seconds(
            tasks, words, bytes_in, bytes_out, plan,
            spec=self.device.spec, managed=self.resource_manager.managed)
        if self.resource_manager.managed:
            # The memory table (Sec. IV-A2): operand and result buffers
            # are claimed per launch and marked free afterwards, so
            # repeated launches of the same shape reuse their slots
            # (hits) instead of re-allocating (misses).
            table = self.resource_manager.memory
            buffers = [table.allocate(max(bytes_in, 1)),
                       table.allocate(max(bytes_out, 1))]
            for address in buffers:
                table.free(address)
        self.device.record_launch(KernelLaunch(
            name=name,
            tasks=tasks,
            threads_per_task=plan.threads_per_task,
            word_multiplications=words,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            sm_utilization=plan.sm_utilization,
            seconds=seconds,
        ))
        return seconds
