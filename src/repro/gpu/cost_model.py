"""Hardware time model (paper Sec. V-B, Eq. 10).

The paper decomposes a GPU-accelerated HE operation into three stages --
copy in, parallel compute, copy out -- and writes the acceleration ratio as

    AC_ghe = n * beta_cpu /
             ((L_before/8 + L_after/8) * beta_transfer + 32 T_max / L_after * beta_gpu)

This module carries the same structure.  Work is expressed in *single-word
multiplications* (the unit Algorithm 2 executes), so one calibration maps
any key size and any batch size onto modelled seconds:

- CPU time   = words / cpu_word_rate + per-op dispatch overhead,
- GPU time   = launch latency + (1 - overlap) * bytes / pcie_bandwidth
               + words / (gpu_peak_rate * sm_utilization * fill).

Calibration targets the paper's own measurements (Table IV): FATE's CPU
throughput of ~363/69/12 HE ops per second at 1024/2048/4096-bit keys pins
``cpu_word_rate`` and the dispatch overhead; HAFLO's ~59k ops/s at 1024
pins ``gpu_peak_word_rate`` through the unmanaged resource plan.  All other
numbers in the reproduction *emerge* from counted work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, RTX_3090
from repro.gpu.resource_manager import BlockPlan
from repro.mpint.modexp import modexp_multiplication_count
from repro.mpint.montgomery import cios_work_estimate


@dataclass(frozen=True)
class HardwareProfile:
    """Calibrated constants converting counted work into modelled seconds.

    Attributes:
        cpu_word_rate: Single-word multiply-adds per second on one CPU core
            running an optimized big-integer library.
        cpu_op_overhead: Per-HE-op dispatch overhead on the CPU path
            (Python object handling in FATE's Paillier).
        gpu_peak_word_rate: Device-wide word multiply-adds per second at
            full occupancy and perfect issue.
        transfer_overlap_managed: Fraction of PCIe transfer hidden behind
            compute by the pipelined processing of Sec. V (managed path).
        transfer_overlap_unmanaged: Same for the naive path (no pipeline).
        pipeline_depth_managed: Concurrent in-flight batches the pipeline
            keeps on the device, improving fill for small launches.
        pipeline_depth_unmanaged: Same for the naive path.
        network_bandwidth: Effective client<->server bytes/second for
            serialized ciphertext streams (covers the Gigabit link plus the
            serialization stack; FATE's effective rate is far below wire
            speed).
        network_latency: Per-message latency, seconds.
        serialization_bloat_objects: Wire bytes per ciphertext byte when
            ciphertexts travel as per-element serialized objects
            (FATE / HAFLO path).
        serialization_bloat_packed: Wire bytes per ciphertext byte for
            FLBooster's packed binary arrays.
        word_bits: Limb width used for work accounting.
    """

    cpu_word_rate: float = 6.0e9
    cpu_op_overhead: float = 9.0e-4
    gpu_peak_word_rate: float = 5.0e12
    transfer_overlap_managed: float = 0.9
    transfer_overlap_unmanaged: float = 0.0
    pipeline_depth_managed: int = 8
    pipeline_depth_unmanaged: int = 1
    network_bandwidth: float = 7.0e5
    network_latency: float = 2.0e-4
    serialization_bloat_objects: float = 2.5
    serialization_bloat_packed: float = 1.05
    word_bits: int = 32

    # ------------------------------------------------------------------
    # Work accounting (words) for Paillier over an n^2 modulus.
    # ------------------------------------------------------------------

    def ciphertext_limbs(self, key_bits: int) -> int:
        """Limb count of a ciphertext (modulo ``n^2`` -> 2x key bits)."""
        return max(1, (2 * key_bits) // self.word_bits)

    def ciphertext_bytes(self, key_bits: int) -> int:
        """Raw byte size of one Paillier ciphertext."""
        return 2 * key_bits // 8

    def words_per_modmul(self, key_bits: int) -> int:
        """CIOS word multiplications for one modular multiplication."""
        return cios_work_estimate(self.ciphertext_limbs(key_bits))

    def words_per_encrypt(self, key_bits: int) -> int:
        """Word work of one encryption: ``g^m * r^n mod n^2``.

        With ``g = n + 1`` the ``g^m`` factor is one multiplication, so the
        cost is the ``r^n`` exponentiation (a ``key_bits``-bit exponent)
        plus two modular multiplications.
        """
        modmuls = modexp_multiplication_count(key_bits) + 2
        return modmuls * self.words_per_modmul(key_bits)

    def words_per_decrypt(self, key_bits: int) -> int:
        """Word work of one decryption: ``L(c^lambda mod n^2) * mu mod n``."""
        modmuls = modexp_multiplication_count(key_bits) + 2
        return modmuls * self.words_per_modmul(key_bits)

    def words_per_homomorphic_add(self, key_bits: int) -> int:
        """Word work of one ciphertext-ciphertext addition (one modmul)."""
        return self.words_per_modmul(key_bits)

    def words_per_scalar_mul(self, key_bits: int,
                             scalar_bits: int = 32) -> int:
        """Word work of ciphertext**scalar (a short-exponent modexp)."""
        modmuls = modexp_multiplication_count(scalar_bits)
        return modmuls * self.words_per_modmul(key_bits)

    # ------------------------------------------------------------------
    # Time model.
    # ------------------------------------------------------------------

    def cpu_seconds(self, ops: int, words_per_op: int) -> float:
        """Modelled CPU time for ``ops`` sequential HE operations."""
        if ops <= 0:
            return 0.0
        return ops * (words_per_op / self.cpu_word_rate + self.cpu_op_overhead)

    def gpu_seconds(self, tasks: int, total_words: int, bytes_in: int,
                    bytes_out: int, plan: BlockPlan, spec: DeviceSpec = RTX_3090,
                    managed: bool = True) -> float:
        """Modelled time of one batched kernel launch (Eq. 10 structure).

        Args:
            tasks: Independent HE tasks in the batch.
            total_words: Word multiplications across the whole batch.
            bytes_in / bytes_out: Host<->device transfer volumes.
            plan: Resolved launch geometry from the resource manager.
            spec: Device description.
            managed: Selects pipeline overlap/depth constants.
        """
        if tasks <= 0:
            return 0.0
        overlap = (self.transfer_overlap_managed if managed
                   else self.transfer_overlap_unmanaged)
        depth = (self.pipeline_depth_managed if managed
                 else self.pipeline_depth_unmanaged)
        transfer = (1.0 - overlap) * (bytes_in + bytes_out) / spec.pcie_bandwidth

        resident_total = plan.resident_threads_per_sm * spec.num_sms
        requested = tasks * plan.threads_per_task * depth
        fill = min(1.0, requested / max(resident_total, 1))
        effective_rate = (self.gpu_peak_word_rate
                          * plan.sm_utilization
                          * max(fill, 1e-9))
        compute = total_words / effective_rate
        return plan.launch_latency + transfer + compute

    def network_seconds(self, wire_bytes: int, messages: int = 1) -> float:
        """Modelled client<->server time for a transfer."""
        return (messages * self.network_latency
                + wire_bytes / self.network_bandwidth)

    def wire_bytes(self, ciphertext_bytes: int, packed: bool) -> int:
        """Serialized size on the wire for a ciphertext payload."""
        bloat = (self.serialization_bloat_packed if packed
                 else self.serialization_bloat_objects)
        return math.ceil(ciphertext_bytes * bloat)

    # ------------------------------------------------------------------
    # Paper Eq. 10 in its original form, for the theory benchmark.
    # ------------------------------------------------------------------

    def eq10_acceleration_ratio(self, n_ops: int, key_bits: int,
                                plan: BlockPlan,
                                spec: DeviceSpec = RTX_3090) -> float:
        """AC_ghe of Eq. 10 for a batch of encryptions.

        ``L_before`` is the 32-bit plaintext, ``L_after`` the ciphertext
        length; ``T_max`` is the resident-thread limit.
        """
        words = self.words_per_encrypt(key_bits)
        t_cpu = self.cpu_seconds(n_ops, words)
        bytes_in = n_ops * 4
        bytes_out = n_ops * self.ciphertext_bytes(key_bits)
        t_gpu = self.gpu_seconds(n_ops, n_ops * words, bytes_in, bytes_out,
                                 plan, spec=spec, managed=True)
        if t_gpu <= 0:
            return float("inf")
        return t_cpu / t_gpu


#: The calibrated default profile used across benchmarks.
DEFAULT_PROFILE = HardwareProfile()
