"""GPU-parallel key generation (paper Sec. IV-A3).

"We develop a random number generator for large integers (including
Miller-Rabin large prime number generator), assigning a random number
generator for each thread in a warp."  A prime search is embarrassingly
parallel: every thread draws candidates from its own generator and runs
Miller-Rabin; the first witness-surviving candidate wins.

The simulation runs the real search (one :class:`LimbRandom` per thread,
round-robin across the warp so the outcome is deterministic) and charges
the device the *parallel* cost: all threads test simultaneously, so the
modelled time covers ``ceil(candidates / threads)`` sequential rounds of
Miller-Rabin exponentiations instead of ``candidates``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.keys import (
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.gpu.kernels import GpuKernels
from repro.mpint.primes import LimbRandom, is_probable_prime

#: Miller-Rabin rounds per candidate during the parallel search; a
#: surviving candidate is re-verified at full strength.
SEARCH_ROUNDS = 8
FINAL_ROUNDS = 64


@dataclass
class KeygenStats:
    """What one parallel prime search cost."""

    candidates_tested: int
    parallel_rounds: int
    threads: int
    modelled_seconds: float


class ParallelKeyGenerator:
    """Warp-parallel prime and keypair generation on the simulated GPU.

    Args:
        kernels: Device executor charged for the search.
        seed: Warp seed; thread ``i`` derives its own stream from it.
        threads: Concurrent candidate testers (a warp by default).
    """

    def __init__(self, kernels: Optional[GpuKernels] = None,
                 seed: int = 0, threads: int = 32):
        if threads < 1:
            raise ValueError("need at least one thread")
        self.kernels = kernels if kernels is not None else GpuKernels()
        self.threads = threads
        self._streams: List[LimbRandom] = [
            LimbRandom(seed=seed, thread_index=index)
            for index in range(threads)
        ]

    def generate_prime(self, bits: int) -> Tuple[int, KeygenStats]:
        """Find a ``bits``-bit probable prime with the thread pool.

        Deterministic: threads are polled round-robin, so the same seed
        always yields the same prime regardless of the (simulated)
        parallelism.
        """
        if bits < 16:
            raise ValueError("parallel search needs at least 16-bit primes")
        candidates = 0
        winner: Optional[int] = None
        while winner is None:
            # One parallel round: every thread draws and tests one
            # candidate; the lowest-index surviving thread wins the round.
            round_candidates = []
            for stream in self._streams:
                candidate = stream.randbits(bits) | (1 << (bits - 1)) | 1
                round_candidates.append(candidate)
            candidates += len(round_candidates)
            for candidate in round_candidates:
                if is_probable_prime(candidate, rounds=SEARCH_ROUNDS,
                                     rng=self._streams[0]):
                    if is_probable_prime(candidate, rounds=FINAL_ROUNDS,
                                         rng=self._streams[0]):
                        winner = candidate
                        break

        parallel_rounds = -(-candidates // self.threads)
        seconds = self._charge_kernels(bits, parallel_rounds)
        stats = KeygenStats(candidates_tested=candidates,
                            parallel_rounds=parallel_rounds,
                            threads=self.threads,
                            modelled_seconds=seconds)
        return winner, stats

    def generate_paillier_keypair(
            self, key_bits: int) -> Tuple[PaillierKeypair, KeygenStats]:
        """Generate a keypair with both primes found in parallel."""
        half = key_bits // 2
        p, stats_p = self.generate_prime(half)
        q, stats_q = self.generate_prime(half)
        while q == p:
            q, stats_q = self.generate_prime(half)
        n = p * q
        public = PaillierPublicKey(n=n, g=n + 1, key_bits=key_bits)
        private = PaillierPrivateKey(p=p, q=q, public_key=public)
        combined = KeygenStats(
            candidates_tested=(stats_p.candidates_tested
                               + stats_q.candidates_tested),
            parallel_rounds=(stats_p.parallel_rounds
                             + stats_q.parallel_rounds),
            threads=self.threads,
            modelled_seconds=(stats_p.modelled_seconds
                              + stats_q.modelled_seconds))
        return PaillierKeypair(public_key=public, private_key=private), \
            combined

    def _charge_kernels(self, bits: int,
                        parallel_rounds: int) -> float:
        """Charge the search: MR exponentiations, warp-wide, per round.

        Each Miller-Rabin round is one ``bits``-bit modular
        exponentiation per thread; rounds across the warp run in
        parallel, so tasks = threads and the sequential depth is
        ``parallel_rounds * SEARCH_ROUNDS`` exponentiations.
        """
        total = 0.0
        for _ in range(parallel_rounds * SEARCH_ROUNDS):
            total += self.kernels.charge_mod_pow(
                tasks=self.threads, modulus_bits=max(bits, 32),
                exponent_bits=max(bits, 32))
        return total
