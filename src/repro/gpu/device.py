"""Simulated GPU device (paper Sec. III-C).

:class:`DeviceSpec` captures the resources the paper's resource manager
balances -- the number of threads, the number of registers, and the size of
memory -- and :class:`SimulatedGpu` tracks kernel launches and memory
traffic against that budget.  The default spec mirrors the NVIDIA GeForce
RTX 3090 used in the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU.

    Attributes mirror the resources the paper's resource manager allocates:
    stream multiprocessors, threads, registers, and memory.
    """

    name: str
    num_sms: int
    max_threads_per_sm: int
    warp_size: int
    registers_per_sm: int
    shared_memory_per_sm: int          # bytes
    global_memory: int                 # bytes
    core_clock_hz: float
    pcie_bandwidth: float              # bytes / second, host <-> device

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps on one SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def max_concurrent_threads(self) -> int:
        """Device-wide resident thread limit (T_max in Eq. 10)."""
        return self.num_sms * self.max_threads_per_sm


#: The paper's testbed GPU.
RTX_3090 = DeviceSpec(
    name="NVIDIA GeForce RTX 3090 (simulated)",
    num_sms=82,
    max_threads_per_sm=1536,
    warp_size=32,
    registers_per_sm=65536,
    shared_memory_per_sm=100 * 1024,
    global_memory=24 * 1024 ** 3,
    core_clock_hz=1.695e9,
    pcie_bandwidth=16e9,               # PCIe 4.0 x16 effective
)


@dataclass
class KernelLaunch:
    """Record of one simulated kernel launch.

    Attributes:
        name: Kernel identifier (e.g. ``"paillier_encrypt"``).
        tasks: Number of independent HE tasks in the batch.
        threads_per_task: GPU threads assigned to each task.
        word_multiplications: Total single-word multiply-adds executed.
        bytes_in: Host-to-device transfer volume.
        bytes_out: Device-to-host transfer volume.
        sm_utilization: Fraction of SM issue capacity kept busy (Fig. 6).
        seconds: Modelled wall-clock duration of the launch.
    """

    name: str
    tasks: int
    threads_per_task: int
    word_multiplications: int
    bytes_in: int
    bytes_out: int
    sm_utilization: float
    seconds: float


@dataclass
class SimulatedGpu:
    """A device instance accumulating launch statistics.

    The simulation is *behavioural*: callers execute the limb algorithms on
    the CPU and report the work here; the device converts work into modelled
    time via the cost model and keeps the launch log that the utilization
    figures and ablations read back.
    """

    spec: DeviceSpec = field(default_factory=lambda: RTX_3090)
    launches: List[KernelLaunch] = field(default_factory=list)

    def record_launch(self, launch: KernelLaunch) -> None:
        """Append a completed launch to the device log."""
        self.launches.append(launch)

    @property
    def total_seconds(self) -> float:
        """Modelled GPU-side time across all launches."""
        return sum(launch.seconds for launch in self.launches)

    @property
    def total_bytes_transferred(self) -> int:
        """Host<->device traffic across all launches."""
        return sum(l.bytes_in + l.bytes_out for l in self.launches)

    def mean_sm_utilization(self) -> float:
        """Launch-weighted average SM utilization (the Fig. 6 metric)."""
        if not self.launches:
            return 0.0
        weighted = sum(l.sm_utilization * l.seconds for l in self.launches)
        total = sum(l.seconds for l in self.launches)
        if total == 0:
            return sum(l.sm_utilization for l in self.launches) / len(self.launches)
        return weighted / total

    def reset(self) -> None:
        """Clear the launch log (between benchmark configurations)."""
        self.launches.clear()
