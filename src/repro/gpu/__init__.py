"""Simulated GPU substrate (paper Sec. III-C, IV-A2).

The paper runs its homomorphic-encryption kernels on an NVIDIA RTX 3090.
This repository has no GPU, so the package provides a *behavioural
simulation*: the same limb-parallel algorithms are executed (on the CPU,
bit-for-bit), while a calibrated device model charges the time a GPU launch
would take -- transfer in, parallel compute across stream multiprocessors,
transfer out -- following the structure of the paper's Eq. 10.

- :mod:`repro.gpu.device` -- the device description (SMs, warps, registers,
  memory) and launch bookkeeping.
- :mod:`repro.gpu.resource_manager` -- the paper's GPU resource manager:
  block-size selection, the memory table, register budgeting, and branch
  combining; also the source of the SM-utilization numbers in Fig. 6.
- :mod:`repro.gpu.cost_model` -- the hardware time model (Eq. 10).
- :mod:`repro.gpu.kernels` -- batched big-integer kernels (mod_mul,
  mod_pow, encrypt/decrypt primitives) used by the GPU HE engine.
"""

from repro.gpu.device import DeviceSpec, SimulatedGpu, KernelLaunch, RTX_3090
from repro.gpu.resource_manager import ResourceManager, BlockPlan
from repro.gpu.cost_model import HardwareProfile, DEFAULT_PROFILE
from repro.gpu.kernels import GpuKernels
from repro.gpu.keygen import ParallelKeyGenerator, KeygenStats
from repro.gpu.profiler import profile_device, DeviceProfile

__all__ = [
    "DeviceSpec",
    "SimulatedGpu",
    "KernelLaunch",
    "RTX_3090",
    "ResourceManager",
    "BlockPlan",
    "HardwareProfile",
    "DEFAULT_PROFILE",
    "GpuKernels",
    "ParallelKeyGenerator",
    "KeygenStats",
    "profile_device",
    "DeviceProfile",
]
