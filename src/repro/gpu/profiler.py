"""Device profiler: summarize a simulated GPU's launch log.

Everything the engines do leaves a :class:`~repro.gpu.device.KernelLaunch`
record; this module rolls those up into the per-kernel summaries a
profiler (nsight-style) would show -- launch counts, time, work,
transfer volume, utilization -- for debugging cost-model behaviour and
for the utilization figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.gpu.device import SimulatedGpu


@dataclass
class KernelSummary:
    """Aggregated statistics for one kernel name."""

    launches: int = 0
    tasks: int = 0
    seconds: float = 0.0
    word_multiplications: int = 0
    bytes_transferred: int = 0
    utilization_weighted: float = 0.0

    @property
    def mean_utilization(self) -> float:
        """Time-weighted mean SM utilization of this kernel."""
        if self.seconds == 0:
            return 0.0
        return self.utilization_weighted / self.seconds

    @property
    def seconds_per_task(self) -> float:
        """Average modelled time per task."""
        if self.tasks == 0:
            return 0.0
        return self.seconds / self.tasks


@dataclass
class DeviceProfile:
    """Roll-up of a device's entire launch history."""

    kernels: Dict[str, KernelSummary] = field(default_factory=dict)
    total_seconds: float = 0.0
    total_launches: int = 0

    def busiest_kernel(self) -> str:
        """Kernel name with the most modelled time."""
        if not self.kernels:
            raise ValueError("no launches recorded")
        return max(self.kernels, key=lambda k: self.kernels[k].seconds)

    def time_share(self, name: str) -> float:
        """Fraction of device time spent in one kernel."""
        if self.total_seconds == 0:
            return 0.0
        return self.kernels.get(name, KernelSummary()).seconds / \
            self.total_seconds

    def table_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.experiments.harness.format_table`."""
        rows = []
        for name in sorted(self.kernels,
                           key=lambda k: -self.kernels[k].seconds):
            summary = self.kernels[name]
            rows.append([
                name,
                str(summary.launches),
                str(summary.tasks),
                f"{summary.seconds * 1e3:.3f}",
                f"{100 * self.time_share(name):.1f}%",
                f"{summary.mean_utilization:.0%}",
                f"{summary.bytes_transferred:,}",
            ])
        return rows


def profile_device(device: SimulatedGpu) -> DeviceProfile:
    """Aggregate a device's launch log into a :class:`DeviceProfile`."""
    kernels: Dict[str, KernelSummary] = defaultdict(KernelSummary)
    total_seconds = 0.0
    for launch in device.launches:
        summary = kernels[launch.name]
        summary.launches += 1
        summary.tasks += launch.tasks
        summary.seconds += launch.seconds
        summary.word_multiplications += launch.word_multiplications
        summary.bytes_transferred += launch.bytes_in + launch.bytes_out
        summary.utilization_weighted += \
            launch.sm_utilization * launch.seconds
        total_seconds += launch.seconds
    return DeviceProfile(kernels=dict(kernels),
                         total_seconds=total_seconds,
                         total_launches=len(device.launches))
