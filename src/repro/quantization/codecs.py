"""Pluggable packing codecs (beyond-the-paper packing layer).

The paper's batch compression (Sec. IV-C) fixes one layout: dense
fixed-width slots, MSB first.  Real federated gradients are often
~0.1% dense (RCV1/Avazu-shaped workloads), where dense packing wastes
>99% of the plaintext, and FedBit-style guard-bit layouts show that a
wider inter-slot gap buys orders of magnitude more safe summands.

This module turns the packer into a *registry of codecs* sharing one
duck-typed protocol (``BatchPacker`` in packing.py is the default
``"dense"`` member):

``codec_id``
    Registry name, carried in :class:`~repro.tensor.meta.TensorMeta`
    and on the FLT3 wire frame.
``pack(encoded) / unpack(words, count)``
    Integer-level layout; ``unpack`` inverts ``pack`` for summands=1.
``pack_values(values) / decode_words(words, count, summands)``
    Float-level entry points used by PlainTensor; ``decode_words``
    raises :class:`OverflowError` past ``max_safe_summands()``.
``codec_params() / from_meta(meta)``
    Wire round-trip: the integer tuple that, together with the scheme
    and capacity, reconstructs the codec on the receiving side.
``describe()``
    :class:`~repro.quantization.packing.CodecCapabilities` for the
    planner, shard capacity planning, and the conformance matrix.

Every codec decodes through ``scheme.decode_array``, so for any value
the registry guarantees ``decode(encode(x))`` is **bit-identical**
across codecs -- the layouts differ, the quantization grid does not.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker, CodecCapabilities

#: Widest adaptive value width the sparse codec accepts off the wire.
#: Generous (offsets fit in ~r+1 bits <= 31 for default schemes) but
#: bounded so a lying FLT3 header cannot demand absurd slot widths.
MAX_SPARSE_VALUE_BITS = 80

#: Widest guard band the interleaved codec accepts off the wire.
MAX_GUARD_BITS = 128

#: Extra guard bits the interleaved codec adds beyond the scheme's
#: Eq. 8 minimum when none are requested: 8 more bits buy 256x more
#: safe summands at a modest capacity cost.
DEFAULT_EXTRA_GUARD_BITS = 8


class InterleavedCodec:
    """FedBit-style guard-banded layout, LSB-first.

    Each slot is ``r + g`` bits with ``g >= b`` guard bits *above* the
    value, and slots are laid out least-significant-first:

        word = sum_i  e_i << (i * (r + g))

    Two properties follow:

    * ``max_safe_summands() = 2**g`` -- the guard band, not the Eq. 8
      minimum, bounds how many words may be slot-wise summed, so a
      wider band raises summand capacity at equal key size.
    * unpack needs **no per-slot masking**: slots peel off the low end
      with repeated divmod by ``2**(r+g)``, each quotient already
      clean of the slots above it.
    """

    codec_id = "interleave"

    def __init__(self, scheme: QuantizationScheme, plaintext_bits: int,
                 guard_bits: int | None = None,
                 capacity: int | None = None):
        if guard_bits is None:
            guard_bits = scheme.overflow_bits + DEFAULT_EXTRA_GUARD_BITS
        if guard_bits < scheme.overflow_bits:
            raise ValueError(
                f"{guard_bits} guard bits cannot be below the scheme's "
                f"{scheme.overflow_bits} Eq. 8 overflow bits")
        if guard_bits > MAX_GUARD_BITS:
            raise ValueError(f"guard band of {guard_bits} bits is unreasonable")
        self.scheme = scheme
        self.guard_bits = guard_bits
        self.plaintext_bits = plaintext_bits
        if plaintext_bits < self.slot_bits:
            raise ValueError(
                f"plaintext of {plaintext_bits} bits cannot hold one "
                f"{self.slot_bits}-bit interleaved slot")
        derived = plaintext_bits // self.slot_bits
        self.capacity = capacity if capacity is not None else derived
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.capacity * self.slot_bits > plaintext_bits:
            raise ValueError(
                f"{self.capacity} slots of {self.slot_bits} bits exceed "
                f"the {plaintext_bits}-bit plaintext")

    @property
    def slot_bits(self) -> int:
        """Bits per slot: value bits plus the (widened) guard band."""
        return self.scheme.r_bits + self.guard_bits

    # ------------------------------------------------------------------
    # Layout.
    # ------------------------------------------------------------------

    def pack(self, encoded: Sequence[int]) -> List[int]:
        """Pack encodings LSB-first, ``capacity`` per word."""
        bound = 1 << self.scheme.r_bits
        for value in encoded:
            if not 0 <= value < bound:
                raise ValueError(
                    f"encoding {value} outside the {self.scheme.r_bits}-bit "
                    f"value range")
        words: List[int] = []
        for start in range(0, len(encoded), self.capacity):
            chunk = encoded[start:start + self.capacity]
            word = 0
            for slot, value in enumerate(chunk):
                word |= value << (slot * self.slot_bits)
            words.append(word)
        return words

    def unpack(self, words: Sequence[int], count: int) -> List[int]:
        """Peel ``count`` slots off the low end of each word.

        The divmod peel reads aggregated words exactly as long as no
        slot sum crossed its guard band -- no masking required.
        """
        expected = math.ceil(count / self.capacity) if count else 0
        if len(words) < expected:
            raise ValueError(
                f"{count} values need {expected} words, got {len(words)}")
        base = 1 << self.slot_bits
        values: List[int] = []
        for word_index, word in enumerate(words):
            if len(values) >= count:
                break
            remaining = min(self.capacity, count - word_index * self.capacity)
            for _ in range(remaining):
                word, slot_value = divmod(word, base)
                values.append(slot_value)
        return values

    def words_needed(self, n_values: int) -> int:
        """Plaintext words (and thus ciphertexts) for ``n_values``."""
        if n_values <= 0:
            return 0
        return math.ceil(n_values / self.capacity)

    def max_safe_summands(self) -> int:
        """The guard band bounds summand capacity: ``2**g``."""
        return 2 ** self.guard_bits

    def achieved_psu(self, n_values: int) -> float:
        """Eq. 12 with the widened slot against this plaintext size."""
        if n_values <= 0:
            return 0.0
        return (n_values * self.slot_bits) / (
            self.plaintext_bits * self.words_needed(n_values))

    # ------------------------------------------------------------------
    # Codec protocol.
    # ------------------------------------------------------------------

    def codec_params(self) -> Tuple[int, ...]:
        """Wire parameters: the guard-band width."""
        return (self.guard_bits,)

    @classmethod
    def from_meta(cls, meta) -> "InterleavedCodec":
        params = tuple(meta.codec_params)
        if len(params) != 1:
            raise ValueError(
                f"interleave codec takes one parameter (guard bits), "
                f"got {len(params)}")
        guard_bits = int(params[0])
        if not meta.scheme.overflow_bits <= guard_bits <= MAX_GUARD_BITS:
            raise ValueError(f"implausible guard band: {guard_bits} bits")
        stride = meta.scheme.r_bits + guard_bits
        return cls(meta.scheme, plaintext_bits=meta.capacity * stride,
                   guard_bits=guard_bits, capacity=meta.capacity)

    def pack_values(self, values: np.ndarray) -> List[int]:
        """Quantize a flat float array and pack it into plaintext words."""
        return self.pack(self.scheme.encode_array(np.asarray(values)))

    def decode_words(self, words: Sequence[int], count: int,
                     summands: int = 1) -> np.ndarray:
        """Peel slots and decode sums of ``summands`` encodings."""
        if self.capacity > 1 and summands > self.max_safe_summands():
            raise OverflowError(
                f"{summands} summands exceed the {self.guard_bits}-bit "
                f"guard band")
        slots = self.unpack(words, count)
        return _decode_slots(self.scheme, slots, summands)

    def describe(self) -> CodecCapabilities:
        return CodecCapabilities(
            slot_layout="interleave-lsb",
            summand_capacity=self.max_safe_summands(),
            add_safe=True,
            sliceable=True)


class SparseCodec:
    """Index + value layout for CSR-shaped gradients, adaptive width.

    For a ~0.1%-dense gradient the dense layout spends >99% of every
    plaintext on quantized zeros.  This codec pins a *support pattern*
    (the sorted indices whose values quantize away from zero) and packs
    only those positions, as grid offsets from the zero encoding:

        e0     = scheme.encode(0.0)
        offset = e_i - e0                         in [-(2^(w-1)-1), ...]
        stored = offset + 2^(w-1)                 unsigned, w bits

    ``w`` is the adaptive value width, chosen per layer from the
    observed offset range by :meth:`for_values`.  Stored values pack
    densely (MSB-first, ``b`` guard bits each), and the pattern plus
    width travel in the codec parameters -- on the FLT3 wire they ride
    the header, not the ciphertexts.

    Crucially the codec is *grid-preserving*: decode reconstructs the
    full-length encoding vector (absent slots contribute ``e0`` per
    summand) and funnels it through ``scheme.decode_array``, so its
    floats are bit-identical to the dense codec's for the same inputs.

    Homomorphic addition is well defined only between tensors sharing
    the pattern (stored sums then decode with the summand count);
    TensorMeta enforces this through codec-parameter equality.  The
    layout is not word-sliceable: a word boundary has no aligned
    meaning in logical index space.
    """

    codec_id = "sparse"

    def __init__(self, scheme: QuantizationScheme, plaintext_bits: int,
                 indices: Sequence[int], value_bits: int,
                 capacity: int | None = None):
        if not 1 <= value_bits <= MAX_SPARSE_VALUE_BITS:
            raise ValueError(f"implausible value width: {value_bits} bits")
        pattern = tuple(int(i) for i in indices)
        if any(i < 0 for i in pattern):
            raise ValueError("sparse indices must be non-negative")
        if any(b <= a for a, b in zip(pattern, pattern[1:])):
            raise ValueError("sparse indices must be strictly increasing")
        self.scheme = scheme
        self.indices = pattern
        self.value_bits = value_bits
        self.plaintext_bits = plaintext_bits
        if plaintext_bits < self.slot_bits:
            raise ValueError(
                f"plaintext of {plaintext_bits} bits cannot hold one "
                f"{self.slot_bits}-bit sparse slot")
        derived = plaintext_bits // self.slot_bits
        self.capacity = capacity if capacity is not None else derived
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.capacity * self.slot_bits > plaintext_bits:
            raise ValueError(
                f"{self.capacity} slots of {self.slot_bits} bits exceed "
                f"the {plaintext_bits}-bit plaintext")
        #: The zero encoding: what every absent position contributes.
        self.zero_encoding = scheme.encode(0.0)
        #: Unsigned bias applied to grid offsets before packing.
        self.offset_bias = 1 << (value_bits - 1) if value_bits > 1 else 0

    @property
    def slot_bits(self) -> int:
        """Bits per stored value: adaptive width plus Eq. 8 guard bits."""
        return self.value_bits + self.scheme.overflow_bits

    @property
    def nnz(self) -> int:
        """Pattern size: how many positions are actually stored."""
        return len(self.indices)

    @classmethod
    def for_values(cls, values: np.ndarray, scheme: QuantizationScheme,
                   plaintext_bits: int) -> "SparseCodec":
        """Derive pattern and adaptive width from one observed gradient.

        The pattern is the set of positions whose values quantize away
        from zero; the width is the smallest ``w`` whose biased range
        covers every observed grid offset (minimum 2 so the bias is a
        genuine sign split).
        """
        encoded = scheme.encode_array(np.asarray(values).reshape(-1))
        e0 = scheme.encode(0.0)
        indices = [i for i, e in enumerate(encoded) if e != e0]
        max_offset = max((abs(encoded[i] - e0) for i in indices), default=1)
        value_bits = max(2, max_offset.bit_length() + 1)
        return cls(scheme, plaintext_bits, indices=indices,
                   value_bits=value_bits)

    # ------------------------------------------------------------------
    # Layout.
    # ------------------------------------------------------------------

    def _stored(self, encoding: int) -> int:
        offset = encoding - self.zero_encoding
        stored = offset + self.offset_bias
        if not 0 <= stored < (1 << self.value_bits):
            raise ValueError(
                f"grid offset {offset} does not fit {self.value_bits} "
                f"value bits")
        return stored

    def pack(self, encoded: Sequence[int]) -> List[int]:
        """Pack a full-length encoding vector: store pattern positions.

        Off-pattern positions must carry the zero encoding -- anything
        else would be silently dropped, so it raises instead.
        """
        bound = 1 << self.scheme.r_bits
        for value in encoded:
            if not 0 <= value < bound:
                raise ValueError(
                    f"encoding {value} outside the {self.scheme.r_bits}-bit "
                    f"value range")
        on_pattern = set(self.indices)
        for position, value in enumerate(encoded):
            if position not in on_pattern and value != self.zero_encoding:
                raise ValueError(
                    f"position {position} quantizes away from zero but is "
                    f"not in the sparse pattern")
        stored = [self._stored(encoded[i]) for i in self.indices
                  if i < len(encoded)]
        if len(stored) != self.nnz:
            raise ValueError(
                f"pattern references index {self.indices[-1]} beyond the "
                f"{len(encoded)}-value input")
        words: List[int] = []
        for start in range(0, len(stored), self.capacity):
            chunk = stored[start:start + self.capacity]
            word = 0
            for value in chunk:
                word = (word << self.slot_bits) | value
            word <<= self.slot_bits * (self.capacity - len(chunk))
            words.append(word)
        if not words:
            words.append(0)  # A zero-support tensor still ships one word.
        return words

    def _stored_slots(self, words: Sequence[int]) -> List[int]:
        """Read the ``nnz`` stored slots back out of the packed words."""
        expected = self.words_needed(1)  # depends only on the pattern
        if len(words) < expected:
            raise ValueError(
                f"pattern of {self.nnz} values needs {expected} words, "
                f"got {len(words)}")
        mask = (1 << self.slot_bits) - 1
        slots: List[int] = []
        for word_index, word in enumerate(words):
            if len(slots) >= self.nnz:
                break
            remaining = min(self.capacity,
                            self.nnz - word_index * self.capacity)
            for slot in range(remaining):
                shift = self.slot_bits * (self.capacity - 1 - slot)
                slots.append((word >> shift) & mask)
        return slots

    def unpack(self, words: Sequence[int], count: int) -> List[int]:
        """Reconstruct the full-length encoding vector (summands=1)."""
        if count and self.indices and self.indices[-1] >= count:
            raise ValueError(
                f"pattern index {self.indices[-1]} out of range for "
                f"{count} values")
        stored = self._stored_slots(words)
        encodings = [self.zero_encoding] * count
        for position, value in zip(self.indices, stored):
            encodings[position] = value - self.offset_bias + self.zero_encoding
        return encodings

    def words_needed(self, n_values: int) -> int:
        """Words are driven by the pattern size, not the logical count."""
        if n_values <= 0:
            return 0
        return max(1, math.ceil(self.nnz / self.capacity))

    def max_safe_summands(self) -> int:
        """Eq. 8 guard bits bound stored-slot sums, as in the dense case."""
        return 2 ** self.scheme.overflow_bits

    def achieved_psu(self, n_values: int) -> float:
        """Payload fraction for the *stored* slots (pattern positions)."""
        if n_values <= 0 or self.nnz == 0:
            return 0.0
        return (self.nnz * self.slot_bits) / (
            self.plaintext_bits * self.words_needed(n_values))

    # ------------------------------------------------------------------
    # Codec protocol.
    # ------------------------------------------------------------------

    def codec_params(self) -> Tuple[int, ...]:
        """Wire parameters: adaptive width, then the sorted pattern."""
        return (self.value_bits, *self.indices)

    @classmethod
    def from_meta(cls, meta) -> "SparseCodec":
        params = tuple(meta.codec_params)
        if not params:
            raise ValueError("sparse codec needs at least a value width")
        value_bits, indices = int(params[0]), params[1:]
        if not 1 <= value_bits <= MAX_SPARSE_VALUE_BITS:
            raise ValueError(f"implausible value width: {value_bits} bits")
        if any(int(i) >= meta.count for i in indices):
            raise ValueError(
                f"sparse pattern index out of range for {meta.count} values")
        slot = value_bits + meta.scheme.overflow_bits
        return cls(meta.scheme, plaintext_bits=meta.capacity * slot,
                   indices=indices, value_bits=value_bits,
                   capacity=meta.capacity)

    def pack_values(self, values: np.ndarray) -> List[int]:
        """Quantize a flat float array and pack its pattern positions."""
        return self.pack(self.scheme.encode_array(np.asarray(values)))

    def decode_words(self, words: Sequence[int], count: int,
                     summands: int = 1) -> np.ndarray:
        """Decode sums of ``summands`` same-pattern tensors.

        Absent positions each contributed ``e0`` per summand; stored
        sums shed ``summands`` copies of the bias.  Both corrections
        feed the standard ``decode_array`` path, so the floats match
        the dense codec bit for bit.
        """
        if summands > self.max_safe_summands():
            raise OverflowError(
                f"{summands} summands exceed the "
                f"{self.scheme.overflow_bits} guard bits of the sparse "
                f"layout")
        if count and self.indices and self.indices[-1] >= count:
            raise ValueError(
                f"pattern index {self.indices[-1]} out of range for "
                f"{count} values")
        stored = self._stored_slots(words)
        encodings = [summands * self.zero_encoding] * count
        for position, value in zip(self.indices, stored):
            encodings[position] = (value - summands * self.offset_bias
                                   + summands * self.zero_encoding)
        return _decode_slots(self.scheme, encodings, summands)

    def describe(self) -> CodecCapabilities:
        return CodecCapabilities(
            slot_layout="sparse-pairs",
            summand_capacity=self.max_safe_summands(),
            add_safe=True,       # only between identical patterns --
            sliceable=False)     # TensorMeta checks codec_params equality.


def _decode_slots(scheme: QuantizationScheme, slots: Sequence[int],
                  summands: int) -> np.ndarray:
    """Shared decode tail: every codec funnels through decode_array."""
    return scheme.decode_array(slots, count=summands)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type] = {}


def register_codec(cls) -> Type:
    """Register a codec class under its ``codec_id`` (idempotent)."""
    codec_id = cls.codec_id
    existing = _REGISTRY.get(codec_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"codec id {codec_id!r} already registered")
    _REGISTRY[codec_id] = cls
    return cls


def get_codec(codec_id: str):
    """Look up a codec class; unknown ids raise ``ValueError``."""
    try:
        return _REGISTRY[codec_id]
    except KeyError:
        raise ValueError(f"unknown packing codec: {codec_id!r}") from None


def registered_codecs() -> Dict[str, Type]:
    """Snapshot of the registry (id -> class)."""
    return dict(_REGISTRY)


def build_codec(meta):
    """Reconstruct the codec a :class:`TensorMeta` describes.

    Duck-typed over ``meta``: anything carrying ``codec``,
    ``codec_params``, ``scheme``, ``capacity`` (and ``count`` for the
    sparse layout) works, which keeps the wire layer free to hand in a
    lightweight view during deserialization.
    """
    return get_codec(meta.codec).from_meta(meta)


register_codec(BatchPacker)
register_codec(InterleavedCodec)
register_codec(SparseCodec)
