"""Encoding-quantization and batch compression (paper Sec. IV-B, IV-C).

- :mod:`repro.quantization.encoding` -- the secure encoding-quantization of
  Eqs. 6-8 (linear translation + fixed-point amplification + overflow
  bits), plus the insecure legacy ``(encrypt(significand), exponent)``
  scheme the paper contrasts against.
- :mod:`repro.quantization.packing` -- batch compression (Eq. 9): packing
  ``n = floor(k / (r + ceil(log2 p)))`` quantized gradients into one
  plaintext, with the compression-ratio and plaintext-space-utilization
  formulas of Eqs. 11-12.
"""

from repro.quantization.encoding import (
    QuantizationScheme,
    LegacyFloatEncoding,
    DEFAULT_QUANTIZATION_BITS,
)
from repro.quantization.packing import (
    BatchPacker,
    PackingPlan,
    compression_ratio,
    plaintext_space_utilization,
)

__all__ = [
    "QuantizationScheme",
    "LegacyFloatEncoding",
    "DEFAULT_QUANTIZATION_BITS",
    "BatchPacker",
    "PackingPlan",
    "compression_ratio",
    "plaintext_space_utilization",
]
