"""Encoding-quantization and batch compression (paper Sec. IV-B, IV-C).

- :mod:`repro.quantization.encoding` -- the secure encoding-quantization of
  Eqs. 6-8 (linear translation + fixed-point amplification + overflow
  bits), plus the insecure legacy ``(encrypt(significand), exponent)``
  scheme the paper contrasts against.
- :mod:`repro.quantization.packing` -- batch compression (Eq. 9): packing
  ``n = floor(k / (r + ceil(log2 p)))`` quantized gradients into one
  plaintext, with the compression-ratio and plaintext-space-utilization
  formulas of Eqs. 11-12.
- :mod:`repro.quantization.codecs` -- the pluggable codec registry
  (dense / interleave / sparse) layered over the same protocol, so
  PlainTensor and the wire format are parameterized by layout.
"""

from repro.quantization.codecs import (
    InterleavedCodec,
    SparseCodec,
    build_codec,
    get_codec,
    register_codec,
    registered_codecs,
)
from repro.quantization.encoding import (
    QuantizationScheme,
    LegacyFloatEncoding,
    DEFAULT_QUANTIZATION_BITS,
    overflow_bits_for,
    slot_bits_for,
)
from repro.quantization.packing import (
    BatchPacker,
    CodecCapabilities,
    PackingPlan,
    compression_ratio,
    plaintext_space_utilization,
)

__all__ = [
    "QuantizationScheme",
    "LegacyFloatEncoding",
    "DEFAULT_QUANTIZATION_BITS",
    "overflow_bits_for",
    "slot_bits_for",
    "BatchPacker",
    "CodecCapabilities",
    "PackingPlan",
    "compression_ratio",
    "plaintext_space_utilization",
    "InterleavedCodec",
    "SparseCodec",
    "build_codec",
    "get_codec",
    "register_codec",
    "registered_codecs",
]
