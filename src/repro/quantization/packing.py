"""Batch compression (paper Sec. IV-C, Eqs. 9, 11-13).

Packs ``n = floor(k / (r + b))`` quantized gradients into one plaintext so
that one encryption covers ``n`` values:

    Z = [0..0][q_0] [0..0][q_1] ... [0..0][q_{n-1}]        (Eq. 9)

Because every slot reserves ``b = ceil(log2 p)`` zero bits above its value,
slot-wise sums of up to ``p`` packed plaintexts never carry across slot
boundaries -- which is exactly why multiplying the packed *ciphertexts*
(Paillier addition) yields the slot-wise sums after decryption.

The compression ratio (Eq. 11), plaintext-space utilization (Eq. 12) and
the resulting HE-operation acceleration (Eq. 13) are provided as module
functions so benchmarks can print the theoretical curves of Fig. 7 next to
measured counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.quantization.encoding import QuantizationScheme, slot_bits_for


def packing_capacity(key_bits: int, r_bits: int, num_parties: int) -> int:
    """Values per plaintext: ``n = floor(k / (r + ceil(log2 p)))``."""
    return max(1, key_bits // slot_bits_for(r_bits, num_parties))


def compression_ratio(n_values: int, key_bits: int, r_bits: int,
                      num_parties: int) -> float:
    """Eq. 11: achieved ciphertext-count reduction for ``n_values``."""
    capacity = packing_capacity(key_bits, r_bits, num_parties)
    ciphertexts = math.ceil(n_values / capacity)
    return n_values / ciphertexts


def plaintext_space_utilization(n_values: int, key_bits: int, r_bits: int,
                                num_parties: int) -> float:
    """Eq. 12: fraction of plaintext bits carrying payload."""
    slot = slot_bits_for(r_bits, num_parties)
    capacity = packing_capacity(key_bits, r_bits, num_parties)
    ciphertexts = math.ceil(n_values / capacity)
    return (n_values * slot) / (key_bits * ciphertexts)


@dataclass(frozen=True)
class CodecCapabilities:
    """Capability descriptor every packing codec advertises.

    Attributes:
        slot_layout: Human-readable layout family (``"dense-msb"``,
            ``"interleave-lsb"``, ``"sparse-pairs"``).
        summand_capacity: How many packed words may be slot-wise summed
            before a carry can cross into a neighbouring slot.
        add_safe: Whether homomorphic addition of two *independently*
            encoded tensors is well defined (sparse layouts additionally
            require identical support, enforced by the TensorMeta
            algebra's codec-parameter equality check).
        sliceable: Whether word-aligned logical slicing is meaningful.
    """

    slot_layout: str
    summand_capacity: int
    add_safe: bool = True
    sliceable: bool = True


class BatchPacker:
    """Packs quantized values into multi-precision plaintexts (Eq. 9).

    Args:
        scheme: The quantization scheme whose encodings are packed; its
            ``slot_bits`` fixes the per-value width.
        capacity: Values per plaintext.  Normally
            ``floor(key_bits / slot_bits)``; pass an explicit value to model
            a *nominal* key whose capacity differs from the physical
            plaintext (scaled benchmark mode, see DESIGN.md).
        plaintext_bits: Physical plaintext budget; packing more slots than
            fit raises at construction.
    """

    #: Registry identity of the dense fixed-width layout (see codecs.py).
    codec_id = "dense"

    def __init__(self, scheme: QuantizationScheme, plaintext_bits: int,
                 capacity: int | None = None):
        if plaintext_bits < scheme.slot_bits:
            raise ValueError(
                f"plaintext of {plaintext_bits} bits cannot hold one "
                f"{scheme.slot_bits}-bit slot")
        self.scheme = scheme
        self.plaintext_bits = plaintext_bits
        derived = plaintext_bits // scheme.slot_bits
        self.capacity = capacity if capacity is not None else derived
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.capacity * scheme.slot_bits > plaintext_bits:
            raise ValueError(
                f"{self.capacity} slots of {scheme.slot_bits} bits exceed "
                f"the {plaintext_bits}-bit plaintext")

    @property
    def slot_bits(self) -> int:
        """Bits per packed value (``r + b``)."""
        return self.scheme.slot_bits

    def slot_mask(self) -> int:
        """Bit mask of one slot."""
        return (1 << self.slot_bits) - 1

    # ------------------------------------------------------------------
    # Packing / unpacking.
    # ------------------------------------------------------------------

    def pack(self, encoded: Sequence[int]) -> List[int]:
        """Pack encodings into plaintext integers, ``capacity`` per word.

        Values are laid out with the first encoding in the most significant
        slot (the left-to-right order of Eq. 9).  The final word may be
        partially filled; unpack with the original count.
        """
        self._check_encodings(encoded)
        words: List[int] = []
        for start in range(0, len(encoded), self.capacity):
            chunk = encoded[start:start + self.capacity]
            word = 0
            for value in chunk:
                word = (word << self.slot_bits) | value
            # Left-align a partial final chunk so slot indices stay fixed.
            word <<= self.slot_bits * (self.capacity - len(chunk))
            words.append(word)
        return words

    def unpack(self, words: Sequence[int], count: int) -> List[int]:
        """Extract ``count`` slot values from packed words.

        Safe for *aggregated* words: each slot is read with its overflow
        bits included, so slot-wise sums of up to ``2^b`` encodings come
        back exactly.
        """
        expected_words = math.ceil(count / self.capacity) if count else 0
        if len(words) < expected_words:
            raise ValueError(
                f"{count} values need {expected_words} words, got {len(words)}")
        mask = self.slot_mask()
        values: List[int] = []
        for word_index, word in enumerate(words):
            if len(values) >= count:
                break
            remaining = min(self.capacity, count - word_index * self.capacity)
            for slot in range(remaining):
                shift = self.slot_bits * (self.capacity - 1 - slot)
                values.append((word >> shift) & mask)
        return values

    def words_needed(self, n_values: int) -> int:
        """Plaintext words (and thus ciphertexts) for ``n_values``."""
        if n_values <= 0:
            return 0
        return math.ceil(n_values / self.capacity)

    # ------------------------------------------------------------------
    # Theory hooks.
    # ------------------------------------------------------------------

    def achieved_compression_ratio(self, n_values: int) -> float:
        """Eq. 11 evaluated with this packer's capacity."""
        if n_values <= 0:
            return 0.0
        return n_values / self.words_needed(n_values)

    def achieved_psu(self, n_values: int) -> float:
        """Eq. 12 evaluated against this packer's plaintext size."""
        if n_values <= 0:
            return 0.0
        return (n_values * self.slot_bits) / (
            self.plaintext_bits * self.words_needed(n_values))

    def max_safe_summands(self) -> int:
        """How many packed words may be summed without cross-slot carries."""
        return 2 ** self.scheme.overflow_bits

    # ------------------------------------------------------------------
    # Codec protocol (see quantization/codecs.py).
    # ------------------------------------------------------------------

    def codec_params(self) -> Tuple[int, ...]:
        """Wire parameters; the dense layout is fully fixed by the scheme."""
        return ()

    @classmethod
    def from_meta(cls, meta) -> "BatchPacker":
        """Rebuild the packer a :class:`TensorMeta` describes."""
        if tuple(getattr(meta, "codec_params", ())):
            raise ValueError("the dense codec takes no wire parameters")
        return cls(meta.scheme,
                   plaintext_bits=meta.capacity * meta.scheme.slot_bits,
                   capacity=meta.capacity)

    def pack_values(self, values: np.ndarray) -> List[int]:
        """Quantize a flat float array and pack it into plaintext words."""
        return self.pack(self.scheme.encode_array(np.asarray(values)))

    def decode_words(self, words: Sequence[int], count: int,
                     summands: int = 1) -> np.ndarray:
        """Unpack words and decode slot sums of ``summands`` encodings."""
        if self.capacity > 1 and summands > self.max_safe_summands():
            raise OverflowError(
                f"{summands} summands exceed the {self.scheme.overflow_bits} "
                f"guard bits of the dense layout")
        slots = self.unpack(words, count)
        return self.scheme.decode_array(slots, count=summands)

    def describe(self) -> CodecCapabilities:
        """Capability descriptor for planners and the conformance matrix."""
        return CodecCapabilities(
            slot_layout="dense-msb",
            summand_capacity=self.max_safe_summands(),
            add_safe=True,
            sliceable=True)

    def _check_encodings(self, encoded: Sequence[int]) -> None:
        bound = 1 << self.scheme.r_bits
        for value in encoded:
            if not 0 <= value < bound:
                raise ValueError(
                    f"encoding {value} outside the {self.scheme.r_bits}-bit "
                    f"value range")


@dataclass(frozen=True)
class PackingPlan:
    """A consistent (scheme, packer) pair for a given engine and key.

    In full-fidelity mode the physical plaintext hosts the nominal
    capacity at full ``r`` bits.  In scaled mode (physical key smaller than
    nominal) the plan keeps the *nominal capacity* -- so ciphertext counts,
    compression ratios, and communication volumes match the nominal key --
    and shrinks the slot width to what the physical plaintext affords.
    """

    scheme: QuantizationScheme
    packer: BatchPacker
    nominal_key_bits: int

    @classmethod
    def for_engine(cls, engine, alpha: float = 1.0,
                   r_bits: int = 30, num_parties: int = 2) -> "PackingPlan":
        """Build the plan for an HE engine (physical vs nominal aware)."""
        nominal_scheme = QuantizationScheme(
            alpha=alpha, r_bits=r_bits, num_parties=num_parties)
        capacity = packing_capacity(engine.nominal_bits, r_bits, num_parties)
        physical_bits = engine.physical_plaintext_bits
        slot_budget = physical_bits // capacity
        if slot_budget >= nominal_scheme.slot_bits:
            scheme = nominal_scheme
        else:
            # Scaled mode: shrink the value bits, keep the overflow bits.
            reduced_r = slot_budget - nominal_scheme.overflow_bits
            if reduced_r < 2:
                raise ValueError(
                    f"physical key too small: {physical_bits} plaintext bits "
                    f"cannot host {capacity} slots")
            scheme = QuantizationScheme(
                alpha=alpha, r_bits=reduced_r, num_parties=num_parties)
        packer = BatchPacker(scheme, plaintext_bits=physical_bits,
                             capacity=capacity)
        return cls(scheme=scheme, packer=packer,
                   nominal_key_bits=engine.nominal_bits)
