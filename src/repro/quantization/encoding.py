"""Encoding-quantization (paper Sec. IV-B, Eqs. 6-8).

Homomorphic encryption operates on unsigned integers, so signed gradients
must be encoded first.  The paper's scheme:

1. linear translation: ``e = m + alpha`` maps ``[-alpha, alpha]`` onto
   ``[0, 2 alpha]`` (Eq. 6);
2. amplification: the translated value is scaled onto ``r`` bits (Eq. 7);
3. overflow headroom: ``b = ceil(log2 p)`` zero bits are reserved above the
   value so ``p`` participants' encodings can be *summed* under encryption
   without carrying into a neighbouring slot (Eq. 8).

Aggregated sums decode by subtracting ``count * alpha``: summing ``p``
encodings adds ``p`` copies of the translation offset.

Note on Eq. 7: the paper writes ``q = e * (2^r - 1)``, which only fills the
``r``-bit range when ``alpha = 1/2``.  We normalize by the interval width,
``q = round(e / (2 alpha) * (2^r - 1))``, which reduces to the paper's
formula at ``alpha = 1/2`` and keeps every ``alpha`` loss-minimal.

The module also implements the *insecure* legacy encoding the paper
criticizes -- ``(encrypt(significand), exponent)`` with the exponent left
in plaintext -- so the security comparison is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

#: The paper's default: 32 bits quantize a 32-bit float gradient, "where
#: the last two bits are used for computational overflow" (Sec. VI-B).
DEFAULT_QUANTIZATION_BITS = 30


def overflow_bits_for(num_parties: int) -> int:
    """Guard bits ``b = ceil(log2 p)`` reserved above each value (Eq. 8).

    The single source of the overflow-bit arithmetic: the quantization
    scheme, the Eq. 9/11/12 capacity formulas and every packing codec
    all derive their guard width from here, so the capacity algebra
    cannot drift between call sites.
    """
    if num_parties < 1:
        raise ValueError("need at least one participant")
    return max(1, math.ceil(math.log2(max(num_parties, 2))))


def slot_bits_for(r_bits: int, num_parties: int) -> int:
    """Total bits per packed slot: ``r + b`` (Eq. 8)."""
    return r_bits + overflow_bits_for(num_parties)


@dataclass(frozen=True)
class QuantizationScheme:
    """The secure encoding-quantization of Eqs. 6-8.

    Attributes:
        alpha: Gradient bound; values are clipped into ``[-alpha, alpha]``.
        r_bits: Value bits ``r`` (Eq. 7).
        num_parties: Participant count ``p``; fixes the overflow bits
            ``b = ceil(log2 p)`` (Eq. 8).
    """

    alpha: float = 1.0
    r_bits: int = DEFAULT_QUANTIZATION_BITS
    num_parties: int = 2
    overflow_bits: int = field(init=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.r_bits < 2:
            raise ValueError("need at least 2 quantization bits")
        if self.num_parties < 1:
            raise ValueError("need at least one participant")
        object.__setattr__(self, "overflow_bits",
                           overflow_bits_for(self.num_parties))

    @property
    def slot_bits(self) -> int:
        """Total bits per encoded value: ``b + r`` (Eq. 8)."""
        return slot_bits_for(self.r_bits, self.num_parties)

    @property
    def scale(self) -> float:
        """Fixed-point scale: encoded units per real unit."""
        return (2 ** self.r_bits - 1) / (2 * self.alpha)

    @property
    def max_encoded(self) -> int:
        """Largest single encoding: ``2^r - 1``."""
        return 2 ** self.r_bits - 1

    @property
    def quantization_step(self) -> float:
        """Real-valued width of one quantization level."""
        return 1.0 / self.scale

    # ------------------------------------------------------------------
    # Scalar interface.
    # ------------------------------------------------------------------

    def encode(self, value: float) -> int:
        """Encode one gradient into an unsigned ``r``-bit integer."""
        clipped = min(max(value, -self.alpha), self.alpha)
        translated = clipped + self.alpha                     # Eq. 6
        return int(round(translated * self.scale))            # Eq. 7

    def decode(self, encoded: int) -> float:
        """Invert :meth:`encode` for a single (non-aggregated) value."""
        return self.decode_sum(encoded, count=1)

    def decode_sum(self, encoded_sum: int, count: int) -> float:
        """Decode the sum of ``count`` encodings into the sum of values.

        Each encoding carries a ``+alpha`` translation, so the aggregate
        carries ``count * alpha``.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if count > 2 ** self.overflow_bits:
            raise OverflowError(
                f"{count} participants exceed the {self.overflow_bits} "
                f"reserved overflow bits")
        return encoded_sum / self.scale - count * self.alpha

    # ------------------------------------------------------------------
    # Vector interface (the hot path for gradient arrays).
    # ------------------------------------------------------------------

    def encode_array(self, values: np.ndarray) -> List[int]:
        """Encode a float array into Python-int encodings."""
        clipped = np.clip(np.asarray(values, dtype=np.float64),
                          -self.alpha, self.alpha)
        scaled = np.rint((clipped + self.alpha) * self.scale)
        return [int(v) for v in scaled]

    def decode_array(self, encoded: Sequence[int],
                     count: int = 1) -> np.ndarray:
        """Decode encodings (or slot-wise sums of ``count`` encodings)."""
        if count < 1:
            raise ValueError("count must be at least 1")
        values = np.asarray([float(e) for e in encoded], dtype=np.float64)
        return values / self.scale - count * self.alpha


@dataclass(frozen=True)
class LegacyFloatEncoding:
    """The insecure ``(encrypt(significand), exponent)`` scheme.

    Existing FL stacks quantize by encrypting only the significand and
    shipping the exponent in plaintext (Sec. IV-B).  The exponent reveals
    the approximate magnitude of every gradient -- the leak the paper's
    encoding-quantization closes.  Provided for the security comparison
    and the migration examples.
    """

    significand_bits: int = 53

    def encode(self, value: float) -> Tuple[int, int]:
        """Split into ``(significand_int, plaintext_exponent)``.

        The significand integer is what gets encrypted; the exponent is
        transmitted in the clear (the leak).
        """
        if value == 0:
            return 0, 0
        mantissa, exponent = math.frexp(abs(value))
        significand = int(mantissa * (1 << self.significand_bits))
        if value < 0:
            # Sign folded into the significand -- but the *exponent* still
            # leaks magnitude regardless.
            significand = (1 << (self.significand_bits + 1)) - significand
        return significand, exponent

    def decode(self, significand: int, exponent: int) -> float:
        """Invert :meth:`encode`."""
        if significand == 0 and exponent == 0:
            return 0.0
        sign_bound = 1 << self.significand_bits
        if significand >= sign_bound:
            mantissa = -((1 << (self.significand_bits + 1)) - significand)
        else:
            mantissa = significand
        return math.ldexp(mantissa / sign_bound, exponent)

    def leaked_bits(self, value: float) -> int:
        """What an adversary learns: the plaintext exponent."""
        return self.encode(value)[1]

    def magnitude_interval(self, value: float) -> Tuple[float, float]:
        """The open interval ``[2^(e-1), 2^e)`` the leak pins |value| into."""
        exponent = self.leaked_bits(value)
        return (math.ldexp(0.5, exponent), math.ldexp(1.0, exponent))
