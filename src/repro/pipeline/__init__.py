"""Pipelined data processing (paper Sec. V-A, Fig. 4).

Structured wrappers exposing FLBooster's staged data flow -- data
conversion, processing (encode / quantize), compression (pack), GPU
computation, and the return path -- with per-stage timing records the
component-cost benchmark reads.
"""

from repro.pipeline.stages import (
    StageTiming,
    PipelineResult,
    EncryptionPipeline,
    DecryptionPipeline,
    HomomorphicComputePipeline,
)
from repro.pipeline.scheduler import (
    StreamBatch,
    StreamScheduler,
    he_shaped_batches,
)

__all__ = [
    "StageTiming",
    "PipelineResult",
    "EncryptionPipeline",
    "DecryptionPipeline",
    "HomomorphicComputePipeline",
    "StreamBatch",
    "StreamScheduler",
    "he_shaped_batches",
]
