"""The Fig. 4 pipelines as explicit stage sequences.

Each pipeline runs the real mathematics of its phase and records one
:class:`StageTiming` per numbered step of the paper's figure:

- encryption (steps 1-4): load/convert -> encode+quantize -> pad+pack ->
  GPU compute -> convert/return;
- decryption (steps 5-9): load/convert -> GPU compute -> unpack ->
  unquantize+decode -> convert/return;
- homomorphic computation (step 4/5 loop): convert -> GPU compute ->
  convert, with no processing/compression stages (ciphertext in,
  ciphertext out -- exactly as Sec. V-A notes).

Stage seconds come from the same cost model the engines use: GPU stages
read the launches they triggered; host-side stages charge counted integer
work.  The sum of stages equals what the engine would have charged, so the
pipeline view is a decomposition, not a second opinion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.crypto.engine import HeEngine
from repro.federation.metrics import flop_seconds
from repro.quantization.packing import BatchPacker


@dataclass
class StageTiming:
    """Modelled seconds spent in one pipeline stage."""

    name: str
    seconds: float
    items: int


@dataclass
class PipelineResult:
    """Output values plus the per-stage timing breakdown."""

    values: list
    stages: List[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Sum over stages."""
        return sum(stage.seconds for stage in self.stages)

    def stage_seconds(self, name: str) -> float:
        """Seconds of one named stage (0.0 when absent)."""
        return sum(stage.seconds for stage in self.stages
                   if stage.name == name)


class _PipelineBase:
    """Shared engine/packer plumbing for the three pipelines."""

    def __init__(self, engine: HeEngine, packer: BatchPacker):
        self.engine = engine
        self.packer = packer

    def _gpu_stage(self, name: str, items: int, run) -> tuple:
        """Run a callable and attribute its ledger delta to one stage."""
        before = self.engine.ledger.total_seconds
        values = run()
        seconds = self.engine.ledger.total_seconds - before
        return values, StageTiming(name=name, seconds=seconds, items=items)

    @staticmethod
    def _host_stage(name: str, items: int,
                    flops_per_item: float) -> StageTiming:
        return StageTiming(name=name,
                           seconds=flop_seconds(flops_per_item * items),
                           items=items)


class EncryptionPipeline(_PipelineBase):
    """Fig. 4 steps 1-4: gradients in, ciphertexts out."""

    def run(self, gradients: np.ndarray) -> PipelineResult:
        """Encrypt a gradient array through the staged pipeline."""
        flat = np.asarray(gradients, dtype=np.float64).ravel()
        result = PipelineResult(values=[])
        result.stages.append(self._host_stage(
            "data_conversion", len(flat), flops_per_item=2.0))

        encoded = self.packer.scheme.encode_array(flat)
        result.stages.append(self._host_stage(
            "encode_quantize", len(encoded), flops_per_item=3.0))

        words = self.packer.pack(encoded)
        result.stages.append(self._host_stage(
            "pad_pack", len(encoded), flops_per_item=2.0))

        ciphertexts, timing = self._gpu_stage(
            "gpu_compute", len(words),
            lambda: self.engine.encrypt_batch(words))
        result.stages.append(timing)

        result.stages.append(self._host_stage(
            "return_conversion", len(ciphertexts), flops_per_item=1.0))
        result.values = ciphertexts
        return result


class DecryptionPipeline(_PipelineBase):
    """Fig. 4 steps 5-9: ciphertexts in, gradients out."""

    def run(self, ciphertexts: Sequence[int], count: int,
            summands: int = 1) -> PipelineResult:
        """Decrypt packed ciphertexts through the staged pipeline.

        Args:
            ciphertexts: Packed ciphertext words.
            count: Number of real values inside.
            summands: Slot-wise summand count for offset correction.
        """
        result = PipelineResult(values=[])
        result.stages.append(self._host_stage(
            "data_conversion", len(ciphertexts), flops_per_item=1.0))

        words, timing = self._gpu_stage(
            "gpu_compute", len(ciphertexts),
            lambda: self.engine.decrypt_batch(list(ciphertexts)))
        result.stages.append(timing)

        encoded = self.packer.unpack(words, count)
        result.stages.append(self._host_stage(
            "unpack", count, flops_per_item=2.0))

        decoded = self.packer.scheme.decode_array(encoded, count=summands)
        result.stages.append(self._host_stage(
            "unquantize_decode", count, flops_per_item=3.0))

        result.stages.append(self._host_stage(
            "return_conversion", count, flops_per_item=2.0))
        result.values = list(decoded)
        return result


class HomomorphicComputePipeline(_PipelineBase):
    """Fig. 4 homomorphic phase: ciphertexts in, ciphertexts out.

    No processing or compression stages -- "the raw data and the result
    are both ciphertexts" (Sec. V-A).
    """

    def run_addition(self, c1: Sequence[int],
                     c2: Sequence[int]) -> PipelineResult:
        """Element-wise homomorphic addition of two ciphertext arrays."""
        result = PipelineResult(values=[])
        result.stages.append(self._host_stage(
            "data_conversion", len(c1), flops_per_item=1.0))

        values, timing = self._gpu_stage(
            "gpu_compute", len(c1),
            lambda: self.engine.add_batch(list(c1), list(c2)))
        result.stages.append(timing)

        result.stages.append(self._host_stage(
            "return_conversion", len(values), flops_per_item=1.0))
        result.values = values
        return result
