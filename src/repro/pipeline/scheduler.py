"""Stream-pipeline scheduler (paper Sec. V, Fig. 4's overlapping).

FLBooster overlaps host-to-device copies, kernel compute, and
device-to-host copies across batches using CUDA streams.  This module
simulates that three-resource pipeline explicitly:

- one H2D copy engine, one compute engine, one D2H copy engine
  (the RTX 3090's dual copy engines + SMs);
- at most ``depth`` batches in flight (stream count);
- within each resource, batches execute in order.

``makespan`` is the end-to-end time of a batch sequence;
``overlap_efficiency`` reports how much of the transfer time the pipeline
hides.  The cost model's ``transfer_overlap_managed = 0.9`` and
``pipeline_depth_managed = 8`` constants are the steady-state outputs of
this simulation for HE-shaped batches (asserted by the tests), while the
unmanaged baseline (``depth = 1``) hides nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class StreamBatch:
    """One pipelined unit of work: copy in, compute, copy out."""

    h2d_seconds: float
    compute_seconds: float
    d2h_seconds: float

    def __post_init__(self) -> None:
        for value in (self.h2d_seconds, self.compute_seconds,
                      self.d2h_seconds):
            if value < 0:
                raise ValueError("stage durations must be non-negative")

    @property
    def serial_seconds(self) -> float:
        """Unpipelined duration of this batch."""
        return self.h2d_seconds + self.compute_seconds + self.d2h_seconds


class StreamScheduler:
    """Simulates ``depth`` streams over the three-engine pipeline.

    Args:
        depth: Maximum batches in flight (1 = fully serial, the
            unmanaged baseline).
    """

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = depth

    def makespan(self, batches: Sequence[StreamBatch]) -> float:
        """End-to-end seconds for the batch sequence under pipelining.

        List-scheduling simulation: batch ``i`` may start its H2D once
        batch ``i - depth`` has fully drained (stream reuse), each
        resource serializes its own queue, and stages within a batch are
        ordered H2D -> compute -> D2H.
        """
        if not batches:
            return 0.0
        h2d_free = 0.0
        compute_free = 0.0
        d2h_free = 0.0
        done: List[float] = []
        for index, batch in enumerate(batches):
            stream_ready = 0.0
            if index >= self.depth:
                stream_ready = done[index - self.depth]
            h2d_start = max(h2d_free, stream_ready)
            h2d_end = h2d_start + batch.h2d_seconds
            h2d_free = h2d_end
            compute_start = max(compute_free, h2d_end)
            compute_end = compute_start + batch.compute_seconds
            compute_free = compute_end
            d2h_start = max(d2h_free, compute_end)
            d2h_end = d2h_start + batch.d2h_seconds
            d2h_free = d2h_end
            done.append(d2h_end)
        return done[-1]

    def serial_makespan(self, batches: Sequence[StreamBatch]) -> float:
        """Unpipelined total (the depth-1 lower bound on overlap)."""
        return sum(batch.serial_seconds for batch in batches)

    def overlap_efficiency(self, batches: Sequence[StreamBatch]) -> float:
        """Fraction of transfer time the pipeline hides.

        1.0 means every copy ran entirely under compute; 0.0 means the
        schedule is as slow as the serial one.
        """
        transfer = sum(batch.h2d_seconds + batch.d2h_seconds
                       for batch in batches)
        if transfer == 0:
            return 1.0
        saved = self.serial_makespan(batches) - self.makespan(batches)
        return min(max(saved / transfer, 0.0), 1.0)


def he_shaped_batches(count: int, transfer_fraction: float = 0.05,
                      compute_seconds: float = 1.0e-3) -> List[StreamBatch]:
    """Batches shaped like batched HE kernels.

    HE kernels are strongly compute-bound (ciphertext transfers are tiny
    next to modular exponentiation); ``transfer_fraction`` sets the
    per-side copy time relative to compute.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    transfer = compute_seconds * transfer_fraction
    return [StreamBatch(h2d_seconds=transfer,
                        compute_seconds=compute_seconds,
                        d2h_seconds=transfer)
            for _ in range(count)]
