"""FLBooster reproduction: unified and efficient FL acceleration.

A from-scratch Python reproduction of *FLBooster: A Unified and Efficient
Platform for Federated Learning Acceleration* (Zeng et al., ICDE 2023):
GPU-parallel Paillier homomorphic encryption (simulated device, real
mathematics), secure encoding-quantization, batch compression, a FATE-like
federation substrate, the four benchmark FL models, and the FATE / HAFLO
baselines -- plus a benchmark harness regenerating every table and figure
of the paper's evaluation.

Quick start::

    from repro import FlBooster
    fl = FlBooster()
    pri, pub = fl.paillier.key_gen(1024)
    c = fl.paillier.encrypt(pub, [1, 2, 3])
    fl.paillier.decrypt(pri, fl.paillier.add(pub, c, c))   # [2, 4, 6]

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-versus-measured results.
"""

from repro.api import FlBooster, ArrayOps, PaillierApi, RsaApi
from repro.crypto import Paillier, Rsa
from repro.federation.faults import (
    FaultPlan,
    QuorumError,
    RetryPolicy,
)
from repro.federation.runtime import (
    FederationRuntime,
    SystemConfig,
    FATE_SYSTEM,
    HAFLO_SYSTEM,
    FLBOOSTER_SYSTEM,
)
from repro.ledger import CostLedger
from repro.quantization import QuantizationScheme, BatchPacker

__version__ = "1.0.0"

__all__ = [
    "FlBooster",
    "ArrayOps",
    "PaillierApi",
    "RsaApi",
    "Paillier",
    "Rsa",
    "FaultPlan",
    "QuorumError",
    "RetryPolicy",
    "FederationRuntime",
    "SystemConfig",
    "FATE_SYSTEM",
    "HAFLO_SYSTEM",
    "FLBOOSTER_SYSTEM",
    "CostLedger",
    "QuantizationScheme",
    "BatchPacker",
    "__version__",
]
