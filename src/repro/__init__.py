"""FLBooster reproduction: unified and efficient FL acceleration.

A from-scratch Python reproduction of *FLBooster: A Unified and Efficient
Platform for Federated Learning Acceleration* (Zeng et al., ICDE 2023):
GPU-parallel Paillier homomorphic encryption (simulated device, real
mathematics), secure encoding-quantization, batch compression, a FATE-like
federation substrate, the four benchmark FL models, and the FATE / HAFLO
baselines -- plus a benchmark harness regenerating every table and figure
of the paper's evaluation.

Quick start::

    from repro import FlBooster
    fl = FlBooster()
    pri, pub = fl.paillier.key_gen(1024)
    c = fl.paillier.encrypt(pub, [1, 2, 3])
    fl.paillier.decrypt(pri, fl.paillier.add(pub, c, c))   # [2, 4, 6]

Top-level exports resolve lazily (PEP 562): importing ``repro`` -- or any
numpy-free subpackage such as :mod:`repro.mpint` -- does not pull in the
tensor/quantization stack, so the multiprecision substrate stays usable
on installs without numpy.  ``from repro import FlBooster`` works exactly
as before; it just resolves on first access.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-versus-measured results.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Lazy export table: public name -> defining module.
_EXPORTS = {
    "FlBooster": "repro.api",
    "ArrayOps": "repro.api",
    "PaillierApi": "repro.api",
    "RsaApi": "repro.api",
    "Paillier": "repro.crypto",
    "Rsa": "repro.crypto",
    "FaultPlan": "repro.federation.faults",
    "QuorumError": "repro.federation.faults",
    "RetryPolicy": "repro.federation.faults",
    "FederationRuntime": "repro.federation.runtime",
    "SystemConfig": "repro.federation.runtime",
    "FATE_SYSTEM": "repro.federation.runtime",
    "HAFLO_SYSTEM": "repro.federation.runtime",
    "FLBOOSTER_SYSTEM": "repro.federation.runtime",
    "CostLedger": "repro.ledger",
    "QuantizationScheme": "repro.quantization",
    "BatchPacker": "repro.quantization",
}

__all__ = list(_EXPORTS) + ["__version__"]

if TYPE_CHECKING:  # pragma: no cover - import-time types for tooling
    from repro.api import FlBooster, ArrayOps, PaillierApi, RsaApi
    from repro.crypto import Paillier, Rsa
    from repro.federation.faults import FaultPlan, QuorumError, RetryPolicy
    from repro.federation.runtime import (
        FederationRuntime,
        SystemConfig,
        FATE_SYSTEM,
        HAFLO_SYSTEM,
        FLBOOSTER_SYSTEM,
    )
    from repro.ledger import CostLedger
    from repro.quantization import QuantizationScheme, BatchPacker


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
