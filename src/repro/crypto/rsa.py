"""Textbook RSA with its multiplicative homomorphism (paper Table I).

FLBooster's API layer exposes ``RSA::key_gen / encrypt / decrypt / mul``;
the multiplicative property ``E(m1) * E(m2) = E(m1 * m2) mod n`` is what
private-set-intersection style FL pre-processing uses.  Textbook (unpadded)
RSA is intentional here -- padding would destroy the homomorphism -- and
callers must treat it as a homomorphic primitive, not general encryption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import (
    RsaKeypair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_rsa_keypair,
)
from repro.mpint.primes import LimbRandom


class Rsa:
    """Namespace of RSA primitives over raw integers (paper Table I)."""

    @staticmethod
    def key_gen(key_bits: int, rng: Optional[LimbRandom] = None) -> RsaKeypair:
        """Generate a keypair (paper: ``RSA::key_gen(size)``)."""
        return generate_rsa_keypair(key_bits, rng=rng)

    @staticmethod
    def raw_encrypt(public_key: RsaPublicKey, plaintext: int) -> int:
        """Encrypt: ``m^e mod n``."""
        if not 0 <= plaintext < public_key.n:
            raise ValueError(f"plaintext {plaintext} outside [0, {public_key.n})")
        return pow(plaintext, public_key.e, public_key.n)

    @staticmethod
    def raw_decrypt(private_key: RsaPrivateKey, ciphertext: int) -> int:
        """Decrypt: ``c^d mod n``."""
        public = private_key.public_key
        if not 0 <= ciphertext < public.n:
            raise ValueError("ciphertext outside Z_n")
        return pow(ciphertext, private_key.d, public.n)

    @staticmethod
    def raw_mul(public_key: RsaPublicKey, c1: int, c2: int) -> int:
        """Homomorphic multiplication: ``E(m1) * E(m2) = E(m1 m2)``."""
        return (c1 * c2) % public_key.n

    # Ergonomic wrappers -------------------------------------------------

    @staticmethod
    def encrypt(public_key: RsaPublicKey, plaintext: int) -> "RsaCiphertext":
        """Encrypt into an :class:`RsaCiphertext` wrapper."""
        return RsaCiphertext(value=Rsa.raw_encrypt(public_key, plaintext),
                             public_key=public_key)

    @staticmethod
    def decrypt(private_key: RsaPrivateKey,
                ciphertext: "RsaCiphertext") -> int:
        """Decrypt a wrapped ciphertext."""
        return Rsa.raw_decrypt(private_key, ciphertext.value)

    @staticmethod
    def mul(public_key: RsaPublicKey, c1: "RsaCiphertext",
            c2: "RsaCiphertext") -> "RsaCiphertext":
        """Homomorphic multiplication of wrapped ciphertexts."""
        return RsaCiphertext(
            value=Rsa.raw_mul(public_key, c1.value, c2.value),
            public_key=public_key)


@dataclass(frozen=True)
class RsaCiphertext:
    """An RSA ciphertext bound to its public key; supports ``*``."""

    value: int
    public_key: RsaPublicKey

    def __mul__(self, other) -> "RsaCiphertext":
        if not isinstance(other, RsaCiphertext):
            return NotImplemented
        if other.public_key != self.public_key:
            raise ValueError("cannot multiply ciphertexts under different keys")
        return RsaCiphertext(
            value=Rsa.raw_mul(self.public_key, self.value, other.value),
            public_key=self.public_key)

    def serialized_bytes(self) -> int:
        """Byte size of this ciphertext on the wire."""
        return self.public_key.ciphertext_bytes()
