"""Vectorized limb-plane Paillier engine (``vector-paillier``).

The third CPU-side execution path, next to the scalar
:class:`~repro.crypto.cpu_engine.CpuPaillierEngine` and the simulated
:class:`~repro.crypto.gpu_engine.GpuPaillierEngine`: every batch
operation runs on ``(num_limbs, batch)`` uint64 limb planes via
:mod:`repro.mpint.limb_plane`, with the classic Paillier production
optimizations stacked on top --

- CRT-split decryption (half-size mod-``p^2``/mod-``q^2``
  exponentiations recombined via Garner),
- the binomial ``1 + m n`` shortcut (or a fixed-base window table for
  arbitrary generators) for ``g^m``, and
- an amortized :class:`~repro.crypto.engine.RandomizerPool` of
  precomputed ``r^n`` obfuscators, refilled batched from the engine's
  routed rng stream.

The engine draws randomizers in exactly the scalar order (one per
plaintext, sequentially), so its ciphertexts are bit-identical to the
scalar engines and the plain-``pow()`` reference under a shared seed --
which is what lets the conformance matrix diff-test it for free.

numpy is optional: this module imports cleanly without it and then
*deregisters* itself from the conformance registry instead of
registering, so the oracle's matrix never names an unusable path.
Constructing the engine without numpy raises.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.crypto.engine import HeEngine
from repro.crypto.keys import PaillierKeypair
from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.ledger import (
    CAT_HE_ADD,
    CAT_HE_DECRYPT,
    CAT_HE_ENCRYPT,
    CAT_HE_SCALAR_MUL,
    CostLedger,
)
from repro.mpint import limb_plane
from repro.mpint.primes import LimbRandom

#: Default obfuscator pool size.  The amortized pool is part of this
#: engine's design point (the r^n exponentiation is the whole cost of
#: an encryption); pass ``randomizer_pool_size=0`` for fully fresh
#: randomizers on every value (full cryptographic hygiene -- the
#: conformance factory runs this way so randomizer streams align with
#: the reference for traces of any length).
DEFAULT_POOL_SIZE = 64


class VectorPaillierEngine(HeEngine):
    """Batched limb-plane execution of Paillier on the CPU via numpy.

    Args:
        keypair: Paillier keys.
        profile: Hardware constants for time charging (the modelled
            costs match the scalar CPU engine: same ops, same charged
            category -- only the physical wall-clock differs).
        nominal_bits: Charged key size (defaults to physical).
        ledger: Shared cost ledger.
        rng: Randomizer source (the engine's routed stream).
        randomizer_pool_size: Amortized ``r^n`` pool size; ``0``
            disables pooling.
    """

    def __init__(self, keypair: PaillierKeypair,
                 profile: HardwareProfile = DEFAULT_PROFILE,
                 nominal_bits: Optional[int] = None,
                 ledger: Optional[CostLedger] = None,
                 rng: Optional[LimbRandom] = None,
                 randomizer_pool_size: int = DEFAULT_POOL_SIZE):
        limb_plane.require_numpy()
        # Imported lazily: repro.crypto.vector_math is numpy-optional,
        # but the classes below require numpy at construction time.
        from repro.crypto.vector_math import CrtDecryptor, VectorEncryptor
        super().__init__(keypair, nominal_bits=nominal_bits, ledger=ledger,
                         rng=rng, randomizer_pool_size=randomizer_pool_size)
        self.profile = profile
        self._encryptor = VectorEncryptor(self.public_key)
        self._decryptor = CrtDecryptor(self.private_key)
        self._plane = self._encryptor.plane

    # ------------------------------------------------------------------
    # Batch operations.
    # ------------------------------------------------------------------

    def encrypt_batch(self, plaintexts: Sequence[int]) -> List[int]:
        """Encrypt the whole batch with one limb-plane launch chain."""
        self._check_plaintexts(plaintexts)
        count = len(plaintexts)
        if count == 0:
            return []
        obfuscators = self._obfuscator_plane(count)
        results = self._encryptor.finish(plaintexts, obfuscators)
        self._charge(CAT_HE_ENCRYPT, count,
                     self.profile.words_per_encrypt(self.nominal_bits))
        self.report.encryptions += count
        return results

    def decrypt_batch(self, ciphertexts: Sequence[int]) -> List[int]:
        """CRT-split batched decryption."""
        results = self._decryptor.decrypt(ciphertexts)
        self._charge(CAT_HE_DECRYPT, len(ciphertexts),
                     self.profile.words_per_decrypt(self.nominal_bits))
        self.report.decryptions += len(ciphertexts)
        return results

    def add_batch(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        """Homomorphic addition: one batched modular multiplication."""
        if len(c1) != len(c2):
            raise ValueError("ciphertext batches differ in length")
        if not c1:
            return []
        plane = self._plane
        a = limb_plane.ints_to_plane(list(c1), plane.num_limbs)
        b = limb_plane.ints_to_plane(list(c2), plane.num_limbs)
        results = limb_plane.plane_to_ints(plane.mod_mul(a, b))
        self._charge(CAT_HE_ADD, len(c1),
                     self.profile.words_per_homomorphic_add(self.nominal_bits))
        self.report.additions += len(c1)
        return results

    def scalar_mul_batch(self, ciphertexts: Sequence[int],
                         scalars: Sequence[int]) -> List[int]:
        """Per-column square-and-multiply across the batch."""
        if len(ciphertexts) != len(scalars):
            raise ValueError("ciphertext and scalar batches differ in length")
        if not ciphertexts:
            return []
        for scalar in scalars:
            if scalar < 0:
                raise ValueError("negative scalars require encoding; use "
                                 "the quantization layer")
        plane = self._plane
        base = limb_plane.ints_to_plane(list(ciphertexts), plane.num_limbs)
        results = limb_plane.plane_to_ints(plane.pow_vary(base, scalars))
        self._charge(CAT_HE_SCALAR_MUL, len(ciphertexts),
                     self.profile.words_per_scalar_mul(self.nominal_bits))
        self.report.scalar_muls += len(ciphertexts)
        return results

    # ------------------------------------------------------------------
    # Obfuscators.
    # ------------------------------------------------------------------

    def _pool_exponentiate(self) -> Optional[Callable]:
        """Pool refills run the batched limb-plane modexp."""
        return self._encryptor.randomizer_powers

    def _obfuscator_plane(self, count: int):
        """``r^n`` per plaintext as a plane, honoring pool semantics.

        Randomizers are always drawn sequentially from ``self.rng`` --
        ``count`` draws without pooling, ``pool_size`` draws at first
        refill with pooling -- matching the scalar engines draw for
        draw.
        """
        n = self.public_key.n
        if self._randomizer_pool is None:
            randomizers = [self.rng.random_unit(n) for _ in range(count)]
            return self._encryptor.randomizer_powers_plane(randomizers)
        if not self._randomizer_pool.filled:
            self._randomizer_pool.fill(
                self.rng, n, self.public_key.n_squared,
                exponentiate=self._pool_exponentiate())
        powers = self._randomizer_pool.take(count)
        return limb_plane.ints_to_plane(powers, self._plane.num_limbs)

    def _charge(self, category: str, ops: int, words_per_op: int) -> None:
        seconds = self.profile.cpu_seconds(ops, words_per_op)
        self.ledger.charge(category, seconds, count=ops)
        self.report.modelled_seconds += seconds


# ----------------------------------------------------------------------
# Conformance registration (differential oracle, repro.testing).
# ----------------------------------------------------------------------

def _vector_conformance_factory(trace):
    """Limb-plane Paillier vs the textbook ``pow()`` reference."""
    from repro.crypto.keys import generate_paillier_keypair
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import HeEngineParty
    from repro.testing.reference import PaillierReference
    keypair = generate_paillier_keypair(
        trace.key_bits, rng=LimbRandom(seed=trace.seed))
    engine = VectorPaillierEngine(keypair,
                                  rng=LimbRandom(seed=trace.seed + 1),
                                  randomizer_pool_size=0)
    reference = PaillierReference(keypair, seed=trace.seed + 1)
    return ConformancePair(party=HeEngineParty(engine),
                           reference=reference)


_vector_conformance_factory.capabilities = frozenset(
    {"encrypt", "decrypt", "add", "scalar_mul"})

if limb_plane.HAVE_NUMPY:
    HeEngine.register_conformance("vector-paillier",
                                  _vector_conformance_factory)
else:  # pragma: no cover - exercised by the no-numpy degradation tests
    # Graceful degradation: importing this module must never leave a
    # stale registration behind when the array backend is unavailable.
    HeEngine.deregister_conformance("vector-paillier")
