"""Key material for the Paillier and RSA cryptosystems (paper Sec. III-B).

Key generation follows the paper exactly: two large primes ``p`` and ``q``
of equal length from the Miller-Rabin generator, ``n = p * q``,
``lambda = lcm(p - 1, q - 1)``, and a generator ``g`` in ``Z*_{n^2}``.
The default generator is ``g = n + 1``, the standard choice that turns
``g^m`` into the single multiplication ``1 + m n``; arbitrary generators
are supported for faithfulness to Eq. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.mpint.primes import LimbRandom, generate_distinct_primes


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key ``(g, n)``.

    Attributes:
        n: The modulus ``p * q``.
        g: Generator in ``Z*_{n^2}``; ``n + 1`` unless specified.
        key_bits: Bit length of ``n`` at generation time.
    """

    n: int
    g: int
    key_bits: int

    @property
    def n_squared(self) -> int:
        """The ciphertext modulus ``n^2``."""
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        """Largest representable plaintext (exclusive bound is ``n``)."""
        return self.n - 1

    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (an element of ``Z_{n^2}``)."""
        return -(-self.n_squared.bit_length() // 8)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key ``(p, q)`` with the derived constants.

    Besides the textbook ``(lambda, mu)`` of Eq. 4, the key precomputes
    the CRT constants (``hp``, ``hq``, ``q^-1 mod p``) that let
    decryption run two half-size exponentiations instead of one full-size
    one -- the standard production-Paillier optimization.
    """

    p: int
    q: int
    public_key: PaillierPublicKey
    lam: int = field(init=False)
    mu: int = field(init=False)
    hp: int = field(init=False)
    hq: int = field(init=False)
    q_inverse: int = field(init=False)

    def __post_init__(self) -> None:
        if self.p * self.q != self.public_key.n:
            raise ValueError("private primes do not match the public modulus")
        lam = math.lcm(self.p - 1, self.q - 1)
        n = self.public_key.n
        n_squared = self.public_key.n_squared
        g_lambda = pow(self.public_key.g, lam, n_squared)
        l_value = (g_lambda - 1) // n
        mu = pow(l_value, -1, n)
        object.__setattr__(self, "lam", lam)
        object.__setattr__(self, "mu", mu)
        # CRT constants: hp = L_p(g^(p-1) mod p^2)^-1 mod p, and
        # symmetrically for q.
        p, q = self.p, self.q
        g = self.public_key.g
        p_squared = p * p
        q_squared = q * q
        hp = pow((pow(g, p - 1, p_squared) - 1) // p, -1, p)
        hq = pow((pow(g, q - 1, q_squared) - 1) // q, -1, q)
        object.__setattr__(self, "hp", hp)
        object.__setattr__(self, "hq", hq)
        object.__setattr__(self, "q_inverse", pow(q, -1, p))


@dataclass(frozen=True)
class PaillierKeypair:
    """A generated (public, private) Paillier pair."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey

    def __iter__(self):
        # Matches the paper's API ordering: key_gen(size) -> (pri, pub).
        return iter((self.private_key, self.public_key))


def generate_paillier_keypair(key_bits: int,
                              rng: Optional[LimbRandom] = None,
                              generator: Optional[int] = None) -> PaillierKeypair:
    """Generate a Paillier keypair of ``key_bits`` modulus length.

    Args:
        key_bits: Target bit length of ``n``; each prime gets half.
        rng: Deterministic random source (per-thread generator).
        generator: Explicit ``g``; defaults to ``n + 1``.
    """
    if key_bits < 16:
        raise ValueError("key_bits must be at least 16")
    if rng is None:
        rng = LimbRandom()
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        n = p * q
        # gcd(n, (p-1)(q-1)) == 1 holds for equal-length primes, but the
        # check is cheap and guards tiny test keys.
        if math.gcd(n, (p - 1) * (q - 1)) == 1:
            break
    g = generator if generator is not None else n + 1
    if math.gcd(g % (n * n), n) != 1 and g % n == 0:
        raise ValueError("generator must be a unit modulo n^2")
    public = PaillierPublicKey(n=n, g=g, key_bits=key_bits)
    private = PaillierPrivateKey(p=p, q=q, public_key=public)
    return PaillierKeypair(public_key=public, private_key=private)


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(e, n)``."""

    n: int
    e: int
    key_bits: int

    def ciphertext_bytes(self) -> int:
        """Serialized size of one RSA ciphertext."""
        return -(-self.n.bit_length() // 8)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key ``d`` with its public counterpart."""

    d: int
    public_key: RsaPublicKey


@dataclass(frozen=True)
class RsaKeypair:
    """A generated (public, private) RSA pair."""

    public_key: RsaPublicKey
    private_key: RsaPrivateKey

    def __iter__(self):
        return iter((self.private_key, self.public_key))


#: Standard RSA public exponent.
RSA_PUBLIC_EXPONENT = 65537


def generate_rsa_keypair(key_bits: int,
                         rng: Optional[LimbRandom] = None,
                         public_exponent: int = RSA_PUBLIC_EXPONENT) -> RsaKeypair:
    """Generate a textbook-RSA keypair (multiplicatively homomorphic)."""
    if key_bits < 16:
        raise ValueError("key_bits must be at least 16")
    if rng is None:
        rng = LimbRandom()
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        phi = (p - 1) * (q - 1)
        if math.gcd(public_exponent, phi) == 1:
            break
    n = p * q
    d = pow(public_exponent, -1, phi)
    public = RsaPublicKey(n=n, e=public_exponent, key_bits=key_bits)
    return RsaKeypair(public_key=public,
                      private_key=RsaPrivateKey(d=d, public_key=public))
