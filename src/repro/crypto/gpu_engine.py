"""GPU Paillier engine: the HAFLO / FLBooster path (paper Sec. IV-A3).

Batches are executed by the simulated GPU kernels: encryption is the
``g^m`` multiplication plus an ``r^n`` exponentiation kernel and a final
modular-multiplication kernel; decryption is the ``c^lambda`` kernel
followed by the ``L``-function and a ``mu`` multiplication kernel;
homomorphic addition is one modular-multiplication kernel.

Whether this engine models HAFLO or FLBooster is decided by the resource
manager it is given: ``managed=False`` reproduces HAFLO's fixed launch
geometry and divergent branches, ``managed=True`` the paper's resource
manager (Sec. IV-A2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.engine import HeEngine
from repro.crypto.keys import PaillierKeypair
from repro.crypto.paillier import Paillier
from repro.gpu.kernels import GpuKernels
from repro.ledger import (
    CAT_GPU_LAUNCH,
    CAT_HE_ADD,
    CAT_HE_DECRYPT,
    CAT_HE_ENCRYPT,
    CAT_HE_SCALAR_MUL,
    CostLedger,
)
from repro.mpint.primes import LimbRandom


class GpuPaillierEngine(HeEngine):
    """Batched Paillier on the simulated GPU.

    Args:
        keypair: Paillier keys.
        kernels: Batched kernel executor (owns device + resource manager).
        nominal_bits: Charged key size (defaults to physical).
        ledger: Shared cost ledger.
        rng: Randomizer source.
    """

    def __init__(self, keypair: PaillierKeypair,
                 kernels: Optional[GpuKernels] = None,
                 nominal_bits: Optional[int] = None,
                 ledger: Optional[CostLedger] = None,
                 rng: Optional[LimbRandom] = None,
                 randomizer_pool_size: int = 0):
        super().__init__(keypair, nominal_bits=nominal_bits, ledger=ledger,
                         rng=rng, randomizer_pool_size=randomizer_pool_size)
        self.kernels = kernels if kernels is not None else GpuKernels()

    @property
    def _work_bits(self) -> int:
        """Charged modulus size: ciphertexts live modulo ``n^2``."""
        return 2 * self.nominal_bits

    def encrypt_batch(self, plaintexts: Sequence[int]) -> List[int]:
        """Encrypt a batch: ``(1 + m n) * r^n mod n^2`` on the device."""
        self._check_plaintexts(plaintexts)
        if not plaintexts:
            return []
        n = self.public_key.n
        n_squared = self.public_key.n_squared
        with self._charging(CAT_HE_ENCRYPT, len(plaintexts)):
            if self.public_key.g == n + 1:
                g_m = [(1 + m * n) % n_squared for m in plaintexts]
                self.kernels.charge_mod_mul(len(plaintexts),
                                            self._work_bits)
            else:
                g_m = [pow(self.public_key.g, m, n_squared)
                       for m in plaintexts]
                self.kernels.charge_mod_pow(len(plaintexts),
                                            self._work_bits,
                                            self.nominal_bits)
            # Physical r^n values come from the (possibly pooled)
            # randomizer source; the launch is charged at full cost.
            r_n = [self._randomizer_power() for _ in plaintexts]
            self.kernels.charge_mod_pow(len(plaintexts), self._work_bits,
                                        self.nominal_bits)
            results = self.kernels.mod_mul(g_m, r_n, n_squared,
                                           work_bits=self._work_bits)
        self.report.encryptions += len(plaintexts)
        return results

    def decrypt_batch(self, ciphertexts: Sequence[int]) -> List[int]:
        """Decrypt a batch: ``L(c^lambda) * mu mod n`` on the device."""
        if not ciphertexts:
            return []
        with self._charging(CAT_HE_DECRYPT, len(ciphertexts)):
            # Physical values via CRT decryption; the launch is charged as
            # the full c^lambda kernel plus the mu multiplication.
            results = [Paillier.raw_decrypt(self.private_key, c)
                       for c in ciphertexts]
            self.kernels.charge_mod_pow(len(ciphertexts), self._work_bits,
                                        self.nominal_bits)
            self.kernels.charge_mod_mul(len(ciphertexts), self.nominal_bits)
        self.report.decryptions += len(ciphertexts)
        return results

    def add_batch(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        """Homomorphic addition: one modular-multiplication kernel."""
        if len(c1) != len(c2):
            raise ValueError("ciphertext batches differ in length")
        if not c1:
            return []
        with self._charging(CAT_HE_ADD, len(c1)):
            results = self.kernels.mod_mul(
                list(c1), list(c2), self.public_key.n_squared,
                work_bits=self._work_bits)
        self.report.additions += len(c1)
        return results

    def scalar_mul_batch(self, ciphertexts: Sequence[int],
                         scalars: Sequence[int]) -> List[int]:
        """Plaintext-scalar multiplication: a short-exponent kernel."""
        if len(ciphertexts) != len(scalars):
            raise ValueError("ciphertext and scalar batches differ in length")
        if not ciphertexts:
            return []
        for scalar in scalars:
            if scalar < 0:
                raise ValueError("negative scalars require encoding")
        with self._charging(CAT_HE_SCALAR_MUL, len(ciphertexts)):
            results = self.kernels.mod_pow(
                list(ciphertexts), list(scalars), self.public_key.n_squared,
                work_bits=self._work_bits)
        self.report.scalar_muls += len(ciphertexts)
        return results

    def _charging(self, category: str, ops: int):
        """Context manager charging the launches made inside the block."""
        engine = self

        class _Charger:
            def __enter__(self_inner):
                self_inner.start = len(engine.kernels.device.launches)
                return self_inner

            def __exit__(self_inner, exc_type, exc, tb):
                if exc_type is not None:
                    return False
                launches = engine.kernels.device.launches[self_inner.start:]
                seconds = sum(launch.seconds for launch in launches)
                engine.ledger.charge(category, seconds, count=ops)
                if launches:
                    # Launch-count accounting: lets the ledger show how
                    # many kernel launches an epoch spent, so op fusion
                    # (fewer, larger launches) is measurable without
                    # inspecting the device log.
                    engine.ledger.charge(CAT_GPU_LAUNCH, 0.0,
                                         count=len(launches))
                engine.report.modelled_seconds += seconds
                return False

        return _Charger()


# ----------------------------------------------------------------------
# Conformance registration (differential oracle, repro.testing).
# ----------------------------------------------------------------------

def _gpu_conformance_factory(trace):
    """Simulated-GPU Paillier vs the textbook ``pow()`` reference."""
    from repro.crypto.keys import generate_paillier_keypair
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import HeEngineParty
    from repro.testing.reference import PaillierReference
    keypair = generate_paillier_keypair(
        trace.key_bits, rng=LimbRandom(seed=trace.seed))
    engine = GpuPaillierEngine(keypair,
                               rng=LimbRandom(seed=trace.seed + 1))
    reference = PaillierReference(keypair, seed=trace.seed + 1)
    return ConformancePair(party=HeEngineParty(engine),
                           reference=reference)


_gpu_conformance_factory.capabilities = frozenset(
    {"encrypt", "decrypt", "add", "scalar_mul"})
HeEngine.register_conformance("gpu-paillier", _gpu_conformance_factory)
