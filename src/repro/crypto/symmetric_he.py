"""Symmetric additive "HE" schemes and why the paper rejects them.

Sec. II surveys symmetric homomorphic mechanisms (IHC&MRS, MORE, SFHE,
ASHE, FLASHE) and notes that "many of [them] have been proved to be
insecure and vulnerable to attacks".  This module reproduces both sides
of that argument:

- :class:`MaskingScheme` -- a FLASHE/ASHE-style additive one-time-mask
  scheme: ``E(m) = m + k_i (mod 2^b)`` with per-index keystream masks
  that cancel across participants during aggregation.  It is fast and
  additively homomorphic, which is why the systems literature keeps
  proposing it.
- :func:`known_plaintext_attack` -- the standard break when masks are
  reused across rounds: one known (plaintext, ciphertext) pair per index
  recovers the keystream and decrypts every other round.
- :class:`AffineScheme` -- a MORE-style affine cipher ``E(m) = a m + b``;
  :func:`affine_known_plaintext_attack` recovers ``(a, b)`` from two
  known pairs (Vizar & Vaudenay's observation, paper ref. [60]).

These exist for the security comparison and the related-work benchmarks;
the production path stays Paillier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def _keystream(key: bytes, round_index: int, index: int, bits: int) -> int:
    """Deterministic per-(round, index) mask from a shared key."""
    material = hashlib.sha256(
        key + round_index.to_bytes(8, "big") + index.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(material, "big") % (1 << bits)


@dataclass(frozen=True)
class MaskingScheme:
    """FLASHE-style additive masking over ``Z_{2^bits}``.

    Each participant ``i`` of ``p`` holds the shared key; masks are
    constructed so that summing all ``p`` ciphertexts cancels them
    (participant ``i`` adds ``k(round, i) - k(round, i+1 mod p)``).

    Attributes:
        key: Shared symmetric key.
        num_parties: Participant count (mask cancellation ring).
        bits: Word size of the modular ring.
    """

    key: bytes
    num_parties: int
    bits: int = 64

    def mask(self, round_index: int, party: int, index: int) -> int:
        """The ring mask party ``party`` adds at one vector index."""
        forward = _keystream(self.key, round_index,
                             party * 1_000_003 + index, self.bits)
        successor = (party + 1) % self.num_parties
        backward = _keystream(self.key, round_index,
                              successor * 1_000_003 + index, self.bits)
        return (forward - backward) % (1 << self.bits)

    def encrypt(self, values: Sequence[int], round_index: int,
                party: int) -> List[int]:
        """Mask a vector of non-negative integers."""
        modulus = 1 << self.bits
        out = []
        for index, value in enumerate(values):
            if not 0 <= value < modulus:
                raise ValueError(f"value {value} outside the ring")
            out.append((value + self.mask(round_index, party, index))
                       % modulus)
        return out

    def aggregate_decrypt(self, ciphertexts: Sequence[Sequence[int]],
                          round_index: int) -> List[int]:
        """Sum all parties' ciphertexts; the ring masks cancel."""
        if len(ciphertexts) != self.num_parties:
            raise ValueError(
                f"need all {self.num_parties} parties' ciphertexts")
        modulus = 1 << self.bits
        length = len(ciphertexts[0])
        totals = [0] * length
        for vector in ciphertexts:
            if len(vector) != length:
                raise ValueError("ciphertext vectors differ in length")
            for index, value in enumerate(vector):
                totals[index] = (totals[index] + value) % modulus
        return totals


def known_plaintext_attack(scheme_bits: int, known_plaintext: int,
                           known_ciphertext: int,
                           target_ciphertext: int) -> int:
    """Break mask reuse with one known pair.

    If the same mask ``k`` encrypts two messages (mask reuse across
    rounds -- the temptation every "efficient" variant falls into), an
    adversary holding one (m, c) pair computes ``k = c - m`` and strips
    it off any other ciphertext.  Returns the recovered plaintext.
    """
    modulus = 1 << scheme_bits
    recovered_mask = (known_ciphertext - known_plaintext) % modulus
    return (target_ciphertext - recovered_mask) % modulus


@dataclass(frozen=True)
class AffineScheme:
    """MORE-style affine cipher ``E(m) = a m + b mod n`` (insecure)."""

    a: int
    b: int
    n: int

    def __post_init__(self) -> None:
        import math
        if math.gcd(self.a, self.n) != 1:
            raise ValueError("a must be invertible modulo n")

    def encrypt(self, value: int) -> int:
        """``a m + b mod n``."""
        return (self.a * value + self.b) % self.n

    def decrypt(self, ciphertext: int) -> int:
        """Invert the affine map."""
        return ((ciphertext - self.b) * pow(self.a, -1, self.n)) % self.n

    def add(self, c1: int, c2: int) -> int:
        """Additive homomorphism (with a ``b`` correction at decrypt).

        ``E(m1) + E(m2) = a (m1 + m2) + 2b``: summing ``t`` ciphertexts
        needs the aggregator to know ``t`` -- provided here by the
        two-term case.
        """
        return (c1 + c2 - self.b) % self.n


def affine_known_plaintext_attack(
        pairs: Sequence[Tuple[int, int]], modulus: int) -> Tuple[int, int]:
    """Recover ``(a, b)`` of an affine scheme from two known pairs.

    The Vizar-Vaudenay style break (paper ref. [60]): with
    ``c1 = a m1 + b`` and ``c2 = a m2 + b``,
    ``a = (c1 - c2) / (m1 - m2)`` and ``b`` follows.  Raises
    ``ValueError`` when the pairs are degenerate.
    """
    if len(pairs) < 2:
        raise ValueError("need two known plaintext/ciphertext pairs")
    (m1, c1), (m2, c2) = pairs[0], pairs[1]
    delta_m = (m1 - m2) % modulus
    try:
        inverse = pow(delta_m, -1, modulus)
    except ValueError as error:
        raise ValueError("degenerate pairs: m1 - m2 not invertible") \
            from error
    a = ((c1 - c2) * inverse) % modulus
    b = (c1 - a * m1) % modulus
    return a, b


# ----------------------------------------------------------------------
# Conformance registration (differential oracle, repro.testing).
# ----------------------------------------------------------------------

def _masking_conformance_factory(trace):
    """Ring masking vs an independent sha256 re-derivation.

    Ring size is the trace's encrypt count (each encrypt op takes the
    next ring slot), so a full-ring trace decrypts to cancelled masks.
    """
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import MaskingParty
    from repro.testing.reference import MaskingReference
    encrypts = sum(1 for op in trace.ops if op.op == "encrypt")
    num_parties = max(2, encrypts)
    key = hashlib.sha256(
        b"conformance-masking" + trace.seed.to_bytes(8, "big")).digest()[:16]
    scheme = MaskingScheme(key=key, num_parties=num_parties, bits=64)
    party = MaskingParty(scheme)
    reference = MaskingReference(key, num_parties, bits=64,
                                 seed=trace.seed)
    return ConformancePair(party=party, reference=reference)


def _register_masking_conformance() -> None:
    from repro.crypto.engine import HeEngine
    _masking_conformance_factory.capabilities = frozenset(
        {"encrypt", "add", "ring_decrypt"})
    HeEngine.register_conformance("symmetric-masking",
                                  _masking_conformance_factory)


_register_masking_conformance()
