"""CPU Paillier engine: the FATE baseline path.

Operations run one at a time on the CPU; the ledger is charged the modelled
sequential time of an optimized big-integer library at the nominal key size
(the calibration note in :mod:`repro.gpu.cost_model` explains the
constants).  This is the configuration whose HE share of an epoch exceeds
50% in the paper's Fig. 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.engine import HeEngine
from repro.crypto.keys import PaillierKeypair
from repro.crypto.paillier import Paillier
from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.ledger import (
    CAT_HE_ADD,
    CAT_HE_DECRYPT,
    CAT_HE_ENCRYPT,
    CAT_HE_SCALAR_MUL,
    CostLedger,
)
from repro.mpint.primes import LimbRandom


class CpuPaillierEngine(HeEngine):
    """Scalar CPU execution of Paillier batches.

    Args:
        keypair: Paillier keys.
        profile: Hardware constants for time charging.
        nominal_bits: Charged key size (defaults to physical).
        ledger: Shared cost ledger.
        rng: Randomizer source.
    """

    def __init__(self, keypair: PaillierKeypair,
                 profile: HardwareProfile = DEFAULT_PROFILE,
                 nominal_bits: Optional[int] = None,
                 ledger: Optional[CostLedger] = None,
                 rng: Optional[LimbRandom] = None,
                 randomizer_pool_size: int = 0):
        super().__init__(keypair, nominal_bits=nominal_bits, ledger=ledger,
                         rng=rng, randomizer_pool_size=randomizer_pool_size)
        self.profile = profile

    def encrypt_batch(self, plaintexts: Sequence[int]) -> List[int]:
        """Encrypt sequentially, charging per-op CPU time."""
        self._check_plaintexts(plaintexts)
        n = self.public_key.n
        n_squared = self.public_key.n_squared
        results = []
        for m in plaintexts:
            if self.public_key.g == n + 1:
                g_m = (1 + m * n) % n_squared
            else:
                g_m = pow(self.public_key.g, m, n_squared)
            results.append((g_m * self._randomizer_power()) % n_squared)
        self._charge(CAT_HE_ENCRYPT, len(plaintexts),
                     self.profile.words_per_encrypt(self.nominal_bits))
        self.report.encryptions += len(plaintexts)
        return results

    def decrypt_batch(self, ciphertexts: Sequence[int]) -> List[int]:
        """Decrypt sequentially, charging per-op CPU time."""
        results = [Paillier.raw_decrypt(self.private_key, c)
                   for c in ciphertexts]
        self._charge(CAT_HE_DECRYPT, len(ciphertexts),
                     self.profile.words_per_decrypt(self.nominal_bits))
        self.report.decryptions += len(ciphertexts)
        return results

    def add_batch(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        """Homomorphic additions, one modular multiplication each."""
        if len(c1) != len(c2):
            raise ValueError("ciphertext batches differ in length")
        results = [Paillier.raw_add(self.public_key, x, y)
                   for x, y in zip(c1, c2)]
        self._charge(CAT_HE_ADD, len(c1),
                     self.profile.words_per_homomorphic_add(self.nominal_bits))
        self.report.additions += len(c1)
        return results

    def scalar_mul_batch(self, ciphertexts: Sequence[int],
                         scalars: Sequence[int]) -> List[int]:
        """Plaintext-scalar multiplications (short modexp each)."""
        if len(ciphertexts) != len(scalars):
            raise ValueError("ciphertext and scalar batches differ in length")
        results = [Paillier.raw_scalar_mul(self.public_key, c, k)
                   for c, k in zip(ciphertexts, scalars)]
        self._charge(CAT_HE_SCALAR_MUL, len(ciphertexts),
                     self.profile.words_per_scalar_mul(self.nominal_bits))
        self.report.scalar_muls += len(ciphertexts)
        return results

    def _charge(self, category: str, ops: int, words_per_op: int) -> None:
        seconds = self.profile.cpu_seconds(ops, words_per_op)
        self.ledger.charge(category, seconds, count=ops)
        self.report.modelled_seconds += seconds


# ----------------------------------------------------------------------
# Conformance registration (differential oracle, repro.testing).
# ----------------------------------------------------------------------

def _cpu_conformance_factory(trace):
    """CPU Paillier vs the textbook ``pow()`` Paillier reference."""
    from repro.crypto.keys import generate_paillier_keypair
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import HeEngineParty
    from repro.testing.reference import PaillierReference
    keypair = generate_paillier_keypair(
        trace.key_bits, rng=LimbRandom(seed=trace.seed))
    engine = CpuPaillierEngine(keypair,
                               rng=LimbRandom(seed=trace.seed + 1))
    reference = PaillierReference(keypair, seed=trace.seed + 1)
    return ConformancePair(party=HeEngineParty(engine),
                           reference=reference)


_cpu_conformance_factory.capabilities = frozenset(
    {"encrypt", "decrypt", "add", "scalar_mul"})
HeEngine.register_conformance("cpu-paillier", _cpu_conformance_factory)
