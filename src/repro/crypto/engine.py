"""HE engine abstraction: the *where* of homomorphic encryption.

The same Paillier mathematics runs on two execution paths:

- :class:`repro.crypto.cpu_engine.CpuPaillierEngine` -- one operation at a
  time on the CPU (the FATE baseline of the paper's experiments);
- :class:`repro.crypto.gpu_engine.GpuPaillierEngine` -- whole batches on
  the simulated GPU (the HAFLO / FLBooster path).

Engines separate *physical* key size (the modulus the mathematics actually
uses -- real ciphertexts, real decryption) from *nominal* key size (the one
the cost model charges).  Running with ``actual == nominal`` is the
full-fidelity mode used by the correctness tests and the convergence
experiments; the sweep benchmarks run reduced physical keys and charge the
paper's 1024/2048/4096 bits (see DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.crypto.keys import PaillierKeypair
from repro.crypto.paillier import Paillier
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.tensor.cipher import CipherTensor
from repro.tensor.meta import KeyMismatchError, key_fingerprint
from repro.tensor.plain import PlainTensor


@dataclass
class EngineReport:
    """Operation counts and modelled time of one engine's lifetime."""

    encryptions: int = 0
    decryptions: int = 0
    additions: int = 0
    scalar_muls: int = 0
    modelled_seconds: float = 0.0

    @property
    def total_operations(self) -> int:
        """All HE operations performed."""
        return (self.encryptions + self.decryptions
                + self.additions + self.scalar_muls)


#: Conformance registry: engine name -> factory.  A factory takes one
#: :class:`repro.testing.trace.ConformanceTrace` and returns a
#: :class:`repro.testing.conformance.ConformancePair` (the party under
#: test plus its plain-``pow()`` reference).  Factories live here on the
#: engine abstraction so ``repro.testing`` can auto-discover every
#: registered execution path without hard-coding the engine list.
_CONFORMANCE_FACTORIES: Dict[str, Callable] = {}


class RandomizerPool:
    """Amortized pool of precomputed ``r^n mod n^2`` obfuscators.

    The pool holds no randomness of its own: every refill draws its
    randomizers *sequentially from the owning engine's routed rng
    stream* (never module-level or OS state), so two engines seeded
    identically build identical pools and refills are deterministic
    under ``REPRO_TEST_SEED``.  The sequential draw order also matches
    the pool-free path (one draw per encrypted value), which is what
    keeps pooled engines bit-comparable in the conformance oracle while
    the pool has capacity.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.size = size
        self._powers: List[int] = []
        self._cursor = 0

    @property
    def filled(self) -> bool:
        """True once the pool holds precomputed powers."""
        return bool(self._powers)

    def fill(self, rng, n: int, n_squared: int,
             exponentiate: Optional[Callable] = None) -> None:
        """Draw ``size`` randomizers from ``rng`` and raise them to ``n``.

        Args:
            rng: The engine's :class:`~repro.mpint.primes.LimbRandom`.
            n: The public modulus (randomizer exponent).
            n_squared: The ciphertext modulus.
            exponentiate: Optional batch hook mapping the randomizer
                list to ``[r^n mod n^2, ...]``; the vectorized engine
                supplies its limb-plane modexp here.  Draw order is
                identical either way.
        """
        randomizers = [rng.random_unit(n) for _ in range(self.size)]
        if exponentiate is not None:
            self._powers = [int(p) for p in exponentiate(randomizers)]
        else:
            self._powers = [pow(r, n, n_squared) for r in randomizers]
        if len(self._powers) != self.size:
            raise ValueError("exponentiate hook changed the pool size")
        self._cursor = 0

    def take(self, count: int = 1) -> List[int]:
        """The next ``count`` pooled powers, cycling the cursor."""
        if not self._powers:
            raise RuntimeError("pool not filled")
        out = []
        for _ in range(count):
            out.append(self._powers[self._cursor])
            self._cursor = (self._cursor + 1) % len(self._powers)
        return out

    def snapshot(self) -> List[int]:
        """A copy of the pooled powers (regression tests compare these)."""
        return list(self._powers)

    def __len__(self) -> int:
        return len(self._powers)


class HeEngine(ABC):
    """Batch-oriented Paillier engine charging a cost ledger.

    Args:
        keypair: Paillier keys the mathematics runs under.
        nominal_bits: Key size to charge in the cost model; defaults to the
            physical key size (full fidelity).
        ledger: Cost ledger to charge; a private one is created when
            omitted.
        rng: Random source for encryption randomizers.
    """

    def __init__(self, keypair: PaillierKeypair,
                 nominal_bits: Optional[int] = None,
                 ledger: Optional[CostLedger] = None,
                 rng: Optional[LimbRandom] = None,
                 randomizer_pool_size: int = 0):
        self.keypair = keypair
        self.public_key = keypair.public_key
        self.private_key = keypair.private_key
        self.nominal_bits = (nominal_bits if nominal_bits is not None
                             else keypair.public_key.key_bits)
        self.ledger = ledger if ledger is not None else CostLedger()
        self.rng = rng if rng is not None else LimbRandom()
        self.report = EngineReport()
        self.randomizer_pool_size = randomizer_pool_size
        self._randomizer_pool: Optional[RandomizerPool] = (
            RandomizerPool(randomizer_pool_size)
            if randomizer_pool_size > 0 else None)
        self._fingerprint: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Conformance registry (the differential-oracle API).
    # ------------------------------------------------------------------

    @classmethod
    def register_conformance(cls, name: str,
                             factory: Optional[Callable] = None):
        """Register an execution path with the differential oracle.

        Usable directly (``HeEngine.register_conformance("cpu", make)``)
        or as a decorator.  ``factory(trace)`` must return a
        :class:`repro.testing.conformance.ConformancePair`; the pytest
        conformance suite parametrizes over every registered name, so a
        new engine joins the oracle with this one call.
        """
        def _register(fn: Callable) -> Callable:
            _CONFORMANCE_FACTORIES[name] = fn
            return fn
        if factory is not None:
            return _register(factory)
        return _register

    @classmethod
    def deregister_conformance(cls, name: str) -> bool:
        """Remove an engine from the oracle; True when it was present.

        Optional backends (the numpy limb-plane engine) call this so a
        registration never outlives its dependency: when numpy is
        absent the engine is simply not an execution path, and the
        conformance matrix must not parametrize over it.
        """
        return _CONFORMANCE_FACTORIES.pop(name, None) is not None

    @classmethod
    def conformance_factories(cls) -> Dict[str, Callable]:
        """Registered conformance factories by engine name (a copy)."""
        return dict(_CONFORMANCE_FACTORIES)

    # ------------------------------------------------------------------
    # Key geometry.
    # ------------------------------------------------------------------

    @property
    def physical_bits(self) -> int:
        """Bit length the mathematics actually runs at."""
        return self.public_key.key_bits

    @property
    def physical_plaintext_bits(self) -> int:
        """Bits that safely fit in one physical plaintext."""
        return self.public_key.n.bit_length() - 1

    def nominal_ciphertext_bytes(self) -> int:
        """Wire size of one ciphertext at the *charged* key size."""
        return 2 * self.nominal_bits // 8

    def fingerprint(self) -> bytes:
        """16-byte fingerprint of this engine's public key (cached)."""
        if self._fingerprint is None:
            self._fingerprint = key_fingerprint(self.public_key)
        return self._fingerprint

    # ------------------------------------------------------------------
    # Batch operations (implemented by the CPU / GPU engines).
    # ------------------------------------------------------------------

    @abstractmethod
    def encrypt_batch(self, plaintexts: Sequence[int]) -> List[int]:
        """Encrypt a batch of non-negative integers into raw ciphertexts."""

    @abstractmethod
    def decrypt_batch(self, ciphertexts: Sequence[int]) -> List[int]:
        """Decrypt a batch of raw ciphertexts into integers."""

    @abstractmethod
    def add_batch(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        """Element-wise homomorphic addition of two ciphertext batches."""

    @abstractmethod
    def scalar_mul_batch(self, ciphertexts: Sequence[int],
                         scalars: Sequence[int]) -> List[int]:
        """Element-wise plaintext-scalar multiplication of a batch."""

    # ------------------------------------------------------------------
    # Tensor interface.
    # ------------------------------------------------------------------

    def encrypt_tensor(self, plain: PlainTensor) -> CipherTensor:
        """Encrypt an encoded-and-packed :class:`PlainTensor`.

        The resulting :class:`CipherTensor` carries this engine's key
        fingerprint and key geometry in its metadata, so every downstream
        consumer -- including :meth:`decrypt_tensor` -- interprets the
        payload without caller-supplied counts, summands or schemes.
        """
        words = self.encrypt_batch(plain.word_list())
        meta = replace(plain.meta,
                       key_fingerprint=self.fingerprint(),
                       nominal_bits=self.nominal_bits,
                       physical_bits=self.physical_bits)
        return CipherTensor(meta, words=words, engine=self)

    def decrypt_tensor(self, tensor: CipherTensor) -> PlainTensor:
        """Decrypt a :class:`CipherTensor` back into its plain codec form.

        Lazy expressions are flushed (through this engine) first.  Call
        ``.decode()`` on the result for the real-valued array.

        Raises:
            KeyMismatchError: The tensor was encrypted under a different
                key than this engine holds.
        """
        if tensor.meta.key_fingerprint != self.fingerprint():
            raise KeyMismatchError(
                f"tensor encrypted under key "
                f"{tensor.meta.key_fingerprint.hex()[:8]}, engine holds "
                f"{self.fingerprint().hex()[:8]}")
        materialized = tensor.materialize(engine=self)
        words = self.decrypt_batch(list(materialized.words))
        return PlainTensor(words, materialized.meta)

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------

    def sum_ciphertexts(self, ciphertexts: Sequence[int]) -> int:
        """Homomorphically sum a batch into one ciphertext.

        Reduces pairwise with :meth:`add_batch` so the additions are
        charged on this engine's execution path.
        """
        values = list(ciphertexts)
        if not values:
            raise ValueError("cannot sum an empty ciphertext batch")
        while len(values) > 1:
            half = len(values) // 2
            pairs_left = values[:half]
            pairs_right = values[half:2 * half]
            combined = self.add_batch(pairs_left, pairs_right)
            leftovers = values[2 * half:]
            values = combined + leftovers
        return values[0]

    def _check_plaintexts(self, plaintexts: Sequence[int]) -> None:
        bound = self.public_key.n
        for value in plaintexts:
            if not 0 <= value < bound:
                raise ValueError(
                    f"plaintext {value} outside [0, {bound}); encode first")

    def _randomizer_power(self) -> int:
        """Return ``r^n mod n^2`` for a fresh-enough randomizer.

        With ``randomizer_pool_size == 0`` a fresh randomizer is drawn
        and exponentiated every call (full cryptographic hygiene).  A
        positive pool size precomputes that many powers and cycles
        through them -- an experiment-harness speed knob: the *charged*
        cost is unchanged (the cost model always prices a full ``r^n``),
        only the physical Python arithmetic is amortized.
        """
        n = self.public_key.n
        n_squared = self.public_key.n_squared
        if self._randomizer_pool is None:
            r = self.rng.random_unit(n)
            return pow(r, n, n_squared)
        if not self._randomizer_pool.filled:
            self._randomizer_pool.fill(
                self.rng, n, n_squared,
                exponentiate=self._pool_exponentiate())
        return self._randomizer_pool.take(1)[0]

    def _pool_exponentiate(self) -> Optional[Callable]:
        """Batch hook for pool refills; ``None`` keeps scalar ``pow``.

        Engines with a vectorized modexp override this so refills run
        batched while drawing the exact same randomizer sequence.
        """
        return None

    def randomizer_pool_snapshot(self) -> List[int]:
        """The pooled ``r^n`` powers, filling the pool first if needed.

        Empty when pooling is disabled.  Exposed for the determinism
        regression tests: identically seeded engines must agree.
        """
        if self._randomizer_pool is None:
            return []
        if not self._randomizer_pool.filled:
            self._randomizer_pool.fill(
                self.rng, self.public_key.n, self.public_key.n_squared,
                exponentiate=self._pool_exponentiate())
        return self._randomizer_pool.snapshot()

    def _verify_roundtrip(self, plaintext: int) -> bool:
        """Sanity helper: encrypt/decrypt one value outside the ledger."""
        c = Paillier.raw_encrypt(self.public_key, plaintext, rng=self.rng)
        return Paillier.raw_decrypt(self.private_key, c) == plaintext
