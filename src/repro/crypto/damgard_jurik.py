"""Damgard-Jurik generalized Paillier (paper ref. [21]).

The Damgard-Jurik cryptosystem works modulo ``n^(s+1)`` with plaintext
space ``Z_{n^s}``: at ``s = 1`` it *is* Paillier, and larger ``s`` grows
the plaintext space ``s``-fold for roughly the same key.  For FLBooster
this is the natural extension the paper's batch compression points at --
with ``s = 4`` a 1024-bit key packs 4x the gradients of Eq. 9 into one
(larger) ciphertext, trading ciphertext size for ciphertext *count*.

Implementation follows Damgard, Jurik & Nielsen (Int. J. Inf. Sec. 2010):

- encryption: ``E(m) = (1 + n)^m * r^(n^s) mod n^(s+1)``;
- decryption: ``c^d mod n^(s+1)`` with ``d = 1 (mod n^s)``,
  ``d = 0 (mod lambda)``, followed by the paper's iterative discrete-log
  extraction of ``m`` from ``(1 + n)^m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import generate_paillier_keypair
from repro.mpint.primes import LimbRandom


@dataclass(frozen=True)
class DamgardJurikPublicKey:
    """Public key ``(n, s)``: plaintext space ``n^s``."""

    n: int
    s: int
    key_bits: int

    @property
    def plaintext_modulus(self) -> int:
        """``n^s``."""
        return self.n ** self.s

    @property
    def ciphertext_modulus(self) -> int:
        """``n^(s+1)``."""
        return self.n ** (self.s + 1)

    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext."""
        return -(-self.ciphertext_modulus.bit_length() // 8)

    @property
    def plaintext_bits(self) -> int:
        """Usable plaintext bits (for the packing layer)."""
        return self.plaintext_modulus.bit_length() - 1


@dataclass(frozen=True)
class DamgardJurikPrivateKey:
    """Private key: the factorization plus the decryption exponent."""

    p: int
    q: int
    public_key: DamgardJurikPublicKey
    d: int = field(init=False)

    def __post_init__(self) -> None:
        if self.p * self.q != self.public_key.n:
            raise ValueError("private primes do not match the modulus")
        lam = math.lcm(self.p - 1, self.q - 1)
        n_s = self.public_key.plaintext_modulus
        if math.gcd(lam, n_s) != 1:
            raise ValueError("lambda shares a factor with n^s")
        # d = 0 (mod lambda), d = 1 (mod n^s) via CRT.
        d = lam * pow(lam, -1, n_s)
        object.__setattr__(self, "d", d)


@dataclass(frozen=True)
class DamgardJurikKeypair:
    """A generated (public, private) pair."""

    public_key: DamgardJurikPublicKey
    private_key: DamgardJurikPrivateKey

    def __iter__(self):
        return iter((self.private_key, self.public_key))


def generate_damgard_jurik_keypair(
        key_bits: int, s: int = 2,
        rng: Optional[LimbRandom] = None) -> DamgardJurikKeypair:
    """Generate a Damgard-Jurik keypair of degree ``s``.

    Args:
        key_bits: Bit length of ``n``.
        s: Plaintext-space degree (``s = 1`` reduces to Paillier).
        rng: Deterministic random source.
    """
    if s < 1:
        raise ValueError("s must be at least 1")
    base = generate_paillier_keypair(key_bits, rng=rng)
    public = DamgardJurikPublicKey(n=base.public_key.n, s=s,
                                   key_bits=key_bits)
    private = DamgardJurikPrivateKey(p=base.private_key.p,
                                     q=base.private_key.q,
                                     public_key=public)
    return DamgardJurikKeypair(public_key=public, private_key=private)


class DamgardJurik:
    """Namespace of Damgard-Jurik primitives over raw integers."""

    @staticmethod
    def key_gen(key_bits: int, s: int = 2,
                rng: Optional[LimbRandom] = None) -> DamgardJurikKeypair:
        """Generate a keypair (``(pri, pub)`` iteration order)."""
        return generate_damgard_jurik_keypair(key_bits, s=s, rng=rng)

    @staticmethod
    def raw_encrypt(public_key: DamgardJurikPublicKey, plaintext: int,
                    rng: Optional[LimbRandom] = None,
                    r: Optional[int] = None) -> int:
        """Encrypt: ``(1 + n)^m * r^(n^s) mod n^(s+1)``."""
        n_s = public_key.plaintext_modulus
        modulus = public_key.ciphertext_modulus
        if not 0 <= plaintext < n_s:
            raise ValueError(f"plaintext outside [0, n^{public_key.s})")
        if r is None:
            if rng is None:
                rng = LimbRandom()
            r = rng.random_unit(public_key.n)
        g_m = _one_plus_n_power(plaintext, public_key)
        return (g_m * pow(r, n_s, modulus)) % modulus

    @staticmethod
    def raw_decrypt(private_key: DamgardJurikPrivateKey,
                    ciphertext: int) -> int:
        """Decrypt via ``c^d`` and iterative discrete-log extraction."""
        public = private_key.public_key
        modulus = public.ciphertext_modulus
        if not 0 <= ciphertext < modulus:
            raise ValueError("ciphertext outside Z_{n^(s+1)}")
        a = pow(ciphertext, private_key.d, modulus)
        return _extract_discrete_log(a, public)

    @staticmethod
    def raw_add(public_key: DamgardJurikPublicKey, c1: int, c2: int) -> int:
        """Homomorphic addition: ciphertext multiplication."""
        return (c1 * c2) % public_key.ciphertext_modulus

    @staticmethod
    def raw_scalar_mul(public_key: DamgardJurikPublicKey, c: int,
                       scalar: int) -> int:
        """Plaintext-scalar multiplication: ``c^scalar``."""
        if scalar < 0:
            raise ValueError("negative scalars require encoding")
        return pow(c, scalar, public_key.ciphertext_modulus)


def _one_plus_n_power(exponent: int,
                      public_key: DamgardJurikPublicKey) -> int:
    """``(1 + n)^exponent mod n^(s+1)`` via the binomial expansion.

    ``(1 + n)^m = sum_k C(m, k) n^k`` truncates at ``k = s`` modulo
    ``n^(s+1)``, which is much faster than a generic modexp for large
    ``m``.
    """
    n = public_key.n
    modulus = public_key.ciphertext_modulus
    total = 1
    term = 1
    for k in range(1, public_key.s + 1):
        # term = C(exponent, k) * n^k, built incrementally.
        term = term * (exponent - (k - 1)) // k
        total = (total + term * pow(n, k, modulus)) % modulus
    return total


def _extract_discrete_log(a: int,
                          public_key: DamgardJurikPublicKey) -> int:
    """Recover ``m`` from ``a = (1 + n)^m mod n^(s+1)``.

    The iterative algorithm of Damgard-Jurik: build ``m mod n^j`` for
    ``j = 1..s``, correcting with binomial terms at each step.
    """
    n = public_key.n
    s = public_key.s
    i = 0
    for j in range(1, s + 1):
        n_j = n ** j
        n_j_plus = n ** (j + 1)
        # L_j(a) = (a mod n^(j+1) - 1) / n
        t1 = ((a % n_j_plus) - 1) // n
        t2 = i
        k_factorial = 1
        for k in range(2, j + 1):
            i -= 1
            k_factorial *= k
            t2 = (t2 * i) % n_j
            correction = (t2 * pow(n, k - 1, n_j)
                          * pow(k_factorial, -1, n_j)) % n_j
            t1 = (t1 - correction) % n_j
        i = t1 % n_j
    return i


def packing_gain(key_bits: int, s: int, slot_bits: int = 32) -> float:
    """Ciphertext-count gain of degree-``s`` DJ over plain Paillier.

    Plain Paillier packs ``key_bits / slot`` values into a ``2 x key``
    ciphertext; degree-``s`` DJ packs ``s x key_bits / slot`` values into
    an ``(s+1) x key`` ciphertext.  Returns the reduction in *bytes per
    packed value* relative to Paillier.
    """
    if s < 1:
        raise ValueError("s must be at least 1")
    paillier_bytes_per_value = (2 * key_bits) / (key_bits // slot_bits)
    dj_bytes_per_value = ((s + 1) * key_bits) / (s * key_bits // slot_bits)
    return paillier_bytes_per_value / dj_bytes_per_value


# ----------------------------------------------------------------------
# Conformance registration (differential oracle, repro.testing).
# ----------------------------------------------------------------------

def _dj_conformance_factory(trace):
    """Damgard-Jurik primitives vs the generic ``pow()`` reference."""
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import DamgardJurikParty
    from repro.testing.reference import DamgardJurikReference
    keypair = generate_damgard_jurik_keypair(
        trace.key_bits, s=2, rng=LimbRandom(seed=trace.seed))
    party = DamgardJurikParty(keypair, seed=trace.seed + 1)
    reference = DamgardJurikReference(keypair, seed=trace.seed + 1)
    return ConformancePair(party=party, reference=reference)


def _register_dj_conformance() -> None:
    from repro.crypto.engine import HeEngine
    _dj_conformance_factory.capabilities = frozenset(
        {"encrypt", "decrypt", "add", "scalar_mul"})
    HeEngine.register_conformance("damgard-jurik", _dj_conformance_factory)


_register_dj_conformance()
