"""Batched Paillier mathematics on limb planes (numpy-optional).

The pieces of the vectorized Paillier path that are pure mathematics --
CRT-split decryption and fixed-base ``g^m`` exponentiation -- live here,
importable without numpy (and without the engine/tensor stack), so the
mpint property suites can diff-test them directly against the scalar
formulas in :mod:`repro.crypto.paillier`.  Constructing any of the
classes without numpy raises via
:func:`repro.mpint.limb_plane.require_numpy`.

:class:`repro.crypto.vector_engine.VectorPaillierEngine` composes these
helpers with the ledger/tensor plumbing of the engine abstraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.keys import PaillierPrivateKey, PaillierPublicKey
from repro.mpint.limb_plane import (
    FIXED_BASE_WINDOW_BITS,
    FixedBaseTable,
    PlaneContext,
    ints_to_plane,
    plane_to_ints,
    require_numpy,
)


class CrtDecryptor:
    """Vectorized CRT-split Paillier decryption (Garner recombination).

    Implements exactly the arithmetic of
    :meth:`repro.crypto.paillier.Paillier.raw_decrypt` -- two half-size
    exponentiations ``c^(p-1) mod p^2`` and ``c^(q-1) mod q^2`` followed
    by the L-function and Garner's formula -- but runs both
    exponentiations across the whole batch on limb planes.  The
    exponentiations are exact, so results are bit-identical to the
    scalar path.
    """

    def __init__(self, private_key: PaillierPrivateKey):
        require_numpy()
        self.private_key = private_key
        p, q = private_key.p, private_key.q
        self._p, self._q = p, q
        self._p_squared = p * p
        self._q_squared = q * q
        self._n_squared = private_key.public_key.n_squared
        self.plane_p2 = PlaneContext(self._p_squared)
        self.plane_q2 = PlaneContext(self._q_squared)

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        """Decrypt a batch of raw ciphertexts into integers."""
        values = [int(c) for c in ciphertexts]
        if not values:
            return []
        for c in values:
            if not 0 <= c < self._n_squared:
                raise ValueError("ciphertext outside Z_{n^2}")
        p, q = self._p, self._q
        key = self.private_key
        x_p = self._half_powers(values, self.plane_p2, p)
        x_q = self._half_powers(values, self.plane_q2, q)
        out = []
        for xp, xq in zip(x_p, x_q):
            m_p = ((xp - 1) // p * key.hp) % p
            m_q = ((xq - 1) // q * key.hq) % q
            diff = ((m_p - m_q) * key.q_inverse) % p
            out.append(m_q + diff * q)
        return out

    @staticmethod
    def _half_powers(values: List[int], plane: PlaneContext,
                     prime: int) -> List[int]:
        """``c^(prime-1) mod prime^2`` for every ciphertext."""
        reduced = [c % plane.modulus for c in values]
        base = ints_to_plane(reduced, plane.num_limbs)
        return plane_to_ints(plane.pow_shared(base, prime - 1))


class VectorEncryptor:
    """Vectorized Paillier encryption core (``g^m`` times an obfuscator).

    ``g = n + 1`` uses the binomial shortcut ``1 + m n mod n^2`` (one
    big-integer multiplication per value); any other generator goes
    through a precomputed :class:`~repro.mpint.limb_plane.FixedBaseTable`
    over ``m``'s full range.  The caller supplies the ``r^n`` obfuscator
    plane (pooled or freshly exponentiated) and gets the finished
    ciphertext batch from one batched modular multiplication.
    """

    def __init__(self, public_key: PaillierPublicKey,
                 window_bits: int = FIXED_BASE_WINDOW_BITS):
        require_numpy()
        self.public_key = public_key
        self._n = public_key.n
        self._n_squared = public_key.n_squared
        self.plane = PlaneContext(self._n_squared)
        self._fixed_base: Optional[FixedBaseTable] = None
        self._window_bits = window_bits

    def fixed_base_table(self) -> FixedBaseTable:
        """The (lazily built) ``g^m`` window table for general ``g``."""
        if self._fixed_base is None:
            self._fixed_base = FixedBaseTable(
                self.plane, self.public_key.g,
                max_exponent_bits=self._n.bit_length(),
                window_bits=self._window_bits)
        return self._fixed_base

    def g_pow_plane(self, plaintexts: Sequence[int]):
        """``g^m mod n^2`` for every plaintext, as a canonical plane."""
        n, n_squared = self._n, self._n_squared
        if self.public_key.g == n + 1:
            g_m = [(1 + m * n) % n_squared for m in plaintexts]
            return ints_to_plane(g_m, self.plane.num_limbs)
        return self.fixed_base_table().pow(plaintexts)

    def randomizer_powers_plane(self, randomizers: Sequence[int]):
        """Batch-exponentiate fresh randomizers: ``r^n mod n^2``."""
        base = ints_to_plane(list(randomizers), self.plane.num_limbs)
        return self.plane.pow_shared(base, self._n)

    def randomizer_powers(self, randomizers: Sequence[int]) -> List[int]:
        """:meth:`randomizer_powers_plane` as Python integers."""
        return plane_to_ints(self.randomizer_powers_plane(randomizers))

    def finish(self, plaintexts: Sequence[int],
               obfuscator_plane) -> List[int]:
        """Combine ``g^m`` with the obfuscators: the ciphertext batch."""
        g_plane = self.g_pow_plane(plaintexts)
        return plane_to_ints(self.plane.mod_mul(g_plane, obfuscator_plane))
