"""Homomorphic encryption (paper Sec. III-B, IV-A3).

Implements the two cryptosystems FLBooster exposes through its API layer:

- :mod:`repro.crypto.paillier` -- the additively homomorphic Paillier
  cryptosystem used for secure federated averaging.
- :mod:`repro.crypto.rsa` -- multiplicatively homomorphic (textbook) RSA,
  provided by the paper's API table for intersection protocols.
- :mod:`repro.crypto.damgard_jurik` -- the Damgard-Jurik generalization of
  Paillier (paper ref. [21]), an extension beyond the headline system.

Engines split the *where* from the *what*:

- :class:`repro.crypto.cpu_engine.CpuPaillierEngine` -- scalar CPU path
  (the FATE baseline).
- :class:`repro.crypto.gpu_engine.GpuPaillierEngine` -- batched kernels on
  the simulated GPU (the HAFLO / FLBooster path).
"""

from repro.crypto.keys import (
    PaillierKeypair,
    PaillierPublicKey,
    PaillierPrivateKey,
    RsaKeypair,
    RsaPublicKey,
    RsaPrivateKey,
)
from repro.crypto.paillier import Paillier, PaillierCiphertext
from repro.crypto.rsa import Rsa, RsaCiphertext
from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.crypto.engine import HeEngine, EngineReport
from repro.crypto.damgard_jurik import (
    DamgardJurik,
    DamgardJurikKeypair,
    generate_damgard_jurik_keypair,
)
from repro.crypto.symmetric_he import MaskingScheme, AffineScheme

__all__ = [
    "PaillierKeypair",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "RsaKeypair",
    "RsaPublicKey",
    "RsaPrivateKey",
    "Paillier",
    "PaillierCiphertext",
    "Rsa",
    "RsaCiphertext",
    "HeEngine",
    "EngineReport",
    "CpuPaillierEngine",
    "GpuPaillierEngine",
    "DamgardJurik",
    "DamgardJurikKeypair",
    "generate_damgard_jurik_keypair",
    "MaskingScheme",
    "AffineScheme",
]
