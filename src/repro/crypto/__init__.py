"""Homomorphic encryption (paper Sec. III-B, IV-A3).

Implements the two cryptosystems FLBooster exposes through its API layer:

- :mod:`repro.crypto.paillier` -- the additively homomorphic Paillier
  cryptosystem used for secure federated averaging.
- :mod:`repro.crypto.rsa` -- multiplicatively homomorphic (textbook) RSA,
  provided by the paper's API table for intersection protocols.
- :mod:`repro.crypto.damgard_jurik` -- the Damgard-Jurik generalization of
  Paillier (paper ref. [21]), an extension beyond the headline system.

Engines split the *where* from the *what*:

- :class:`repro.crypto.cpu_engine.CpuPaillierEngine` -- scalar CPU path
  (the FATE baseline).
- :class:`repro.crypto.gpu_engine.GpuPaillierEngine` -- batched kernels on
  the simulated GPU (the HAFLO / FLBooster path).
- :class:`repro.crypto.vector_engine.VectorPaillierEngine` -- batched
  limb-plane execution on real numpy arrays (CRT decryption, fixed-base
  windows, pooled obfuscators); resolvable only when numpy is available.

Exports resolve lazily (PEP 562) so that the numpy-free pieces --
:mod:`repro.crypto.keys`, :mod:`repro.crypto.paillier`,
:mod:`repro.crypto.vector_math` -- import without dragging in the
tensor stack the engines depend on.
"""

from typing import TYPE_CHECKING

#: Lazy export table: public name -> defining module.
_EXPORTS = {
    "PaillierKeypair": "repro.crypto.keys",
    "PaillierPublicKey": "repro.crypto.keys",
    "PaillierPrivateKey": "repro.crypto.keys",
    "RsaKeypair": "repro.crypto.keys",
    "RsaPublicKey": "repro.crypto.keys",
    "RsaPrivateKey": "repro.crypto.keys",
    "Paillier": "repro.crypto.paillier",
    "PaillierCiphertext": "repro.crypto.paillier",
    "Rsa": "repro.crypto.rsa",
    "RsaCiphertext": "repro.crypto.rsa",
    "HeEngine": "repro.crypto.engine",
    "EngineReport": "repro.crypto.engine",
    "RandomizerPool": "repro.crypto.engine",
    "CpuPaillierEngine": "repro.crypto.cpu_engine",
    "GpuPaillierEngine": "repro.crypto.gpu_engine",
    "VectorPaillierEngine": "repro.crypto.vector_engine",
    "CrtDecryptor": "repro.crypto.vector_math",
    "VectorEncryptor": "repro.crypto.vector_math",
    "DamgardJurik": "repro.crypto.damgard_jurik",
    "DamgardJurikKeypair": "repro.crypto.damgard_jurik",
    "generate_damgard_jurik_keypair": "repro.crypto.damgard_jurik",
    "MaskingScheme": "repro.crypto.symmetric_he",
    "AffineScheme": "repro.crypto.symmetric_he",
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - import-time types for tooling
    from repro.crypto.keys import (
        PaillierKeypair,
        PaillierPublicKey,
        PaillierPrivateKey,
        RsaKeypair,
        RsaPublicKey,
        RsaPrivateKey,
    )
    from repro.crypto.paillier import Paillier, PaillierCiphertext
    from repro.crypto.rsa import Rsa, RsaCiphertext
    from repro.crypto.cpu_engine import CpuPaillierEngine
    from repro.crypto.gpu_engine import GpuPaillierEngine
    from repro.crypto.engine import HeEngine, EngineReport, RandomizerPool
    from repro.crypto.vector_engine import VectorPaillierEngine
    from repro.crypto.vector_math import CrtDecryptor, VectorEncryptor
    from repro.crypto.damgard_jurik import (
        DamgardJurik,
        DamgardJurikKeypair,
        generate_damgard_jurik_keypair,
    )
    from repro.crypto.symmetric_he import MaskingScheme, AffineScheme


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.crypto' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
