"""The Paillier cryptosystem (paper Sec. III-B, Eqs. 3-5).

Implements the four processes the paper describes -- key generation,
encryption ``E(m) = g^m r^n mod n^2``, decryption
``D(c) = L(c^lambda mod n^2) / L(g^lambda mod n^2) mod n``, and the
additive homomorphic property ``E(m1) * E(m2) = E(m1 + m2)`` -- plus the
scalar multiplication ``E(m)^k = E(k m)`` federated aggregation uses.

The class-level functions operate on raw integers so the engines can batch
them; :class:`PaillierCiphertext` is the ergonomic wrapper the public API
exposes with operator overloading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import (
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.mpint.primes import LimbRandom


class Paillier:
    """Namespace of Paillier primitives over raw integers.

    Mirrors the paper's API surface (Table I): ``key_gen``, ``encrypt``,
    ``decrypt``, ``add``.
    """

    @staticmethod
    def key_gen(key_bits: int, rng: Optional[LimbRandom] = None) -> PaillierKeypair:
        """Generate a keypair (paper: ``Paillier::key_gen(size)``)."""
        return generate_paillier_keypair(key_bits, rng=rng)

    @staticmethod
    def raw_encrypt(public_key: PaillierPublicKey, plaintext: int,
                    r: Optional[int] = None,
                    rng: Optional[LimbRandom] = None) -> int:
        """Encrypt an integer plaintext (Eq. 3).

        Args:
            public_key: The recipient's public key.
            plaintext: Integer in ``[0, n)``.
            r: Explicit randomizer in ``Z*_n`` (tests use this for
                determinism); drawn fresh when omitted.
            rng: Random source for the randomizer.
        """
        n = public_key.n
        if not 0 <= plaintext < n:
            raise ValueError(
                f"plaintext {plaintext} outside [0, {n})")
        n_squared = public_key.n_squared
        if r is None:
            if rng is None:
                rng = LimbRandom()
            r = rng.random_unit(n)
        elif math.gcd(r, n) != 1:
            raise ValueError("randomizer must be a unit modulo n")
        if public_key.g == n + 1:
            # g^m = (1 + n)^m = 1 + m n (mod n^2): one multiplication.
            g_m = (1 + plaintext * n) % n_squared
        else:
            g_m = pow(public_key.g, plaintext, n_squared)
        return (g_m * pow(r, n, n_squared)) % n_squared

    @staticmethod
    def raw_decrypt(private_key: PaillierPrivateKey, ciphertext: int) -> int:
        """Decrypt an integer ciphertext (Eq. 4), via CRT.

        Computes ``m mod p`` and ``m mod q`` with half-size
        exponentiations and recombines -- numerically identical to the
        textbook formula (verified by the property tests) at a quarter of
        the cost.
        """
        public = private_key.public_key
        n_squared = public.n_squared
        if not 0 <= ciphertext < n_squared:
            raise ValueError("ciphertext outside Z_{n^2}")
        p, q = private_key.p, private_key.q
        p_squared = p * p
        q_squared = q * q
        m_p = ((pow(ciphertext, p - 1, p_squared) - 1) // p
               * private_key.hp) % p
        m_q = ((pow(ciphertext, q - 1, q_squared) - 1) // q
               * private_key.hq) % q
        # Garner recombination.
        diff = ((m_p - m_q) * private_key.q_inverse) % p
        return m_q + diff * q

    @staticmethod
    def raw_decrypt_textbook(private_key: PaillierPrivateKey,
                             ciphertext: int) -> int:
        """Decrypt with the literal Eq. 4 formula (reference path)."""
        public = private_key.public_key
        n = public.n
        n_squared = public.n_squared
        if not 0 <= ciphertext < n_squared:
            raise ValueError("ciphertext outside Z_{n^2}")
        c_lambda = pow(ciphertext, private_key.lam, n_squared)
        l_value = (c_lambda - 1) // n
        return (l_value * private_key.mu) % n

    @staticmethod
    def raw_add(public_key: PaillierPublicKey, c1: int, c2: int) -> int:
        """Homomorphic addition: multiply ciphertexts (Eq. 5)."""
        return (c1 * c2) % public_key.n_squared

    @staticmethod
    def raw_add_plain(public_key: PaillierPublicKey, c: int,
                      plaintext: int) -> int:
        """Add a plaintext to a ciphertext: ``c * g^m mod n^2``."""
        n = public_key.n
        n_squared = public_key.n_squared
        plaintext %= n
        if public_key.g == n + 1:
            g_m = (1 + plaintext * n) % n_squared
        else:
            g_m = pow(public_key.g, plaintext, n_squared)
        return (c * g_m) % n_squared

    @staticmethod
    def raw_scalar_mul(public_key: PaillierPublicKey, c: int,
                       scalar: int) -> int:
        """Multiply the underlying plaintext by ``scalar``: ``c^scalar``."""
        if scalar < 0:
            raise ValueError("negative scalars require encoding; use the "
                             "quantization layer")
        return pow(c, scalar, public_key.n_squared)

    # Ergonomic wrappers -------------------------------------------------

    @staticmethod
    def encrypt(public_key: PaillierPublicKey, plaintext: int,
                rng: Optional[LimbRandom] = None) -> "PaillierCiphertext":
        """Encrypt into a :class:`PaillierCiphertext` wrapper."""
        value = Paillier.raw_encrypt(public_key, plaintext, rng=rng)
        return PaillierCiphertext(value=value, public_key=public_key)

    @staticmethod
    def decrypt(private_key: PaillierPrivateKey,
                ciphertext: "PaillierCiphertext") -> int:
        """Decrypt a wrapped ciphertext."""
        return Paillier.raw_decrypt(private_key, ciphertext.value)

    @staticmethod
    def add(public_key: PaillierPublicKey, c1: "PaillierCiphertext",
            c2: "PaillierCiphertext") -> "PaillierCiphertext":
        """Homomorphic addition of two wrapped ciphertexts."""
        return PaillierCiphertext(
            value=Paillier.raw_add(public_key, c1.value, c2.value),
            public_key=public_key)


@dataclass(frozen=True)
class PaillierCiphertext:
    """A Paillier ciphertext bound to its public key.

    Supports ``+`` with another ciphertext or a plain integer and ``*`` with
    a non-negative integer scalar, the exact operations secure federated
    averaging needs.
    """

    value: int
    public_key: PaillierPublicKey

    def __add__(self, other) -> "PaillierCiphertext":
        if isinstance(other, PaillierCiphertext):
            if other.public_key is not self.public_key and \
                    other.public_key != self.public_key:
                raise ValueError("cannot add ciphertexts under different keys")
            new = Paillier.raw_add(self.public_key, self.value, other.value)
        elif isinstance(other, int):
            new = Paillier.raw_add_plain(self.public_key, self.value, other)
        else:
            return NotImplemented
        return PaillierCiphertext(value=new, public_key=self.public_key)

    __radd__ = __add__

    def __mul__(self, scalar) -> "PaillierCiphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        new = Paillier.raw_scalar_mul(self.public_key, self.value, scalar)
        return PaillierCiphertext(value=new, public_key=self.public_key)

    __rmul__ = __mul__

    def serialized_bytes(self) -> int:
        """Byte size of this ciphertext on the wire."""
        return self.public_key.ciphertext_bytes()
