"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` works where PEP 660 editable
builds are available; this shim keeps legacy ``setup.py develop`` working
in fully offline environments.
"""
from setuptools import setup

setup()
